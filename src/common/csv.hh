/**
 * @file
 * Minimal RFC-4180-style CSV emission and validated ingestion.
 *
 * Bench binaries optionally dump their series as CSV so the figures can be
 * re-plotted outside the repo. Values containing commas, quotes, or
 * newlines are quoted and escaped.
 *
 * The reader side sits on the trust boundary (status.hh): profiled
 * speedup curves and replayed bench artifacts arrive as
 * tenant-supplied CSV, so parsing returns structured, line-numbered
 * errors instead of throwing — unterminated quotes and stray bytes
 * after a closing quote are parse errors, ragged rows are semantic
 * errors.
 */

#ifndef AMDAHL_COMMON_CSV_HH
#define AMDAHL_COMMON_CSV_HH

#include <iosfwd>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"

namespace amdahl {

/**
 * Streaming CSV writer.
 *
 * The header is written on construction; each row must match the header's
 * arity.
 */
class CsvWriter
{
  public:
    /**
     * @param os      Destination stream (must outlive the writer).
     * @param header  Column names; written immediately.
     */
    CsvWriter(std::ostream &os, std::vector<std::string> header);

    /** Write one row. @param cells One cell per header column. */
    void writeRow(const std::vector<std::string> &cells);

    /** Escape a single CSV field per RFC 4180. */
    static std::string escape(const std::string &field);

    /** @return Number of data rows written. */
    std::size_t rowsWritten() const { return nRows; }

  private:
    void emit(const std::vector<std::string> &cells);

    std::ostream &out;
    std::size_t arity;
    std::size_t nRows = 0;
};

/** A parsed CSV document: a header row plus zero or more data rows. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows; //!< Each header-arity.

    /** @return Index of a header column, or npos when absent. */
    std::size_t columnIndex(const std::string &name) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/** Knobs for parseCsv. */
struct CsvParseOptions
{
    /** Accept rows whose cell count differs from the header's
     *  (missing cells read as empty; extras are dropped). Off by
     *  default: ragged input is a semantic error. */
    bool allowRagged = false;

    /** Hard cap on data rows — backpressure against unbounded
     *  attacker-supplied input. Exceeding it is a semantic error. */
    std::size_t maxRows = 1u << 20;
};

/**
 * Parse an RFC-4180 CSV document (quoted fields, doubled quotes, CRLF
 * or LF line ends; embedded newlines inside quoted fields).
 *
 * The first record is the header and must be non-empty. Never throws
 * on malformed input.
 *
 * @param in   The untrusted byte stream.
 * @param opts Strictness knobs.
 * @return The table, or a line-numbered parse/semantic error.
 */
Result<CsvTable> parseCsv(std::istream &in,
                          const CsvParseOptions &opts = {});

/** Convenience: parse from a string. */
Result<CsvTable> parseCsvString(const std::string &text,
                                const CsvParseOptions &opts = {});

} // namespace amdahl

#endif // AMDAHL_COMMON_CSV_HH
