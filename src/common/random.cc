#include "random.hh"

#include <cmath>
#include <numbers>

#include "logging.hh"

namespace amdahl {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-order bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    if (lo > hi)
        fatal("uniform(lo, hi): lo ", lo, " > hi ", hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        fatal("uniformInt(lo, hi): lo ", lo, " > hi ", hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::gaussian()
{
    // Box-Muller; regenerate u1 until nonzero so log() is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

int
Rng::poisson(double mean)
{
    if (mean < 0.0)
        fatal("Poisson mean must be non-negative, got ", mean);
    if (mean == 0.0)
        return 0;
    const double limit = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform();
    } while (p > limit);
    return k - 1;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("weightedIndex: negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        fatal("weightedIndex: no positive weight");
    double point = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    // Floating-point slack: return the last positively weighted index.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    panic("weightedIndex: unreachable");
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

} // namespace amdahl
