/**
 * @file
 * Console table rendering for benchmark output.
 *
 * Every bench binary prints the rows/series of one of the paper's tables or
 * figures; TablePrinter keeps that output aligned and consistent.
 */

#ifndef AMDAHL_COMMON_TABLE_HH
#define AMDAHL_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hh"

namespace amdahl {

/**
 * Fixed-schema text table.
 *
 * Columns are declared once; rows are appended as strings or numbers and
 * rendered with per-column width computed from the content.
 */
class TablePrinter
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /**
     * Declare a column.
     *
     * @param header Column title.
     * @param align  Cell alignment (headers follow the same alignment).
     */
    void addColumn(std::string header, Align align = Align::Right);

    /**
     * Append a row of pre-formatted cells.
     *
     * @param cells One string per declared column.
     */
    void addRow(std::vector<std::string> cells);

    /** Begin a new row; cells are appended with cell(). */
    TablePrinter &beginRow();

    /** Append a string cell to the row opened by beginRow(). */
    TablePrinter &cell(const std::string &value);
    /** Append a C-string cell. */
    TablePrinter &cell(const char *value);
    /** Append a formatted double cell. */
    TablePrinter &cell(double value, int precision = 3);
    /** Append an integer cell. */
    TablePrinter &cell(long long value);
    /** Append an unsigned integer cell. */
    TablePrinter &cell(unsigned long long value);
    /** Append an int cell. */
    TablePrinter &cell(int value);
    /** Append a size_t cell. */
    TablePrinter &cell(std::size_t value);

    /** @return Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render the table (header, separator, rows) to a string. */
    std::string toString() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** @return Column headers (flushes any pending row). */
    const std::vector<std::string> &columnHeaders() const;

    /** @return All data rows (flushes any pending row). */
    const std::vector<std::vector<std::string>> &dataRows() const;

    /**
     * Write the table as CSV (header + rows).
     *
     * @return IoError when the stream is (or ends up) in a failed
     * state — a bench whose CSV silently vanished on a full disk is
     * worse than one that stops with a diagnostic.
     */
    Status writeCsv(std::ostream &os) const;

    /**
     * Write the table as a JSON array of row objects keyed by the
     * column headers. All values are emitted as JSON strings (cells
     * are stored pre-formatted); consumers parse numbers themselves.
     *
     * @return IoError when the stream is (or ends up) in a failed
     * state after the write + flush.
     */
    Status writeJson(std::ostream &os) const;

  private:
    void finishPendingRow() const;

    std::vector<std::string> headers;
    std::vector<Align> aligns;
    mutable std::vector<std::vector<std::string>> rows;
    mutable std::vector<std::string> pending;
    mutable bool rowOpen = false;
};

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 3);

/**
 * Render a numeric series as a unicode block sparkline, e.g.
 * "▁▂▄▆█▆▄". Values are scaled to the series' own [min, max]; a
 * constant series renders mid-height. Long series are down-sampled by
 * bucket means to at most @p max_width glyphs.
 */
std::string sparkline(const std::vector<double> &values,
                      std::size_t max_width = 60);

} // namespace amdahl

#endif // AMDAHL_COMMON_TABLE_HH
