#include "logging.hh"

#include <atomic>
#include <iostream>

namespace amdahl {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
std::atomic<detail::LogSinkHook> globalLogSink{nullptr};

} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    return globalLevel.exchange(level);
}

LogLevel
logLevel()
{
    return globalLevel.load();
}

namespace detail {

LogSinkHook
setLogSinkHook(LogSinkHook hook)
{
    return globalLogSink.exchange(hook);
}

void
emitLog(LogLevel level, const std::string &msg)
{
    // The structured sink sees every message; the verbosity filter
    // below only governs the human-facing stderr stream.
    if (auto *hook = globalLogSink.load())
        hook(level, msg);
    if (static_cast<int>(level) > static_cast<int>(globalLevel.load()))
        return;
    // The one allowed std::cerr in src/: this *is* the output hook
    // amdahl_lint's OBS-io rule routes everything else through.
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << '\n';
}

} // namespace detail

} // namespace amdahl
