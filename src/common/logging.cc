#include "logging.hh"

#include <atomic>
#include <iostream>

namespace amdahl {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    return globalLevel.exchange(level);
}

LogLevel
logLevel()
{
    return globalLevel.load();
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel.load()))
        return;
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << '\n';
}

} // namespace detail

} // namespace amdahl
