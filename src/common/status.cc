#include "status.hh"

#include <sstream>

namespace amdahl {

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::ParseError:
        return "parse error";
      case ErrorKind::DomainError:
        return "domain error";
      case ErrorKind::SemanticError:
        return "semantic error";
      case ErrorKind::IoError:
        return "io error";
    }
    panic("unknown error kind");
}

std::string
Status::toString() const
{
    if (!failed)
        return "ok";
    std::ostringstream os;
    os << amdahl::toString(errorKind);
    if (errorLine > 0)
        os << " at line " << errorLine;
    os << ": " << text;
    return os.str();
}

} // namespace amdahl
