/**
 * @file
 * Statistical summaries used throughout the reproduction.
 *
 * Provides a single-pass online accumulator (Welford), sample-based
 * quantiles and boxplot summaries (used for Figure 8), and the geometric
 * mean (used when aggregating Karp-Flatt estimates across sampled
 * datasets, per Section IV-C of the paper).
 */

#ifndef AMDAHL_COMMON_STATS_HH
#define AMDAHL_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace amdahl {

/**
 * The raw accumulator fields of an OnlineStats, for durable snapshots.
 *
 * Restoring from a saved state reproduces the accumulator exactly, so
 * statistics that span a crash/recovery boundary match an uninterrupted
 * run bit-for-bit.
 */
struct OnlineStatsState
{
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Online mean/variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long streams; O(1) space.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const OnlineStats &other);

    /** @return Number of observations added. */
    std::size_t count() const { return n; }

    /** @return Sample mean; 0 when empty. */
    double mean() const { return n == 0 ? 0.0 : m; }

    /** @return Population variance (divide by n); 0 when n < 1. */
    double variance() const;

    /** @return Sample variance (divide by n-1); 0 when n < 2. */
    double sampleVariance() const;

    /** @return sqrt of the population variance. */
    double stddev() const;

    /** @return Smallest observation; +inf when empty. */
    double min() const { return lo; }

    /** @return Largest observation; -inf when empty. */
    double max() const { return hi; }

    /** @return The raw accumulator state (see OnlineStatsState). */
    OnlineStatsState saveState() const { return {n, m, m2, lo, hi}; }

    /** Rebuild an accumulator from a saved state. */
    static OnlineStats
    fromState(const OnlineStatsState &s)
    {
        OnlineStats st;
        st.n = s.n;
        st.m = s.m;
        st.m2 = s.m2;
        st.lo = s.lo;
        st.hi = s.hi;
        return st;
    }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Five-number summary for boxplots (Figure 8). */
struct BoxplotSummary
{
    double min = 0.0;
    double q1 = 0.0;     //!< 25th percentile
    double median = 0.0; //!< 50th percentile
    double q3 = 0.0;     //!< 75th percentile
    double max = 0.0;
};

/** @return Arithmetic mean of the samples. Requires non-empty input. */
double mean(const std::vector<double> &xs);

/** @return Population variance of the samples. Requires non-empty input. */
double variance(const std::vector<double> &xs);

/**
 * @return Geometric mean of the samples.
 * Requires non-empty input with strictly positive values.
 */
double geometricMean(const std::vector<double> &xs);

/** @return The sample median (type-7 quantile at 0.5). Requires
 *  non-empty input. */
double median(const std::vector<double> &xs);

/**
 * Symmetrically trimmed mean: drop floor(trim * n) samples from each
 * tail, average the rest. The robust middle ground between the mean
 * (trim 0) and the median (trim -> 0.5): single outliers — one noisy
 * profiling run, one adversarial report — cannot drag it.
 *
 * @param xs   Samples (any order; copied and sorted internally).
 * @param trim Fraction to drop per tail, in [0, 0.5).
 * @return Mean of the retained samples. Requires non-empty input.
 */
double trimmedMean(std::vector<double> xs, double trim);

/**
 * Linear-interpolation sample quantile (type-7, the R/NumPy default).
 *
 * @param xs Samples (any order; copied and sorted internally).
 * @param q  Quantile in [0, 1].
 * @return The q-th quantile. Requires non-empty input.
 */
double quantile(std::vector<double> xs, double q);

/** @return The five-number summary of the samples. Requires non-empty. */
BoxplotSummary boxplot(const std::vector<double> &xs);

/**
 * Mean Absolute Percentage Error, in percent (Figure 11).
 *
 * @param actual    Observed values (the allocations).
 * @param reference Reference values (the entitlements); each must be
 *                  nonzero.
 * @return 100/n * sum |actual - reference| / |reference|.
 */
double meanAbsolutePercentageError(const std::vector<double> &actual,
                                   const std::vector<double> &reference);

/** Mean Absolute Error (Figure 12). Requires equal non-empty sizes. */
double meanAbsoluteError(const std::vector<double> &a,
                         const std::vector<double> &b);

} // namespace amdahl

#endif // AMDAHL_COMMON_STATS_HH
