#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "csv.hh"
#include "json.hh"
#include "logging.hh"

namespace amdahl {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
TablePrinter::addColumn(std::string header, Align align)
{
    if (!rows.empty() || rowOpen)
        fatal("addColumn after rows were added");
    headers.push_back(std::move(header));
    aligns.push_back(align);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    finishPendingRow();
    if (cells.size() != headers.size()) {
        fatal("row has ", cells.size(), " cells, expected ",
              headers.size());
    }
    rows.push_back(std::move(cells));
}

TablePrinter &
TablePrinter::beginRow()
{
    finishPendingRow();
    rowOpen = true;
    pending.clear();
    return *this;
}

TablePrinter &
TablePrinter::cell(const std::string &value)
{
    if (!rowOpen)
        fatal("cell() without beginRow()");
    if (pending.size() >= headers.size())
        fatal("too many cells in row; table has ", headers.size(),
              " columns");
    pending.push_back(value);
    return *this;
}

TablePrinter &
TablePrinter::cell(const char *value)
{
    return cell(std::string(value));
}

TablePrinter &
TablePrinter::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

TablePrinter &
TablePrinter::cell(long long value)
{
    return cell(std::to_string(value));
}

TablePrinter &
TablePrinter::cell(unsigned long long value)
{
    return cell(std::to_string(value));
}

TablePrinter &
TablePrinter::cell(int value)
{
    return cell(std::to_string(value));
}

TablePrinter &
TablePrinter::cell(std::size_t value)
{
    return cell(std::to_string(value));
}

void
TablePrinter::finishPendingRow() const
{
    if (!rowOpen)
        return;
    if (pending.size() != headers.size()) {
        fatal("row has ", pending.size(), " cells, expected ",
              headers.size());
    }
    rows.push_back(pending);
    pending.clear();
    rowOpen = false;
}

std::string
TablePrinter::toString() const
{
    finishPendingRow();
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            const auto pad = widths[c] - cells[c].size();
            if (aligns[c] == Align::Right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(os, row);
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    os << toString();
}

const std::vector<std::string> &
TablePrinter::columnHeaders() const
{
    finishPendingRow();
    return headers;
}

const std::vector<std::vector<std::string>> &
TablePrinter::dataRows() const
{
    finishPendingRow();
    return rows;
}

namespace {

/** @return ok when @p os survived the write + flush, IoError else. */
Status
streamStatus(std::ostream &os, const char *what)
{
    os.flush();
    if (os.good())
        return Status::ok();
    return Status::error(ErrorKind::IoError, 0, what,
                         " write failed (stream in a failed state; "
                         "disk full or unwritable destination?)");
}

} // namespace

Status
TablePrinter::writeCsv(std::ostream &os) const
{
    finishPendingRow();
    CsvWriter csv(os, headers);
    for (const auto &row : rows)
        csv.writeRow(row);
    return streamStatus(os, "CSV table");
}

Status
TablePrinter::writeJson(std::ostream &os) const
{
    finishPendingRow();
    os << "[";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << (r > 0 ? ",\n " : "\n ") << "{";
        for (std::size_t c = 0; c < headers.size(); ++c) {
            if (c > 0)
                os << ", ";
            os << jsonEscape(headers[c]) << ": "
               << jsonEscape(rows[r][c]);
        }
        os << "}";
    }
    os << (rows.empty() ? "]" : "\n]") << "\n";
    return streamStatus(os, "JSON table");
}

std::string
sparkline(const std::vector<double> &values, std::size_t max_width)
{
    if (values.empty() || max_width == 0)
        return "";

    // Down-sample to bucket means when the series is too long.
    std::vector<double> series;
    if (values.size() <= max_width) {
        series = values;
    } else {
        series.resize(max_width, 0.0);
        std::vector<std::size_t> counts(max_width, 0);
        for (std::size_t i = 0; i < values.size(); ++i) {
            const std::size_t bucket =
                i * max_width / values.size();
            series[bucket] += values[i];
            ++counts[bucket];
        }
        for (std::size_t b = 0; b < max_width; ++b) {
            if (counts[b] > 0)
                series[b] /= static_cast<double>(counts[b]);
        }
    }

    static const char *glyphs[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    double lo = series.front(), hi = series.front();
    for (double v : series) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    for (double v : series) {
        std::size_t level = 3; // constant series: mid-height
        if (hi > lo) {
            level = static_cast<std::size_t>(
                (v - lo) / (hi - lo) * 7.0 + 0.5);
        }
        out += glyphs[level];
    }
    return out;
}

} // namespace amdahl
