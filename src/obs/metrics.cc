#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"

namespace amdahl::obs {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds))
{
    if (bounds_.empty())
        fatal("histogram needs at least one bucket bound");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!std::isfinite(bounds_[i]))
            fatal("histogram bucket bounds must be finite");
        if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
            fatal("histogram bucket bounds must be strictly "
                  "increasing");
        }
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::record(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // NaN is unordered against every bound (lower_bound would file it
    // under the *first* bucket); count it in the overflow bucket and
    // keep it out of min/max/sum so one bad sample cannot poison the
    // aggregates.
    if (std::isnan(value)) {
        ++counts_.back();
        ++count_;
        return;
    }
    // Bucket i counts value <= bounds_[i]: first bound >= value.
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    if (sampled_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++sampled_;
    ++count_;
    sum_ += value;
}

namespace {

/** Shared quantile estimate over bucketed counts (see
 *  Histogram::quantile). */
double
bucketQuantile(const std::vector<double> &bounds,
               const std::vector<std::uint64_t> &counts,
               std::uint64_t total, double lo_seen, double hi_seen,
               double q)
{
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Target rank in [1, total].
    const double rank = std::max(1.0, q * static_cast<double>(total));
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double in_bucket = static_cast<double>(counts[i]);
        if (in_bucket == 0.0)
            continue;
        if (cumulative + in_bucket < rank) {
            cumulative += in_bucket;
            continue;
        }
        if (i == bounds.size())
            return hi_seen; // Overflow bucket: all we know is the max.
        const double hi = std::min(bounds[i], hi_seen);
        const double lo = std::max(
            i == 0 ? lo_seen : bounds[i - 1], lo_seen);
        if (hi <= lo)
            return hi;
        const double fraction = (rank - cumulative) / in_bucket;
        return lo + fraction * (hi - lo);
    }
    return hi_seen;
}

} // namespace

double
Histogram::quantile(double q) const
{
    // Read the members directly under one lock (the public accessors
    // each take mutex_, which is not recursive).
    std::lock_guard<std::mutex> lock(mutex_);
    return bucketQuantile(bounds_, counts_, count_,
                          sampled_ ? min_ : 0.0,
                          sampled_ ? max_ : 0.0, q);
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sampled_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
HistogramSample::quantile(double q) const
{
    return bucketQuantile(upperBounds, bucketCounts, count,
                          count ? min : 0.0, count ? max : 0.0, q);
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const std::vector<double> &upperBounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(upperBounds))
                 .first;
    } else if (!upperBounds.empty() &&
               upperBounds != it->second->upperBounds()) {
        fatal("histogram '", std::string(name),
              "' re-registered with different bucket bounds");
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        HistogramSample sample;
        sample.name = name;
        sample.upperBounds = h->upperBounds();
        sample.bucketCounts.reserve(h->upperBounds().size() + 1);
        for (std::size_t i = 0; i <= h->upperBounds().size(); ++i)
            sample.bucketCounts.push_back(h->bucketCount(i));
        sample.count = h->count();
        sample.sum = h->sum();
        sample.min = h->minSeen();
        sample.max = h->maxSeen();
        snap.histograms.push_back(std::move(sample));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

namespace {

/** @return ok when @p os survived the write + flush, IoError else. */
Status
streamStatus(std::ostream &os, const char *what)
{
    os.flush();
    if (os.good())
        return Status::ok();
    return Status::error(ErrorKind::IoError, 0, what,
                         " write failed (stream in a failed state; "
                         "disk full or unwritable destination?)");
}

} // namespace

Status
MetricsRegistry::writeText(std::ostream &os) const
{
    return snapshot().writeText(os);
}

Status
MetricsRegistry::writeJson(std::ostream &os) const
{
    return snapshot().writeJson(os);
}

Status
MetricsSnapshot::writeText(std::ostream &os) const
{
    for (const auto &c : counters)
        os << "counter " << c.name << " = " << c.value << "\n";
    for (const auto &g : gauges)
        os << "gauge " << g.name << " = " << jsonNumber(g.value)
           << "\n";
    for (const auto &h : histograms) {
        os << "histogram " << h.name << " count=" << h.count
           << " sum=" << jsonNumber(h.sum)
           << " min=" << jsonNumber(h.min)
           << " max=" << jsonNumber(h.max)
           << " p50=" << jsonNumber(h.quantile(0.50))
           << " p95=" << jsonNumber(h.quantile(0.95))
           << " p99=" << jsonNumber(h.quantile(0.99)) << "\n";
    }
    return streamStatus(os, "metrics text");
}

Status
MetricsSnapshot::writeJson(std::ostream &os) const
{
    std::string out;
    out += "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i > 0)
            out += ",";
        appendJsonEscaped(out, counters[i].name);
        out += ":" + std::to_string(counters[i].value);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i > 0)
            out += ",";
        appendJsonEscaped(out, gauges[i].name);
        out += ":" + jsonNumber(gauges[i].value);
    }
    out += "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const auto &h = histograms[i];
        if (i > 0)
            out += ",";
        appendJsonEscaped(out, h.name);
        out += ":{\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + jsonNumber(h.sum);
        out += ",\"min\":" + jsonNumber(h.min);
        out += ",\"max\":" + jsonNumber(h.max);
        out += ",\"p50\":" + jsonNumber(h.quantile(0.50));
        out += ",\"p95\":" + jsonNumber(h.quantile(0.95));
        out += ",\"p99\":" + jsonNumber(h.quantile(0.99));
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < h.bucketCounts.size(); ++b) {
            if (b > 0)
                out += ",";
            // The overflow bucket's bound renders as null
            // (jsonNumber of +inf).
            const double bound =
                b < h.upperBounds.size()
                    ? h.upperBounds[b]
                    : std::numeric_limits<double>::infinity();
            out += "{\"le\":" + jsonNumber(bound);
            out += ",\"count\":" + std::to_string(h.bucketCounts[b]);
            out += "}";
        }
        out += "]}";
    }
    out += "}}";
    os << out;
    return streamStatus(os, "metrics JSON");
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
buildFlagsString()
{
    std::string flags;
#ifdef NDEBUG
    flags += "ndebug";
#else
    flags += "debug-asserts";
#endif
#ifdef AMDAHL_CHECKED
    flags += ",checked";
#endif
#if defined(__SANITIZE_ADDRESS__)
    flags += ",asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    flags += ",asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    flags += ",tsan";
#endif
    return flags;
}

} // namespace amdahl::obs
