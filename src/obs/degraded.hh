/**
 * @file
 * Structured "why was this round/serve degraded" reporting.
 *
 * Before this existed, a degraded round was a bare counter bump: you
 * could see *that* the market served something below rung 1, but not
 * whether the cause was an expired barrier deadline, a scheduled
 * partition, or a quorum collapse — three conditions with three very
 * different operator responses. recordDegraded() gives every
 * degradation one typed reason, emitted both as a per-reason counter
 * (`degraded.rounds.<reason>`) and as a `degraded_round` trace event
 * carrying the round, quorum, and staleness context. Both the barrier
 * loop in core/bidding_sharded.cc and the FallbackPolicy ladder
 * report through here, so the two layers cannot invent divergent
 * taxonomies.
 */

#ifndef AMDAHL_OBS_DEGRADED_HH
#define AMDAHL_OBS_DEGRADED_HH

#include <cstdint>
#include <string_view>

namespace amdahl::obs {

/** Why a clearing round (or a serve) fell below the primary path. */
enum class DegradedReason
{
    /** A barrier (or anytime) deadline expired before full freshness. */
    DeadlineExpired,
    /** A scheduled partition silenced at least one shard. */
    Partition,
    /** The usable-shard quorum fell below the configured floor. */
    QuorumFloor,
    /** The solver ran out of iterations without converging. */
    NonConverged,
};

/** Stable lowercase token, also used in traces and CLI summaries. */
[[nodiscard]] const char *toString(DegradedReason reason);

/** One degradation occurrence with its context. */
struct DegradedRound
{
    /** Reporting layer: "barrier" or "fallback". */
    std::string_view source;
    DegradedReason reason = DegradedReason::DeadlineExpired;
    /** Global round (barrier) or solve iterations (fallback). */
    std::uint64_t round = 0;
    /** Usable shards this round (0 when not applicable). */
    std::uint64_t quorum = 0;
    /** Shards served from stale aggregates (0 when not applicable). */
    std::uint64_t stale = 0;
};

/**
 * Record one degradation: bumps `degraded.rounds.<reason>` and emits
 * a `degraded_round` trace event (when a sink is installed). Callers
 * on byte-identity-sensitive paths must only call this when actually
 * degraded — the counter is created lazily on first use.
 */
void recordDegraded(const DegradedRound &occurrence);

} // namespace amdahl::obs

#endif // AMDAHL_OBS_DEGRADED_HH
