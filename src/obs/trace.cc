#include "trace.hh"

#include <atomic>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/span.hh"

namespace amdahl::obs {

namespace {

std::atomic<TraceSink *> globalSink{nullptr};

/** Log hook installed while a sink is live: warn()/inform() become
 *  structured "log" events alongside their unchanged stderr output. */
void
logToTrace(LogLevel level, const std::string &msg)
{
    if (auto *sink = traceSink()) {
        TraceEvent(*sink, "log")
            .field("severity",
                   level == LogLevel::Warn ? "warn" : "info")
            .field("message", msg);
    }
}

} // namespace

void
TraceSink::write(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    *os_ << line << '\n';
    bytes_.fetch_add(line.size() + 1, std::memory_order_relaxed);
    if (!failed_ && !os_->good()) {
        failed_ = true;
        failureText_ = "trace stream entered a failed state while "
                       "writing event seq " +
                       std::to_string(currentSeq());
    }
}

Status
TraceSink::flush()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    os_->flush();
    if (!failed_ && !os_->good()) {
        failed_ = true;
        failureText_ = "trace stream failed on flush (disk full or "
                       "unwritable destination?)";
    }
    if (failed_)
        return Status::error(ErrorKind::IoError, 0, failureText_);
    return Status::ok();
}

Status
TraceSink::status() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (failed_)
        return Status::error(ErrorKind::IoError, 0, failureText_);
    return Status::ok();
}

void
TraceSink::resume(std::uint64_t bytes, std::uint64_t seq)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    bytes_.store(bytes, std::memory_order_relaxed);
    seq_.store(seq, std::memory_order_relaxed);
}

TraceSink *
traceSink()
{
    return globalSink.load(std::memory_order_relaxed);
}

TraceSink *
setTraceSink(TraceSink *sink)
{
    TraceSink *previous = globalSink.exchange(sink);
    amdahl::detail::setLogSinkHook(sink != nullptr ? &logToTrace
                                                   : nullptr);
    detail::spanOnTraceSinkChanged(sink);
    return previous;
}

TraceEvent::TraceEvent(TraceSink &sink, std::string_view event)
    : sink_(&sink)
{
    line_.reserve(96);
    line_ += "{\"seq\":";
    line_ += std::to_string(sink.nextSeq());
    line_ += ",\"ev\":";
    appendJsonEscaped(line_, event);
}

TraceEvent::~TraceEvent()
{
    line_ += '}';
    sink_->write(line_);
}

void
TraceEvent::appendKey(std::string_view key)
{
    line_ += ',';
    appendJsonEscaped(line_, key);
    line_ += ':';
}

TraceEvent &
TraceEvent::field(std::string_view key, std::string_view value)
{
    appendKey(key);
    appendJsonEscaped(line_, value);
    return *this;
}

TraceEvent &
TraceEvent::field(std::string_view key, const char *value)
{
    return field(key, std::string_view(value));
}

TraceEvent &
TraceEvent::field(std::string_view key, double value)
{
    appendKey(key);
    line_ += jsonNumber(value);
    return *this;
}

TraceEvent &
TraceEvent::field(std::string_view key, bool value)
{
    appendKey(key);
    line_ += value ? "true" : "false";
    return *this;
}

TraceEvent &
TraceEvent::fieldSigned(std::string_view key, std::int64_t value)
{
    appendKey(key);
    line_ += std::to_string(value);
    return *this;
}

TraceEvent &
TraceEvent::fieldUnsigned(std::string_view key, std::uint64_t value)
{
    appendKey(key);
    line_ += std::to_string(value);
    return *this;
}

} // namespace amdahl::obs
