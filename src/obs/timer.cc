#include "timer.hh"

#include <atomic>

namespace amdahl::obs {

namespace {

std::atomic<bool> globalTiming{false};

} // namespace

bool
timingEnabled()
{
    return globalTiming.load(std::memory_order_relaxed);
}

bool
setTimingEnabled(bool on)
{
    return globalTiming.exchange(on);
}

const std::vector<double> &
timeBucketsUs()
{
    // 1us .. 4^12us (~16.8s), powers of 4: 13 buckets + overflow.
    static const std::vector<double> buckets = [] {
        std::vector<double> b;
        double bound = 1.0;
        for (int i = 0; i < 13; ++i) {
            b.push_back(bound);
            bound *= 4.0;
        }
        return b;
    }();
    return buckets;
}

Histogram *
timeHistogram(std::string_view name)
{
    if (!timingEnabled())
        return nullptr;
    return &metrics().histogram(name, timeBucketsUs());
}

} // namespace amdahl::obs
