#include "obs/degraded.hh"

#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::obs {

const char *
toString(DegradedReason reason)
{
    switch (reason) {
      case DegradedReason::DeadlineExpired:
        return "deadline_expired";
      case DegradedReason::Partition:
        return "partition";
      case DegradedReason::QuorumFloor:
        return "quorum_floor";
      case DegradedReason::NonConverged:
        return "non_converged";
    }
    return "unknown";
}

void
recordDegraded(const DegradedRound &occurrence)
{
    metrics()
        .counter(std::string("degraded.rounds.") +
                 toString(occurrence.reason))
        .add();
    if (auto *sink = traceSink()) {
        TraceEvent(*sink, "degraded_round")
            .field("source", occurrence.source)
            .field("reason", toString(occurrence.reason))
            .field("round", occurrence.round)
            .field("quorum", occurrence.quorum)
            .field("stale", occurrence.stale);
    }
}

} // namespace amdahl::obs
