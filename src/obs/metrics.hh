/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms with O(1) hot-path recording.
 *
 * The paper's headline numbers — convergence in tens of iterations
 * (Fig. 13), negligible clearing overhead (§VI) — are aggregate
 * claims; this registry is where the library accounts for them at
 * runtime. Instrumented code looks a metric up once (a map lookup per
 * solve/epoch, never per iteration) and then records through a stable
 * reference: counters are a saturating add, gauges a store, histogram
 * records a binary search over a handful of fixed bucket bounds.
 *
 * Snapshots decouple exporters from live metrics: snapshot() copies
 * the current values, reset() zeroes them (metric *names* persist so
 * handles stay valid), and the text/JSON exporters render either the
 * registry or a snapshot.
 *
 * Thread safety: recording is safe from pool workers (src/exec/) —
 * counters and gauges are lock-free atomics, histograms and the
 * name->metric maps take a mutex. Counter totals stay deterministic
 * (addition commutes); histogram *bucket counts* do too, though
 * concurrent recording interleaves the internal sum in arbitrary
 * order (the exported sums of all current phase timers are wall-time
 * anyway, outside the determinism contract).
 */

#ifndef AMDAHL_OBS_METRICS_HH
#define AMDAHL_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace amdahl::obs {

/** Monotonic event count. Saturates at the top of uint64 rather than
 *  wrapping, so a long-running process can never report a small count
 *  after an overflow. Lock-free; safe to add() from pool workers. */
class Counter
{
  public:
    /** Add @p n events (saturating). */
    void
    add(std::uint64_t n = 1)
    {
        const std::uint64_t max = ~std::uint64_t{0};
        // CAS loop rather than fetch_add: saturation must not wrap
        // even transiently under concurrent adds.
        std::uint64_t current =
            value_.load(std::memory_order_relaxed);
        std::uint64_t next;
        do {
            next = (current > max - n) ? max : current + n;
        } while (!value_.compare_exchange_weak(
            current, next, std::memory_order_relaxed));
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. Lock-free. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    void
    add(double delta)
    {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            current, current + delta, std::memory_order_relaxed)) {
        }
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.
 *
 * Bucket i counts samples v with v <= upperBounds[i] (first matching
 * bucket); samples above the last bound land in an implicit overflow
 * bucket. Bounds are fixed at creation — recording never allocates.
 * Recording and reading take an internal mutex, so pool workers may
 * record concurrently.
 */
class Histogram
{
  public:
    /**
     * @param upperBounds Inclusive upper bounds, strictly increasing,
     *                    finite, non-empty (fatal otherwise).
     */
    explicit Histogram(std::vector<double> upperBounds);

    /** Record one sample. NaN samples are counted in the overflow
     *  bucket and excluded from sum/min/max. */
    void record(double value);

    std::uint64_t count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }
    double sum() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sum_;
    }
    /** Smallest/largest non-NaN sample seen (0 before any sample). */
    double minSeen() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sampled_ ? min_ : 0.0;
    }
    double maxSeen() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sampled_ ? max_ : 0.0;
    }

    /** Bounds are immutable after construction — no lock needed. */
    const std::vector<double> &upperBounds() const { return bounds_; }

    /** @return Count of bucket @p i; index bounds_.size() is the
     *  overflow bucket. */
    std::uint64_t bucketCount(std::size_t i) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return counts_[i];
    }

    /**
     * Estimate the @p q quantile (q in [0, 1]) by linear
     * interpolation within the bucket holding the target rank.
     * Clamped to the observed [min, max]; 0 when empty.
     */
    double quantile(double q) const;

    /** Zero all counts; bounds are preserved. */
    void reset();

  private:
    std::vector<double> bounds_;
    mutable std::mutex mutex_; // guards everything below
    std::vector<std::uint64_t> counts_; // bounds_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    std::uint64_t sampled_ = 0; // count_ minus NaN samples
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Point-in-time copy of one counter. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** Point-in-time copy of one gauge. */
struct GaugeSample
{
    std::string name;
    double value = 0.0;
};

/** Point-in-time copy of one histogram. */
struct HistogramSample
{
    std::string name;
    std::vector<double> upperBounds;
    std::vector<std::uint64_t> bucketCounts; // incl. overflow
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** Same estimate as Histogram::quantile over the copied counts. */
    double quantile(double q) const;
};

/** Point-in-time copy of a whole registry, ordered by metric name. */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /** @return true when no metric was ever registered. */
    bool empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /**
     * Human-readable dump, one metric per line.
     *
     * @return IoError when the stream is in a failed state after the
     * write + flush (metrics silently lost to a full disk are a
     * observability hole, not a shrug).
     */
    Status writeText(std::ostream &os) const;

    /** One JSON object: {"counters":{...},"gauges":{...},
     *  "histograms":{...}}. Same IoError contract as writeText. */
    Status writeJson(std::ostream &os) const;
};

/**
 * Named metric store. Lookup by name creates on first use; the
 * returned references are stable for the registry's lifetime (metrics
 * live behind unique_ptr, so map rebalancing never moves them).
 * Lookups, snapshot(), and reset() are mutex-guarded.
 */
class MetricsRegistry
{
  public:
    /** @return The counter named @p name (created zeroed on first
     *  use). */
    Counter &counter(std::string_view name);

    /** @return The gauge named @p name. */
    Gauge &gauge(std::string_view name);

    /**
     * @return The histogram named @p name. @p upperBounds applies on
     * first use only; later calls return the existing histogram
     * regardless (fatal if they pass conflicting non-empty bounds).
     */
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &upperBounds);

    /** Copy every metric's current value. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric (names and bucket layouts persist). */
    void reset();

    /** Snapshot + MetricsSnapshot::writeText (same IoError contract). */
    Status writeText(std::ostream &os) const;
    /** Snapshot + MetricsSnapshot::writeJson (same IoError contract). */
    Status writeJson(std::ostream &os) const;

  private:
    mutable std::mutex mutex_; // guards the maps, not the metrics
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/** The process-wide registry the library's instrumentation records
 *  into. Tests that assert on counts should reset() it first. */
MetricsRegistry &metrics();

/**
 * Build-configuration tag embedded in exported metric documents so a
 * collected artifact says what produced it, e.g.
 * "relwithdebinfo,checked,asan".
 */
std::string buildFlagsString();

} // namespace amdahl::obs

#endif // AMDAHL_OBS_METRICS_HH
