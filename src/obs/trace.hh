/**
 * @file
 * Structured trace sink: one JSON object per line (JSONL).
 *
 * The market's offline benches report *aggregates*; when a specific
 * epoch converges slowly, sheds a job, or falls down the fallback
 * ladder, only a per-decision event stream can say why. Instrumented
 * code emits typed events — epoch start/end, per-iteration price
 * residuals, admission and shed decisions, churn and rollback,
 * fallback transitions, deadline expiries — through a process-global
 * sink.
 *
 * Cost model: the sink is disabled (null) by default, and every
 * emission site guards on `traceSink()` — a single atomic pointer
 * load — so the disabled path allocates nothing, formats nothing, and
 * perturbs no result. With a sink installed, events are deterministic
 * functions of the computation: a monotonic sequence number stands in
 * for wall time, so two runs with the same seed produce byte-identical
 * traces (golden-tested).
 *
 * Event schema: every line carries "seq" (monotonic from 1) and "ev"
 * (the event type); remaining fields are per-type. DESIGN.md §10
 * documents the full schema; tools/check_trace_schema.py validates a
 * captured trace against it.
 */

#ifndef AMDAHL_OBS_TRACE_HH
#define AMDAHL_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/status.hh"

namespace amdahl::obs {

/**
 * Destination of a trace stream. Install with setTraceSink(); the
 * caller owns both the sink and the stream it wraps, and must
 * uninstall (setTraceSink(nullptr) or TraceGuard) before either dies.
 *
 * Emission is thread-safe (atomic sequence numbers, mutexed writes);
 * byte-identical trace *order* additionally requires that events are
 * emitted from one thread at a time, which the solvers guarantee by
 * tracing only from the submitting thread, never inside pool regions
 * (see src/exec/thread_pool.hh).
 */
class TraceSink
{
  public:
    /** @param os Stream to receive JSONL lines (not owned). */
    explicit TraceSink(std::ostream &os) : os_(&os) {}

    /** @return The next sequence number (monotonic from 1). */
    std::uint64_t
    nextSeq()
    {
        return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** Write one complete JSON line (newline appended). */
    void write(const std::string &line);

    /**
     * Flush the underlying stream.
     *
     * @return IoError when the stream entered a failed state — silent
     * trace loss (disk full, EACCES target) must surface to the CLI
     * instead of being swallowed. The failure also latches into
     * status().
     */
    Status flush();

    /**
     * @return The first write/flush failure observed, or Status::ok().
     * Stream badbit/failbit is checked on every write; the status is
     * sticky so a transiently failing sink is still reported at exit.
     */
    Status status() const;

    /** @return Bytes written so far (newlines included). After
     *  resume(), counts continue from the restored offset. */
    std::uint64_t
    bytesWritten() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    /** @return The last sequence number handed out (0 = none yet). */
    std::uint64_t
    currentSeq() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    /**
     * Continue an interrupted stream: the next event uses sequence
     * @p seq + 1 and byte accounting starts at @p bytes. Used by crash
     * recovery after truncating the trace file to its durable prefix,
     * so a recovered run's trace is byte-identical to an uninterrupted
     * one.
     */
    void resume(std::uint64_t bytes, std::uint64_t seq);

  private:
    std::ostream *os_;
    mutable std::mutex writeMutex_;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> bytes_{0};
    /** Guarded by writeMutex_; first failure wins. */
    bool failed_ = false;
    std::string failureText_;
};

/** @return The installed sink, or nullptr when tracing is disabled.
 *  Emission sites guard on this — it is the whole disabled path. */
TraceSink *traceSink();

/**
 * Install (or, with nullptr, remove) the process-global sink.
 * Also routes warn()/inform() into the sink as "log" events while
 * installed (stderr behavior unchanged).
 *
 * @return The previously installed sink.
 */
TraceSink *setTraceSink(TraceSink *sink);

/** RAII sink installation for scoped captures (tests, CLI runs). */
class TraceGuard
{
  public:
    explicit TraceGuard(TraceSink &sink)
        : previous_(setTraceSink(&sink))
    {}
    ~TraceGuard() { setTraceSink(previous_); }
    TraceGuard(const TraceGuard &) = delete;
    TraceGuard &operator=(const TraceGuard &) = delete;

  private:
    TraceSink *previous_;
};

/**
 * Builder for one trace event; emits on destruction.
 *
 *     if (auto *sink = obs::traceSink()) {
 *         obs::TraceEvent(*sink, "bidding_iter")
 *             .field("iter", it)
 *             .field("max_delta", delta);
 *     }
 */
class TraceEvent
{
  public:
    TraceEvent(TraceSink &sink, std::string_view event);
    ~TraceEvent();
    TraceEvent(const TraceEvent &) = delete;
    TraceEvent &operator=(const TraceEvent &) = delete;

    TraceEvent &field(std::string_view key, std::string_view value);
    TraceEvent &field(std::string_view key, const char *value);
    TraceEvent &field(std::string_view key, double value);
    TraceEvent &field(std::string_view key, bool value);

    /** Integral fields (int, size_t, uint64_t, ...). */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    TraceEvent &
    field(std::string_view key, T value)
    {
        if constexpr (std::is_signed_v<T>)
            return fieldSigned(key, static_cast<std::int64_t>(value));
        else
            return fieldUnsigned(key,
                                 static_cast<std::uint64_t>(value));
    }

  private:
    TraceEvent &fieldSigned(std::string_view key, std::int64_t value);
    TraceEvent &fieldUnsigned(std::string_view key,
                              std::uint64_t value);
    void appendKey(std::string_view key);

    TraceSink *sink_;
    std::string line_;
};

} // namespace amdahl::obs

#endif // AMDAHL_OBS_TRACE_HH
