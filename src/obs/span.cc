#include "span.hh"

#include <atomic>

namespace amdahl::obs {

namespace {

/**
 * The effective span sink: non-null only while a trace sink is
 * installed AND span tracing is enabled. Kept pre-combined so the
 * hot-path guard in spanSink() is one relaxed load, mirroring the
 * trace sink's own disabled-path contract.
 */
std::atomic<TraceSink *> globalSpanSink{nullptr};

/** The operator's `--span-trace` request, independent of sink life. */
std::atomic<bool> spanEnabled{false};

/** Last sink observed from setTraceSink(), for re-enable after the
 *  flag flips while a sink is already installed. */
std::atomic<TraceSink *> lastTraceSink{nullptr};

void
recomputeSpanSink()
{
    TraceSink *sink = lastTraceSink.load(std::memory_order_relaxed);
    const bool on = spanEnabled.load(std::memory_order_relaxed);
    globalSpanSink.store(on ? sink : nullptr,
                         std::memory_order_relaxed);
}

} // namespace

std::string_view
toString(SpanCause cause)
{
    switch (cause) {
    case SpanCause::Compute:
        return "compute";
    case SpanCause::NetDelay:
        return "net_delay";
    case SpanCause::Retransmit:
        return "retransmit";
    case SpanCause::PartitionWait:
        return "partition_wait";
    case SpanCause::QuorumWait:
        return "quorum_wait";
    }
    return "compute";
}

TraceSink *
spanSink()
{
    return globalSpanSink.load(std::memory_order_relaxed);
}

bool
setSpanTracingEnabled(bool enabled)
{
    const bool previous =
        spanEnabled.exchange(enabled, std::memory_order_relaxed);
    recomputeSpanSink();
    return previous;
}

bool
spanTracingEnabled()
{
    return spanEnabled.load(std::memory_order_relaxed);
}

namespace {

/**
 * Causal parent of spans opened below the current point. Atomic to
 * satisfy the CONC-global contract, but semantically single-writer:
 * spans (like all trace events) are emitted only from the submitting
 * thread, never inside pool regions.
 */
std::atomic<std::uint64_t> globalSpanParent{0};

} // namespace

std::uint64_t
currentSpanParent()
{
    return globalSpanParent.load(std::memory_order_relaxed);
}

std::uint64_t
setSpanParent(std::uint64_t id)
{
    return globalSpanParent.exchange(id, std::memory_order_relaxed);
}

namespace detail {

void
spanOnTraceSinkChanged(TraceSink *sink)
{
    lastTraceSink.store(sink, std::memory_order_relaxed);
    recomputeSpanSink();
}

} // namespace detail

} // namespace amdahl::obs
