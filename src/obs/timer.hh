/**
 * @file
 * Scoped wall-time instrumentation for the market's hot phases.
 *
 * Section VI claims clearing overhead is negligible; these timers are
 * how a running system substantiates that, phase by phase: bidding
 * solves, solver rungs, Hamilton rounding, and online epochs each
 * record into a per-phase microsecond histogram in the global metrics
 * registry.
 *
 * Timing is off by default. When off, timeHistogram() returns nullptr
 * and ScopedTimer never touches the clock, so instrumented code runs
 * the exact uninstrumented instruction stream apart from one branch —
 * results are bit-identical and benches see no measurable slowdown.
 * Turn it on (setTimingEnabled) before a run whose metrics snapshot
 * should contain phase timings; the clock is steady_clock, so the
 * recorded values are machine-dependent and never belong in golden
 * files (traces carry no timings for exactly that reason).
 *
 * obs/ is the designated owner of clock reads: amdahl_lint's
 * DET-clock rule flags steady_clock/system_clock anywhere else in
 * src/ (see tools/lint/ and DESIGN.md §12).
 */

#ifndef AMDAHL_OBS_TIMER_HH
#define AMDAHL_OBS_TIMER_HH

#include <chrono>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"

namespace amdahl::obs {

/** @return true while phase timing is enabled. */
bool timingEnabled();

/**
 * Globally enable/disable phase timing.
 *
 * @return The previous setting.
 */
bool setTimingEnabled(bool on);

/**
 * Exponential microsecond bucket ladder shared by every phase timer
 * (1us .. ~16s, powers of 4), so phase histograms are comparable.
 */
const std::vector<double> &timeBucketsUs();

/**
 * @return The registry histogram for phase @p name with the standard
 * time buckets, or nullptr while timing is disabled. Call once per
 * phase execution (it is a map lookup), not per inner iteration.
 */
Histogram *timeHistogram(std::string_view name);

/** Records elapsed microseconds into a histogram on destruction;
 *  no-op (and clock-free) when constructed with nullptr. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *histogram) : histogram_(histogram)
    {
        if (histogram_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (histogram_ == nullptr)
            return;
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        histogram_->record(
            std::chrono::duration<double, std::micro>(elapsed)
                .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *histogram_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace amdahl::obs

#endif // AMDAHL_OBS_TIMER_HH
