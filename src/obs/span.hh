/**
 * @file
 * Causal span layer over the JSONL trace sink.
 *
 * A span is one causally-delimited interval of *virtual* time: an
 * epoch, a fallback-ladder rung, a clearing round, its barrier wait,
 * a compute batch, a price fold, or one message transfer (send →
 * delivery) on a transport edge. Spans form a DAG through parent
 * links, so an analyzer (tools/trace_analyze.py, `amdahl_market trace
 * analyze`) can reconstruct the per-round critical path and attribute
 * every tick of round latency to a cause: compute, network delay,
 * retransmit backoff, partition wait, or quorum wait.
 *
 * Determinism contract (same as the rest of src/obs/):
 *  - Span IDs are pure functions of stable coordinates (seed, epoch,
 *    global round, edge, attempt) via the SplitMix64 finalizer —
 *    never a clock read, never a racing counter.
 *  - Begin/end stamps are net::VirtualClock ticks, never wall time.
 *  - Same-seed runs produce byte-identical span streams.
 *
 * Cost model: span tracing is opt-in (`--span-trace`) on top of an
 * installed trace sink. Every emission site guards on spanSink() — a
 * single atomic pointer load, null unless *both* a sink is installed
 * *and* span tracing is enabled — so the disabled path emits nothing
 * and the trace byte stream is identical to a build without spans.
 *
 * Wire schema (one `span` event per *completed* span, emitted once
 * its virtual end tick is known):
 *
 *     {"seq":N,"ev":"span","name":"round","id":u64,"parent":u64,
 *      "t0":ticks,"t1":ticks, ...per-name extras}
 *
 * `parent` 0 marks a root span. DESIGN.md §15 documents the full
 * schema, the ID derivation, and the critical-path algorithm.
 */

#ifndef AMDAHL_OBS_SPAN_HH
#define AMDAHL_OBS_SPAN_HH

#include <cstdint>
#include <string_view>

#include "common/random.hh"
#include "obs/trace.hh"

namespace amdahl::obs {

/**
 * Span kinds double as ID-derivation domains: the kind tag is the
 * first word mixed into spanId(), so an epoch and a round with the
 * same coordinates can never collide.
 */
enum class SpanKind : std::uint64_t
{
    Epoch = 1,
    Rung = 2,
    Round = 3,
    Barrier = 4,
    Compute = 5,
    Fold = 6,
    Xfer = 7,
};

/**
 * Dominant cause of a round's virtual-time latency, written into the
 * round span's "cause" field. A round's per-cause tick breakdown
 * (c_compute, c_delay, c_retransmit, c_partition, c_quorum) always
 * sums exactly to its latency (t1 - t0); the enum names the largest
 * contributor, with zero-latency rounds attributed to compute (the
 * kernel is instantaneous in virtual time, so a zero-tick round is a
 * pure-compute round by construction).
 */
enum class SpanCause
{
    Compute,
    NetDelay,
    Retransmit,
    PartitionWait,
    QuorumWait,
};

/** @return The lowercase wire token for @p cause. */
std::string_view toString(SpanCause cause);

/**
 * Derive a deterministic span ID from a kind tag and up to three
 * coordinate words. Pure SplitMix64 mixing — no clocks, no counters —
 * so the same (kind, a, b, c) yields the same ID in every same-seed
 * run, at any thread or shard count. 0 is reserved for "no parent"
 * (the mix cannot return it: the result is forced odd).
 */
inline std::uint64_t
spanId(SpanKind kind, std::uint64_t a, std::uint64_t b = 0,
       std::uint64_t c = 0)
{
    std::uint64_t h = mix64(static_cast<std::uint64_t>(kind));
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    return h | 1u;
}

/**
 * @return The trace sink when span tracing is live, else nullptr.
 * This single relaxed atomic load is the whole disabled path: null
 * whenever no trace sink is installed *or* span tracing is off.
 */
TraceSink *spanSink();

/**
 * Enable or disable span emission (the `--span-trace` switch). The
 * effective sink stays null until a trace sink is also installed.
 *
 * @return The previous enablement.
 */
bool setSpanTracingEnabled(bool enabled);

/** @return Whether span emission is currently requested. */
bool spanTracingEnabled();

/**
 * Current causal parent for spans opened below this point (0 = root).
 * A plain process-global, not thread-local: spans are only ever
 * emitted from the submitting thread (the same single-writer rule the
 * trace sink's byte-identical ordering already relies on).
 */
std::uint64_t currentSpanParent();

/** Set the current causal parent. @return The previous parent. */
std::uint64_t setSpanParent(std::uint64_t id);

/** RAII parent scope: spans emitted inside parent to @p id. */
class SpanParentScope
{
  public:
    explicit SpanParentScope(std::uint64_t id)
        : previous_(setSpanParent(id))
    {}
    ~SpanParentScope() { setSpanParent(previous_); }
    SpanParentScope(const SpanParentScope &) = delete;
    SpanParentScope &operator=(const SpanParentScope &) = delete;

  private:
    std::uint64_t previous_;
};

/**
 * Builder for one completed-span trace event; emits on destruction.
 * Ticks are std::uint64_t (net::Ticks) — obs/ stays below net/ in the
 * layering, so the clock type is not named here.
 *
 *     if (auto *sink = obs::spanSink())
 *         obs::SpanEvent(*sink, "round", id, parent, t0, t1)
 *             .field("round", g)
 *             .field("cause", obs::toString(cause));
 */
class SpanEvent
{
  public:
    SpanEvent(TraceSink &sink, std::string_view name, std::uint64_t id,
              std::uint64_t parent, std::uint64_t t0, std::uint64_t t1)
        : ev_(sink, "span")
    {
        ev_.field("name", name)
            .field("id", id)
            .field("parent", parent)
            .field("t0", t0)
            .field("t1", t1);
    }

    template <typename T>
    SpanEvent &
    field(std::string_view key, T value)
    {
        ev_.field(key, value);
        return *this;
    }

  private:
    TraceEvent ev_;
};

namespace detail {

/** Recompute the effective span sink; called by setTraceSink(). */
void spanOnTraceSinkChanged(TraceSink *sink);

} // namespace detail

} // namespace amdahl::obs

#endif // AMDAHL_OBS_SPAN_HH
