/**
 * @file
 * Colocation interference model (Section VI-E).
 *
 * Workloads are profiled in isolation, but real systems colocate jobs
 * that compete for shared cache and memory, degrading performance by
 * 5-15% (the paper cites [41]). Isolation profiles therefore
 * over-estimate the effective parallel fraction. This model provides
 * both views used in the paper's sensitivity study:
 *
 *  - a simulator-level slowdown derived from colocated core pressure
 *    (fed into TaskSimulator::setInterferenceSlowdown), and
 *  - the direct parallel-fraction reduction the paper applies when
 *    generating Figure 12.
 */

#ifndef AMDAHL_SIM_INTERFERENCE_HH
#define AMDAHL_SIM_INTERFERENCE_HH

#include "sim/server.hh"

namespace amdahl::sim {

/**
 * Shared-resource contention on a chip multiprocessor.
 */
class InterferenceModel
{
  public:
    /**
     * @param max_degradation Peak fractional slowdown when the rest of
     *                        the server is fully occupied by co-runners
     *                        (default 15%, the top of the paper's range).
     */
    explicit InterferenceModel(double max_degradation = 0.15);

    /** @return The configured peak degradation fraction. */
    double maxDegradation() const { return maxDegradation_; }

    /**
     * Slowdown factor (>= 1) experienced by a job.
     *
     * Degradation scales with the share of the server's cores held by
     * co-runners: an otherwise idle server yields 1.0; a server whose
     * remaining cores are all busy yields 1 + max_degradation.
     *
     * @param own_cores       Cores held by the job itself.
     * @param colocated_cores Cores held by co-runners on the server.
     * @param server          The server both run on.
     */
    double slowdown(int own_cores, int colocated_cores,
                    const ServerConfig &server) const;

    /**
     * The effective parallel fraction under a given slowdown.
     *
     * If contention multiplies parallel-phase time by the slowdown k,
     * the speedup curve behaves as if the parallel fraction shrank:
     * f_eff = k f / (k f + (1 - f) ... ) reduces (for the paper's
     * first-order treatment) to a simple relative reduction. The paper
     * applies the reduction directly; so do we.
     *
     * @param fraction        Isolated-profile parallel fraction in [0,1].
     * @param reduction_pct   Relative reduction in percent (e.g. 10 for
     *                        a 10% cut).
     * @return fraction * (1 - reduction_pct / 100), floored at 0.
     */
    static double reduceParallelFraction(double fraction,
                                         double reduction_pct);

  private:
    double maxDegradation_;
};

} // namespace amdahl::sim

#endif // AMDAHL_SIM_INTERFERENCE_HH
