#include "task_sim.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"

namespace amdahl::sim {

int
ExecutionResult::totalTasks() const
{
    int total = 0;
    for (const auto &stage : stages)
        total += stage.tasks;
    return total;
}

double
ExecutionResult::totalCommSeconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.commSeconds;
    return total;
}

TaskSimulator::TaskSimulator(ServerConfig server) : config(std::move(server))
{
    if (config.cores() <= 0)
        fatal("simulator needs a server with cores");
}

void
TaskSimulator::setInterferenceSlowdown(double factor)
{
    if (factor < 1.0)
        fatal("interference slowdown must be >= 1, got ", factor);
    interference = factor;
}

void
TaskSimulator::setTaskFailureRate(double probability)
{
    if (probability < 0.0 || probability >= 1.0)
        fatal("task failure rate must be in [0, 1), got ", probability);
    failureRate = probability;
}

ExecutionResult
TaskSimulator::execute(const WorkloadSpec &workload, double datasetGB,
                       int cores) const
{
    workload.validate();
    if (datasetGB <= 0.0)
        fatal("dataset size must be positive, got ", datasetGB);
    if (cores < 1)
        fatal("core count must be >= 1, got ", cores);
    if (cores > config.cores()) {
        fatal("core count ", cores, " exceeds server capacity ",
              config.cores());
    }

    const double dataset_scale =
        std::pow(datasetGB / workload.datasetGB, workload.timeExponent);

    ExecutionResult result;
    result.cores = cores;
    result.datasetGB = datasetGB;

    double now = 0.0;
    for (std::size_t si = 0; si < workload.stages.size(); ++si) {
        const StageSpec &spec = workload.stages[si];
        StageResult stage;
        stage.label = spec.label;
        stage.startSeconds = now;

        // Serial driver-side portion.
        stage.serialSeconds = spec.serialSeconds * dataset_scale;
        now += stage.serialSeconds;

        if (spec.parallelSeconds > 0.0) {
            // Task population and mean duration.
            int tasks;
            if (spec.scaling == TaskScaling::BlocksOfDataset) {
                tasks = std::max(
                    1, static_cast<int>(
                           std::ceil(datasetGB / workload.blockSizeGB)));
            } else {
                tasks = spec.fixedTasks;
            }
            const double total_work = spec.parallelSeconds * dataset_scale;
            const double mean_task = total_work / tasks;

            const int workers = std::min(cores, tasks);
            stage.tasks = tasks;
            stage.workers = workers;

            // DRAM bandwidth throttling from aggregate demand. Demand
            // ramps with dataset size up to the saturation point: small
            // inputs live in the last-level cache and barely touch
            // DRAM, and the spill is sharp (quadratic ramp), which is
            // why sampled datasets miss the ceiling entirely.
            double per_core_demand = workload.memBandwidthPerCoreGBps;
            if (workload.memBandwidthSaturationGB > 0.0) {
                const double ratio = std::min(
                    1.0, datasetGB / workload.memBandwidthSaturationGB);
                per_core_demand *= ratio * ratio;
            }
            const double demand = workers * per_core_demand;
            stage.bandwidthSlowdown =
                std::max(1.0, demand / config.memoryBandwidthGBps);

            // Interference grows with worker count: one worker feels no
            // co-runner pressure; a machine-filling stage pays the full
            // configured factor.
            double interference_slowdown = 1.0;
            if (interference > 1.0 && config.cores() > 1) {
                interference_slowdown =
                    1.0 + (interference - 1.0) * (workers - 1) /
                              (config.cores() - 1);
            }

            // Deterministic straggler skew per (workload, stage).
            SplitMix64 jitter(workload.seed * 0x9e37UL + si * 0x85ebUL +
                              0xc2b2ae3d27d4eb4fULL);
            // Separate stream for failure injection so a zero rate
            // reproduces bit-identical schedules.
            SplitMix64 faults(workload.seed * 0xfa17UL + si * 0x7a5cUL +
                              0x9e3779b97f4a7c15ULL);

            // Earliest-free-core list scheduling with a serialized
            // dispatcher: task k cannot start before its dispatch
            // completes nor before a worker frees up.
            std::priority_queue<double, std::vector<double>,
                                std::greater<>> free_at(
                std::greater<>(), std::vector<double>(workers, now));
            double dispatch_clock = now;
            double stage_end = now;
            for (int k = 0; k < tasks; ++k) {
                const double u =
                    static_cast<double>(jitter.next() >> 11) * 0x1.0p-53;
                double duration = mean_task *
                                  (1.0 + spec.taskSkew * (u - 0.5)) *
                                  stage.bandwidthSlowdown *
                                  interference_slowdown;
                if (failureRate > 0.0) {
                    const double f =
                        static_cast<double>(faults.next() >> 11) *
                        0x1.0p-53;
                    if (f < failureRate) {
                        // Failure detected at completion; the retry
                        // re-runs the task on the same core.
                        duration *= 2.0;
                        ++stage.failures;
                    }
                }
                dispatch_clock += workload.dispatchSecondsPerTask;
                const double core_free = free_at.top();
                free_at.pop();
                const double start = std::max(dispatch_clock, core_free);
                const double finish = start + duration;
                free_at.push(finish);
                stage_end = std::max(stage_end, finish);
            }
            now = stage_end;

            // Communication/synchronization growing with worker count;
            // skewed datasets (graphs) scale it super-linearly in the
            // input fraction.
            const double comm_scale =
                std::pow(datasetGB / workload.datasetGB,
                         workload.commDatasetExponent);
            stage.commSeconds = workload.commSecondsPerWorker *
                                (workers - 1) * comm_scale;
            now += stage.commSeconds;
        }

        stage.endSeconds = now;
        result.stages.push_back(std::move(stage));
    }

    result.totalSeconds = now;
    ensure(result.totalSeconds >= 0.0, "negative simulated time");
    return result;
}

double
TaskSimulator::executionSeconds(const WorkloadSpec &workload,
                                double datasetGB, int cores) const
{
    return execute(workload, datasetGB, cores).totalSeconds;
}

double
TaskSimulator::speedup(const WorkloadSpec &workload, double datasetGB,
                       int cores) const
{
    const double t1 = executionSeconds(workload, datasetGB, 1);
    const double tx = executionSeconds(workload, datasetGB, cores);
    ensure(tx > 0.0, "zero execution time for ", workload.name);
    return t1 / tx;
}

} // namespace amdahl::sim
