/**
 * @file
 * Closed-form analytical performance model.
 *
 * A first-order companion to the event-driven TaskSimulator: instead
 * of scheduling every task, each stage's duration is computed from
 * wave counts, bandwidth ceilings, dispatch serialization, and
 * communication terms. Three to four orders of magnitude faster than
 * event simulation, at the cost of ignoring task-skew straggling —
 * the classic detailed-model / fast-model pair of architecture
 * studies. Cross-validated against the event-driven simulator in
 * tests/property/test_analytical_properties.cc.
 */

#ifndef AMDAHL_SIM_ANALYTICAL_HH
#define AMDAHL_SIM_ANALYTICAL_HH

#include "sim/server.hh"
#include "sim/workload.hh"

namespace amdahl::sim {

/**
 * Analytical execution-time estimator.
 */
class AnalyticalModel
{
  public:
    /** @param server Hardware model (same role as the simulator's). */
    explicit AnalyticalModel(ServerConfig server = ServerConfig());

    /** @return The hardware model. */
    const ServerConfig &server() const { return config; }

    /**
     * First-order execution time.
     *
     * Per stage: serial driver time plus the larger of the compute
     * bound (task waves at the bandwidth-throttled task duration) and
     * the dispatch bound (the serialized driver feeding workers),
     * plus communication growing with the worker count.
     *
     * @param workload  The benchmark.
     * @param datasetGB Input size (> 0).
     * @param cores     Allocation (>= 1, within the server).
     */
    double executionSeconds(const WorkloadSpec &workload,
                            double datasetGB, int cores) const;

    /** @return T(1) / T(x) under the analytical model. */
    double speedup(const WorkloadSpec &workload, double datasetGB,
                   int cores) const;

  private:
    ServerConfig config;
};

} // namespace amdahl::sim

#endif // AMDAHL_SIM_ANALYTICAL_HH
