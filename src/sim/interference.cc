#include "interference.hh"

#include <algorithm>

#include "common/logging.hh"

namespace amdahl::sim {

InterferenceModel::InterferenceModel(double max_degradation)
    : maxDegradation_(max_degradation)
{
    if (max_degradation < 0.0 || max_degradation >= 1.0)
        fatal("max degradation must be in [0, 1), got ", max_degradation);
}

double
InterferenceModel::slowdown(int own_cores, int colocated_cores,
                            const ServerConfig &server) const
{
    if (own_cores < 0 || colocated_cores < 0)
        fatal("negative core counts in interference model");
    const int total = server.cores();
    if (own_cores + colocated_cores > total) {
        fatal("core counts ", own_cores, "+", colocated_cores,
              " exceed server capacity ", total);
    }
    const int others_capacity = total - own_cores;
    if (others_capacity <= 0)
        return 1.0; // The job owns the machine: nobody to contend with.
    const double pressure =
        static_cast<double>(colocated_cores) / others_capacity;
    return 1.0 + maxDegradation_ * pressure;
}

double
InterferenceModel::reduceParallelFraction(double fraction,
                                          double reduction_pct)
{
    if (fraction < 0.0 || fraction > 1.0)
        fatal("parallel fraction ", fraction, " outside [0, 1]");
    if (reduction_pct < 0.0 || reduction_pct > 100.0)
        fatal("reduction percentage ", reduction_pct, " outside [0, 100]");
    return std::max(0.0, fraction * (1.0 - reduction_pct / 100.0));
}

} // namespace amdahl::sim
