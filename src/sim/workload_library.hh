/**
 * @file
 * The 22-benchmark workload library (Table I of the paper).
 *
 * Each entry is a synthetic workload calibrated so its *measured*
 * behavior under the simulator reproduces the paper's characterization:
 * structural parallel fractions spanning ~0.55-0.99, graph-analytics
 * workloads whose Karp-Flatt estimate falls with core count (heavy
 * communication), kmeans with only 11 tasks on its 327 MB dataset,
 * dedup dominated by inter-thread communication (effective f ~= 0.53),
 * and canneal throttled by DRAM bandwidth on full-size inputs only.
 *
 * The substitution is documented in DESIGN.md: the paper ran the real
 * Spark/PARSEC binaries; the market only ever consumes measured execution
 * times, so calibrated synthetic workloads exercise identical code paths.
 */

#ifndef AMDAHL_SIM_WORKLOAD_LIBRARY_HH
#define AMDAHL_SIM_WORKLOAD_LIBRARY_HH

#include <string_view>
#include <vector>

#include "sim/workload.hh"

namespace amdahl::sim {

/**
 * @return The full Table I library (12 Spark + 10 PARSEC workloads),
 * ordered by paper ID. Constructed once, then cached.
 */
const std::vector<WorkloadSpec> &workloadLibrary();

/**
 * Look up a workload by name ("correlation", "dedup", ...).
 *
 * @throws FatalError if the name is unknown.
 */
const WorkloadSpec &findWorkload(std::string_view name);

/** @return All workload names in library order. */
std::vector<std::string> workloadNames();

/**
 * Extension workloads beyond Table I, exercising the methodology's
 * documented edge cases:
 *
 *  - "qr": QR decomposition — execution time scales *quadratically*
 *    with dataset size (Section IV-A notes such workloads need
 *    polynomial models instead of linear ones).
 *
 * Kept separate so Table I remains exactly the paper's 22 entries.
 */
const std::vector<WorkloadSpec> &extensionWorkloads();

/** Look up an extension workload by name; fatal if unknown. */
const WorkloadSpec &findExtensionWorkload(std::string_view name);

} // namespace amdahl::sim

#endif // AMDAHL_SIM_WORKLOAD_LIBRARY_HH
