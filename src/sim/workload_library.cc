#include "workload_library.hh"

#include <mutex>

#include "common/logging.hh"

namespace amdahl::sim {

namespace {

/** Calibration record for a Spark benchmark. */
struct SparkParams
{
    int id;
    const char *name;
    const char *application;
    const char *dataset;
    double datasetGB;     //!< Full-dataset size.
    double t1Seconds;     //!< Single-core time at the full dataset.
    double parallelFrac;  //!< Structural parallel fraction.
    double dispatch = 0.004;  //!< Driver dispatch seconds per task.
    double comm = 0.0;        //!< Comm seconds per worker per stage.
    int computeStages = 1;    //!< Iterative compute stages.
    double commExponent = 1.0; //!< Comm-vs-dataset scaling exponent.
    double timeExponent = 1.0; //!< Time-vs-dataset scaling exponent.
};

/** Calibration record for a PARSEC benchmark. */
struct ParsecParams
{
    int id;
    const char *name;
    const char *application;
    double datasetGB;     //!< "native" input, expressed as pseudo-GB.
    double t1Seconds;
    double parallelFrac;
    int tasks = 256;          //!< Thread-pool work units in the ROI.
    double comm = 0.0;
    double bandwidthPerCore = 0.0;
    double bandwidthSatGB = 0.0;
};

WorkloadSpec
makeSpark(const SparkParams &p)
{
    WorkloadSpec w;
    w.id = p.id;
    w.name = p.name;
    w.application = p.application;
    w.suite = Suite::Spark;
    w.dataset = p.dataset;
    w.datasetGB = p.datasetGB;
    w.dispatchSecondsPerTask = p.dispatch;
    w.commSecondsPerWorker = p.comm;
    w.commDatasetExponent = p.commExponent;
    w.timeExponent = p.timeExponent;
    w.seed = 0x5a11ULL * static_cast<std::uint64_t>(p.id);

    const double serial = (1.0 - p.parallelFrac) * p.t1Seconds;
    const double parallel = p.parallelFrac * p.t1Seconds;

    // Driver setup, a read wave, compute wave(s), and final aggregation.
    StageSpec setup;
    setup.label = "setup";
    setup.serialSeconds = 0.4 * serial;
    w.stages.push_back(setup);

    StageSpec read;
    read.label = "read";
    read.parallelSeconds = 0.45 * parallel;
    read.scaling = TaskScaling::BlocksOfDataset;
    w.stages.push_back(read);

    const double compute_total = 0.55 * parallel;
    for (int k = 0; k < p.computeStages; ++k) {
        StageSpec compute;
        compute.label =
            p.computeStages == 1 ? "compute"
                                 : "compute-" + std::to_string(k + 1);
        compute.parallelSeconds = compute_total / p.computeStages;
        compute.scaling = TaskScaling::BlocksOfDataset;
        w.stages.push_back(compute);
    }

    StageSpec aggregate;
    aggregate.label = "aggregate";
    aggregate.serialSeconds = 0.6 * serial;
    w.stages.push_back(aggregate);

    w.validate();
    return w;
}

WorkloadSpec
makeParsec(const ParsecParams &p)
{
    WorkloadSpec w;
    w.id = p.id;
    w.name = p.name;
    w.application = p.application;
    w.suite = Suite::Parsec;
    w.dataset = "native";
    w.datasetGB = p.datasetGB;
    w.commSecondsPerWorker = p.comm;
    w.memBandwidthPerCoreGBps = p.bandwidthPerCore;
    w.memBandwidthSaturationGB = p.bandwidthSatGB;
    w.seed = 0xba5eULL * static_cast<std::uint64_t>(p.id);

    const double serial = (1.0 - p.parallelFrac) * p.t1Seconds;
    const double parallel = p.parallelFrac * p.t1Seconds;

    StageSpec init;
    init.label = "init";
    init.serialSeconds = 0.5 * serial;
    w.stages.push_back(init);

    StageSpec roi;
    roi.label = "roi";
    roi.parallelSeconds = parallel;
    roi.scaling = TaskScaling::FixedTasks;
    roi.fixedTasks = p.tasks;
    roi.taskSkew = 0.15;
    w.stages.push_back(roi);

    StageSpec finish;
    finish.label = "finish";
    finish.serialSeconds = 0.5 * serial;
    w.stages.push_back(finish);

    w.validate();
    return w;
}

std::vector<WorkloadSpec>
buildLibrary()
{
    std::vector<WorkloadSpec> lib;
    lib.reserve(22);

    // ------------------------------------------------------------------
    // Spark (Table I, IDs 1-12). Parallel fractions sit in the ranges
    // Figure 2 reports; graph analytics carry communication costs so the
    // measured fraction *falls* with core count (Figure 1's pathology);
    // kmeans's 327 MB census dataset yields only ~11 tasks.
    // ------------------------------------------------------------------
    lib.push_back(makeSpark({1, "correlation", "Statistics", "webspam2011",
                             24.0, 2000.0, 0.97}));
    lib.push_back(makeSpark({2, "decision", "Classifier", "webspam2011",
                             24.0, 2400.0, 0.95}));
    lib.push_back(makeSpark({3, "fpgrowth", "Mining", "wdc'12", 1.4, 400.0,
                             0.93}));
    lib.push_back(makeSpark({4, "gradient", "Classifier", "webspam2011",
                             6.0, 700.0, 0.96}));
    lib.push_back(makeSpark({5, "kmeans", "Clustering", "uscensus", 0.327,
                             120.0, 0.90, 0.05}));
    lib.push_back(makeSpark({6, "linear", "Classifier", "webspam2011",
                             24.0, 2200.0, 0.97}));
    lib.push_back(makeSpark({7, "movie", "Recommender", "movielens", 0.325,
                             150.0, 0.92, 0.03}));
    lib.push_back(makeSpark({8, "bayes", "Classifier", "webspam2011", 6.0,
                             500.0, 0.94}));
    lib.push_back(makeSpark({9, "svm", "Classifier", "webspam2011", 24.0,
                             2600.0, 0.96}));
    lib.push_back(makeSpark({10, "pagerank", "Graph Proc.", "wdc'12", 5.3,
                             900.0, 0.88, 0.004, 1.0, 2, 1.35}));
    lib.push_back(makeSpark({11, "connected", "Graph Proc.", "wdc'12", 6.0,
                             950.0, 0.86, 0.004, 1.0, 2, 1.35}));
    lib.push_back(makeSpark({12, "triangle", "Graph Proc.", "wdc'12", 5.3,
                             1100.0, 0.84, 0.004, 1.2, 2, 1.35}));

    // ------------------------------------------------------------------
    // PARSEC (Table I, IDs 13-22). dedup's pipeline communication drives
    // its effective fraction down to ~0.53; canneal demands enough DRAM
    // bandwidth that full-size inputs throttle at high core counts while
    // sampled inputs (which fit in cache) do not.
    // ------------------------------------------------------------------
    lib.push_back(makeParsec({13, "blackscholes", "Finance", 2.0, 300.0,
                              0.995, 512}));
    lib.push_back(makeParsec({14, "bodytrack", "Vision", 2.0, 260.0,
                              0.93, 261}));
    lib.push_back(makeParsec({15, "canneal", "Engineering", 2.0, 200.0,
                              0.95, 384, 0.0, 28.0, 1.8}));
    lib.push_back(makeParsec({16, "dedup", "Storage", 2.0, 150.0, 0.72,
                              96, 1.0}));
    lib.push_back(makeParsec({17, "ferret", "Search", 2.0, 280.0, 0.95,
                              256}));
    lib.push_back(makeParsec({18, "raytrace", "Visualization", 2.0, 320.0,
                              0.68, 190}));
    lib.push_back(makeParsec({19, "streamcluster", "Data Mining", 2.0,
                              240.0, 0.90, 256, 0.12}));
    lib.push_back(makeParsec({20, "swaptions", "Finance", 2.0, 220.0,
                              0.99, 512}));
    lib.push_back(makeParsec({21, "vips", "Media Proc.", 2.0, 180.0,
                              0.88, 256}));
    lib.push_back(makeParsec({22, "x264", "Media Proc.", 2.0, 200.0,
                              0.96, 512}));

    return lib;
}

} // namespace

const std::vector<WorkloadSpec> &
workloadLibrary()
{
    static const std::vector<WorkloadSpec> library = buildLibrary();
    return library;
}

const WorkloadSpec &
findWorkload(std::string_view name)
{
    for (const auto &workload : workloadLibrary()) {
        if (workload.name == name)
            return workload;
    }
    fatal("unknown workload '", std::string(name), "'");
}

const std::vector<WorkloadSpec> &
extensionWorkloads()
{
    static const std::vector<WorkloadSpec> extensions = [] {
        std::vector<WorkloadSpec> list;
        // QR decomposition: dense linear algebra whose work grows
        // quadratically with the input size. Highly parallel kernel
        // with a serial panel factorization on the critical path.
        SparkParams qr{23,    "qr",  "Linear Algebra", "synthetic",
                       6.0,   800.0, 0.94,             0.004,
                       0.0,   2,     1.0,              2.0};
        list.push_back(makeSpark(qr));
        return list;
    }();
    return extensions;
}

const WorkloadSpec &
findExtensionWorkload(std::string_view name)
{
    for (const auto &workload : extensionWorkloads()) {
        if (workload.name == name)
            return workload;
    }
    fatal("unknown extension workload '", std::string(name), "'");
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(workloadLibrary().size());
    for (const auto &workload : workloadLibrary())
        names.push_back(workload.name);
    return names;
}

} // namespace amdahl::sim
