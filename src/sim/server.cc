#include "server.hh"

#include "common/logging.hh"

namespace amdahl::sim {

Cluster
Cluster::homogeneous(std::size_t count, const ServerConfig &config)
{
    Cluster cluster;
    for (std::size_t j = 0; j < count; ++j)
        cluster.addServer(config);
    return cluster;
}

std::size_t
Cluster::addServer(ServerConfig config)
{
    if (config.cores() <= 0)
        fatal("server must have at least one core");
    servers_.push_back(std::move(config));
    return servers_.size() - 1;
}

const ServerConfig &
Cluster::server(std::size_t j) const
{
    if (j >= servers_.size())
        fatal("server index ", j, " out of range (", servers_.size(), ")");
    return servers_[j];
}

std::vector<double>
Cluster::capacities() const
{
    std::vector<double> caps;
    caps.reserve(servers_.size());
    for (const auto &server : servers_)
        caps.push_back(static_cast<double>(server.cores()));
    return caps;
}

double
Cluster::totalCores() const
{
    double total = 0.0;
    for (const auto &server : servers_)
        total += server.cores();
    return total;
}

} // namespace amdahl::sim
