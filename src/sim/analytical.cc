#include "analytical.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace amdahl::sim {

AnalyticalModel::AnalyticalModel(ServerConfig server)
    : config(std::move(server))
{
    if (config.cores() <= 0)
        fatal("analytical model needs a server with cores");
}

double
AnalyticalModel::executionSeconds(const WorkloadSpec &workload,
                                  double datasetGB, int cores) const
{
    workload.validate();
    if (datasetGB <= 0.0)
        fatal("dataset size must be positive, got ", datasetGB);
    if (cores < 1 || cores > config.cores())
        fatal("core count ", cores, " outside [1, ", config.cores(),
              "]");

    const double dataset_scale =
        std::pow(datasetGB / workload.datasetGB, workload.timeExponent);
    const double comm_scale = std::pow(datasetGB / workload.datasetGB,
                                       workload.commDatasetExponent);

    double total = 0.0;
    for (const auto &spec : workload.stages) {
        total += spec.serialSeconds * dataset_scale;
        if (spec.parallelSeconds <= 0.0)
            continue;

        int tasks;
        if (spec.scaling == TaskScaling::BlocksOfDataset) {
            tasks = std::max(
                1, static_cast<int>(
                       std::ceil(datasetGB / workload.blockSizeGB)));
        } else {
            tasks = spec.fixedTasks;
        }
        const double work = spec.parallelSeconds * dataset_scale;
        const double mean_task = work / tasks;
        const int workers = std::min(cores, tasks);

        double per_core_demand = workload.memBandwidthPerCoreGBps;
        if (workload.memBandwidthSaturationGB > 0.0) {
            const double ratio = std::min(
                1.0, datasetGB / workload.memBandwidthSaturationGB);
            per_core_demand *= ratio * ratio;
        }
        const double slowdown =
            std::max(1.0, workers * per_core_demand /
                              config.memoryBandwidthGBps);

        // Compute bound: whole waves of throttled tasks.
        const int waves =
            (tasks + workers - 1) / workers; // ceil division
        const double compute_bound = waves * mean_task * slowdown;
        // Dispatch bound: the serialized driver feeds tasks one at a
        // time; the last task starts after all dispatches and still
        // runs to completion.
        const double dispatch_bound =
            tasks * workload.dispatchSecondsPerTask +
            mean_task * slowdown;
        total += std::max(compute_bound, dispatch_bound);

        total += workload.commSecondsPerWorker * (workers - 1) *
                 comm_scale;
    }
    return total;
}

double
AnalyticalModel::speedup(const WorkloadSpec &workload, double datasetGB,
                         int cores) const
{
    const double t1 = executionSeconds(workload, datasetGB, 1);
    const double tx = executionSeconds(workload, datasetGB, cores);
    ensure(tx > 0.0, "zero analytical time for ", workload.name);
    return t1 / tx;
}

} // namespace amdahl::sim
