/**
 * @file
 * Workload specifications for the execution simulator.
 *
 * A workload is a sequence of stages. Serial stages model driver-side
 * work (job setup, final aggregation); parallel stages model Spark task
 * waves or PARSEC thread pools. Overheads — serialized task dispatch,
 * communication that grows with the worker count, and memory-bandwidth
 * demand — are specified per workload, so deviations from Amdahl's Law
 * *emerge* from the simulation instead of being painted onto speedup
 * curves. This is what lets the Karp-Flatt pipeline (Section IV) observe
 * the same pathologies the paper reports: graph analytics whose estimated
 * F falls with core count, tiny-task-count jobs whose estimates are noisy,
 * and bandwidth-bound kernels whose sampled profiles over-estimate F.
 */

#ifndef AMDAHL_SIM_WORKLOAD_HH
#define AMDAHL_SIM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace amdahl::sim {

/** Benchmark suite provenance (Table I). */
enum class Suite { Spark, Parsec };

/** @return Human-readable suite name. */
std::string toString(Suite suite);

/** How a parallel stage's task population responds to dataset size. */
enum class TaskScaling
{
    /**
     * Spark-style: the dataset is split into fixed-size blocks, one task
     * per block; task durations are independent of dataset size.
     */
    BlocksOfDataset,
    /**
     * PARSEC-style: a fixed task population whose per-task duration
     * scales with dataset size.
     */
    FixedTasks,
};

/** One stage of a workload. */
struct StageSpec
{
    /** Descriptive label ("read", "iterate", "reduce", ...). */
    std::string label;

    /**
     * Serial driver time for this stage, seconds at the reference
     * dataset. Scales with dataset size via WorkloadSpec::timeExponent.
     * A pure serial stage has parallelSeconds == 0.
     */
    double serialSeconds = 0.0;

    /**
     * Total parallel work in this stage, seconds at the reference
     * dataset (i.e., sum of task durations on one core).
     */
    double parallelSeconds = 0.0;

    /** Task-count scaling discipline. */
    TaskScaling scaling = TaskScaling::BlocksOfDataset;

    /**
     * For FixedTasks: the task population.
     * Ignored for BlocksOfDataset (task count = blocks of the dataset).
     */
    int fixedTasks = 64;

    /**
     * Deterministic task-duration skew in [0, 1): individual task
     * durations vary by up to +/- skew/2 around the mean (mean
     * preserved). Models stragglers.
     */
    double taskSkew = 0.1;
};

/** Full description of one benchmark from Table I. */
struct WorkloadSpec
{
    int id = 0;                //!< Table I row number.
    std::string name;          //!< e.g. "correlation", "dedup".
    std::string application;   //!< e.g. "Statistics", "Storage".
    Suite suite = Suite::Spark;
    std::string dataset;       //!< e.g. "webspam2011", "native".
    double datasetGB = 1.0;    //!< Full-dataset size (reference input).

    std::vector<StageSpec> stages;

    /**
     * Spark block size in GB; the run-time engine creates one task per
     * block (paper: 32 MB default, so a 24 GB dataset yields ~750 tasks).
     */
    double blockSizeGB = 0.032;

    /**
     * Serialized dispatch cost per task, seconds. The driver issues
     * tasks one at a time; with many workers and tiny tasks this becomes
     * the bottleneck (the paper's kmeans pathology).
     */
    double dispatchSecondsPerTask = 0.0;

    /**
     * Per-stage communication cost that grows with the number of
     * participating workers: comm = commSecondsPerWorker * (workers - 1)
     * at the reference dataset, scaled with dataset size. Models shuffle
     * and synchronization traffic (the paper's graph-analytics and dedup
     * pathologies).
     */
    double commSecondsPerWorker = 0.0;

    /**
     * DRAM bandwidth demand per active core, GB/s. When the aggregate
     * demand exceeds the server's bandwidth, parallel work slows
     * proportionally (the paper's canneal pathology).
     */
    double memBandwidthPerCoreGBps = 0.0;

    /**
     * Dataset size (GB) at which the bandwidth demand reaches its full
     * value; smaller inputs fit in cache and demand proportionally less.
     * This is why sampled (small) datasets over-estimate canneal's
     * parallelism in Figure 6. Zero disables the effect (demand is
     * always full).
     */
    double memBandwidthSaturationGB = 0.0;

    /**
     * Exponent of execution-time scaling with dataset size: 1 for the
     * linear workloads of Figure 4, 2 for quadratic ones (QR
     * decomposition).
     */
    double timeExponent = 1.0;

    /**
     * Exponent of communication-cost scaling with dataset size.
     * Skewed, irregular datasets (sparse graphs) grow communication
     * super-linearly in the sampled fraction, which is why the paper
     * notes uniform sampling falls short for them: small samples
     * under-represent communication and over-estimate F.
     */
    double commDatasetExponent = 1.0;

    /** Seed component for deterministic task-duration jitter. */
    std::uint64_t seed = 0;

    /**
     * @return Total single-core stage time (serial + parallel) at the
     * reference dataset, excluding overheads.
     */
    double referenceSingleCoreSeconds() const;

    /**
     * @return The structural parallel fraction implied by the stage
     * list: parallel work / total work at the reference dataset. The
     * *measured* (Karp-Flatt) fraction is below this whenever overheads
     * bite.
     */
    double structuralParallelFraction() const;

    /** Validate invariants; fatal() on nonsense specs. */
    void validate() const;
};

} // namespace amdahl::sim

#endif // AMDAHL_SIM_WORKLOAD_HH
