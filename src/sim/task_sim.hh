/**
 * @file
 * Event-driven task-level execution simulator.
 *
 * Replaces the paper's physical Xeon testbed. Each workload execution is
 * simulated stage by stage: serial driver work runs on one core; parallel
 * stages dispatch tasks through a serialized driver onto a pool of worker
 * cores (earliest-free-core list scheduling), pay communication costs that
 * grow with the worker count, and slow down when aggregate DRAM bandwidth
 * demand exceeds the server's ceiling. Task durations carry deterministic
 * skew to model stragglers.
 *
 * The simulator's output — execution time as a function of (cores,
 * dataset) — is the only thing the rest of the reproduction consumes, in
 * exactly the role of the paper's `perf stat` / Spark event-log profiles.
 */

#ifndef AMDAHL_SIM_TASK_SIM_HH
#define AMDAHL_SIM_TASK_SIM_HH

#include <string>
#include <vector>

#include "sim/server.hh"
#include "sim/workload.hh"

namespace amdahl::sim {

/** Timing breakdown of one simulated stage. */
struct StageResult
{
    std::string label;
    double startSeconds = 0.0;   //!< Stage start (since job start).
    double endSeconds = 0.0;     //!< Stage end (since job start).
    int tasks = 0;               //!< Parallel tasks executed.
    int workers = 0;             //!< Cores that ran tasks.
    int failures = 0;            //!< Tasks that failed and re-ran.
    double serialSeconds = 0.0;  //!< Driver-side serial time.
    double commSeconds = 0.0;    //!< Communication/synchronization time.
    double bandwidthSlowdown = 1.0; //!< >= 1; DRAM throttling factor.

    /** @return Stage duration. */
    double duration() const { return endSeconds - startSeconds; }
};

/** Full result of one simulated execution. */
struct ExecutionResult
{
    double totalSeconds = 0.0;
    int cores = 0;
    double datasetGB = 0.0;
    std::vector<StageResult> stages;

    /** @return Total parallel tasks across stages. */
    int totalTasks() const;

    /** @return Sum of per-stage communication time. */
    double totalCommSeconds() const;
};

/**
 * The simulator. Stateless per execution; cheap to copy.
 */
class TaskSimulator
{
  public:
    /** @param server Hardware model all executions run on. */
    explicit TaskSimulator(ServerConfig server = {});

    /** @return The hardware model. */
    const ServerConfig &server() const { return config; }

    /**
     * Set the colocation-interference factor.
     *
     * Contention for shared cache and memory grows with the number of
     * active workers, so task durations are scaled by
     * 1 + (factor - 1) * (workers - 1) / (server cores - 1): a single
     * worker is unaffected, a machine-filling stage pays the full
     * factor. Growth with parallelism is what makes contention lower
     * the *effective* parallel fraction (Section VI-E).
     *
     * @param factor >= 1; 1 means no interference.
     */
    void setInterferenceSlowdown(double factor);

    /** @return The current interference factor. */
    double interferenceSlowdown() const { return interference; }

    /**
     * Inject task failures: each parallel task independently fails
     * with this probability and is re-executed once (detect-on-finish
     * plus retry, the common datacenter discipline). Failures are
     * deterministic per (workload, stage, task), drawn from a stream
     * separate from duration jitter so a zero rate reproduces
     * bit-identical schedules.
     *
     * @param probability In [0, 1).
     */
    void setTaskFailureRate(double probability);

    /** @return The current task failure probability. */
    double taskFailureRate() const { return failureRate; }

    /**
     * Simulate one execution.
     *
     * @param workload  The benchmark to run.
     * @param datasetGB Input size (may differ from the reference size;
     *                  execution time scales per the workload's model).
     * @param cores     Processor cores allocated (1..server cores).
     * @return Timing breakdown.
     */
    ExecutionResult execute(const WorkloadSpec &workload, double datasetGB,
                            int cores) const;

    /** Convenience: total seconds of execute(). */
    double executionSeconds(const WorkloadSpec &workload, double datasetGB,
                            int cores) const;

    /**
     * Measured speedup s(x) = T(1) / T(x) on the given dataset.
     */
    double speedup(const WorkloadSpec &workload, double datasetGB,
                   int cores) const;

  private:
    ServerConfig config;
    double interference = 1.0;
    double failureRate = 0.0;
};

} // namespace amdahl::sim

#endif // AMDAHL_SIM_TASK_SIM_HH
