#include "workload.hh"

#include "common/logging.hh"

namespace amdahl::sim {

std::string
toString(Suite suite)
{
    return suite == Suite::Spark ? "Spark" : "PARSEC";
}

double
WorkloadSpec::referenceSingleCoreSeconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.serialSeconds + stage.parallelSeconds;
    return total;
}

double
WorkloadSpec::structuralParallelFraction() const
{
    double serial = 0.0;
    double parallel = 0.0;
    for (const auto &stage : stages) {
        serial += stage.serialSeconds;
        parallel += stage.parallelSeconds;
    }
    const double total = serial + parallel;
    return total > 0.0 ? parallel / total : 0.0;
}

void
WorkloadSpec::validate() const
{
    if (name.empty())
        fatal("workload must have a name");
    if (stages.empty())
        fatal("workload ", name, " has no stages");
    if (datasetGB <= 0.0)
        fatal("workload ", name, " has non-positive dataset size");
    if (blockSizeGB <= 0.0)
        fatal("workload ", name, " has non-positive block size");
    if (dispatchSecondsPerTask < 0.0 || commSecondsPerWorker < 0.0 ||
        memBandwidthPerCoreGBps < 0.0 || memBandwidthSaturationGB < 0.0) {
        fatal("workload ", name, " has negative overhead parameters");
    }
    if (timeExponent <= 0.0)
        fatal("workload ", name, " has non-positive time exponent");
    if (commDatasetExponent <= 0.0)
        fatal("workload ", name,
              " has non-positive communication exponent");
    for (const auto &stage : stages) {
        if (stage.serialSeconds < 0.0 || stage.parallelSeconds < 0.0)
            fatal("workload ", name, " stage ", stage.label,
                  " has negative time");
        if (stage.serialSeconds == 0.0 && stage.parallelSeconds == 0.0)
            fatal("workload ", name, " stage ", stage.label, " is empty");
        if (stage.scaling == TaskScaling::FixedTasks &&
            stage.fixedTasks <= 0) {
            fatal("workload ", name, " stage ", stage.label,
                  " has non-positive task count");
        }
        if (stage.taskSkew < 0.0 || stage.taskSkew >= 1.0)
            fatal("workload ", name, " stage ", stage.label,
                  " has task skew outside [0, 1)");
    }
}

} // namespace amdahl::sim
