/**
 * @file
 * Server and cluster models.
 *
 * The paper profiles workloads on dual-socket Xeon E5-2658 v2 nodes
 * (Table II). We simulate the properties the allocation study actually
 * depends on: the number of allocatable cores and the shared memory
 * bandwidth ceiling that throttles bandwidth-hungry workloads (canneal)
 * at high core counts.
 */

#ifndef AMDAHL_SIM_SERVER_HH
#define AMDAHL_SIM_SERVER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace amdahl::sim {

/**
 * Static description of one server, mirroring the paper's Table II.
 */
struct ServerConfig
{
    std::string model = "Intel Xeon CPU E5-2658 v2 (simulated)";
    int sockets = 2;          //!< NUMA nodes.
    int coresPerSocket = 12;  //!< Physical cores per socket.
    int threadsPerCore = 2;   //!< SMT ways (not allocated individually).
    std::string l1ICache = "32 KB";
    std::string l1DCache = "32 KB";
    std::string l2Cache = "256 KB";
    std::string l3Cache = "32 MB";
    double memoryGB = 256.0;  //!< DRAM capacity.

    /**
     * Aggregate DRAM bandwidth available to all cores, GB/s.
     * Roughly 4 channels of DDR3-1866 per socket.
     */
    double memoryBandwidthGBps = 119.4;

    /** @return Total allocatable cores (physical cores, as in the paper). */
    int cores() const { return sockets * coresPerSocket; }
};

/**
 * A datacenter: an ordered collection of servers.
 *
 * Server capacities C_j may differ; the market only consumes the capacity
 * vector, but benches and examples also read the full configs.
 */
class Cluster
{
  public:
    Cluster() = default;

    /** Build a homogeneous cluster of @p count copies of @p config. */
    static Cluster homogeneous(std::size_t count,
                               const ServerConfig &config = {});

    /** Append one server. @return Its index. */
    std::size_t addServer(ServerConfig config);

    /** @return Number of servers m. */
    std::size_t size() const { return servers_.size(); }

    /** @return Config of server j. */
    const ServerConfig &server(std::size_t j) const;

    /** @return The capacity vector (C_1, ..., C_m). */
    std::vector<double> capacities() const;

    /** @return Sum of all server capacities. */
    double totalCores() const;

  private:
    std::vector<ServerConfig> servers_;
};

} // namespace amdahl::sim

#endif // AMDAHL_SIM_SERVER_HH
