/**
 * @file
 * Per-workload characterization cache.
 *
 * The evaluation needs, for every Table I workload:
 *
 *  - the *estimated* parallel fraction (fit from sampled-dataset
 *    profiles — this is what the market's Amdahl utilities use, so
 *    estimation error propagates into allocations exactly as in the
 *    paper);
 *  - the *measured* parallel fraction (Karp-Flatt on the full dataset —
 *    the oracle used by the performance-centric G/UB baselines);
 *  - full-dataset execution times at every core count (ground truth for
 *    the progress metrics).
 *
 * Characterizations and execution times are memoized: a population has
 * thousands of jobs but only 22 distinct workloads.
 */

#ifndef AMDAHL_EVAL_CHARACTERIZATION_HH
#define AMDAHL_EVAL_CHARACTERIZATION_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/task_sim.hh"

namespace amdahl::eval {

/** Summary facts about one workload. */
struct WorkloadCharacterization
{
    std::string name;
    double measuredFraction = 0.0;  //!< E[F] on the full dataset.
    double estimatedFraction = 0.0; //!< Geomean E[F] on sampled data.
    double t1Seconds = 0.0;         //!< Full-dataset single-core time.
};

/** Which parallel fraction a market should be built with. */
enum class FractionSource
{
    Measured, //!< Full-dataset Karp-Flatt (oracle policies: G, UB).
    Estimated //!< Sampled-dataset pipeline (market policies: AB, BR).
};

/**
 * Lazily characterizes workloads from the library and memoizes
 * full-dataset execution times.
 *
 * Safe to share across pool workers (src/exec/): lookups serialize on
 * an internal mutex, and the memoized values are pure functions of
 * (workload, cores), so which thread fills an entry first is
 * irrelevant to the result. Returned references stay valid — map
 * nodes never move.
 */
class CharacterizationCache
{
  public:
    /** @param simulator The machine model executions run on. */
    explicit CharacterizationCache(
        sim::TaskSimulator simulator = sim::TaskSimulator());

    /** @return The simulator in use. */
    const sim::TaskSimulator &simulator() const { return sim_; }

    /** @return Characterization of library workload @p index. */
    const WorkloadCharacterization &of(std::size_t index);

    /** @return The fraction from the requested source. */
    double fraction(std::size_t index, FractionSource source);

    /**
     * Memoized full-dataset execution time.
     *
     * @param index Library workload index.
     * @param cores Allocation (>= 1).
     */
    double fullDatasetSeconds(std::size_t index, int cores);

  private:
    sim::TaskSimulator sim_;
    std::mutex mutex_; // guards both memo maps
    std::map<std::size_t, WorkloadCharacterization> characterizations;
    std::map<std::pair<std::size_t, int>, double> times;
};

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_CHARACTERIZATION_HH
