/**
 * @file
 * Progress metrics (Section VI, "Metrics").
 *
 * All performance results are reported in terms of measured (simulated)
 * execution time, not the Amdahl model — so policies that rely on
 * estimated utilities are scored against ground truth:
 *
 *   JobProgress_ij(x)  = w_ij * time_ij(1) / time_ij(x)
 *   UserProgress_i     = sum_j w_ij time_ij(1)/time_ij(x_ij)
 *                        / sum_j w_ij
 *   SysProgress        = (1/B) sum_i b_i * UserProgress_i
 *
 * A job allocated zero cores makes zero progress. UserProgress matches
 * the Amdahl utility definition and the weighted-speedup metric of the
 * multi-core literature.
 */

#ifndef AMDAHL_EVAL_METRICS_HH
#define AMDAHL_EVAL_METRICS_HH

#include <vector>

#include "eval/characterization.hh"
#include "eval/population.hh"

namespace amdahl::eval {

/**
 * Computes progress metrics for integral allocations against the
 * simulator's ground-truth execution times.
 */
class ProgressEvaluator
{
  public:
    /** @param cache Shared characterization/time cache (not owned). */
    explicit ProgressEvaluator(CharacterizationCache &cache);

    /**
     * Normalized progress of one job: time(1) / time(x), or 0 when
     * x == 0.
     *
     * @param workload_index Library index of the job's workload.
     * @param cores          Allocated cores (>= 0).
     */
    double jobProgress(std::size_t workload_index, int cores) const;

    /**
     * UserProgress_i for user i of a population.
     *
     * @param pop           The population (job placement and workloads).
     * @param i             User index.
     * @param cores_per_job Integral allocation for each of her jobs.
     */
    double userProgress(const Population &pop, std::size_t i,
                        const std::vector<int> &cores_per_job) const;

    /** UserProgress for all users. @param cores [user][job] matrix. */
    std::vector<double>
    allUserProgress(const Population &pop,
                    const std::vector<std::vector<int>> &cores) const;

    /** SysProgress: budget-weighted mean of user progress (Eq. 10). */
    double
    systemProgress(const Population &pop,
                   const std::vector<std::vector<int>> &cores) const;

  private:
    CharacterizationCache &cache_;
};

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_METRICS_HH
