/**
 * @file
 * Experiment drivers for the paper's evaluation (Section VI,
 * Figures 9-13).
 *
 * A driver owns a characterization cache and a deterministic RNG, and
 * reproduces one experiment point at a time: generate populations, build
 * the corresponding Fisher markets (oracle policies see measured
 * parallel fractions; market policies see the sampled-profile
 * estimates), run each allocation policy, and score the integral
 * allocations with ground-truth simulated execution times.
 *
 * Scale note: the paper averages 50 populations with up to 1000 users;
 * the drivers accept any scale, and the bench binaries default to a
 * smaller configuration so the whole suite runs in seconds. The shapes
 * (policy ordering, crossovers) are stable across scales.
 */

#ifndef AMDAHL_EVAL_EXPERIMENT_HH
#define AMDAHL_EVAL_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/market.hh"
#include "eval/characterization.hh"
#include "eval/metrics.hh"
#include "eval/population.hh"

namespace amdahl::eval {

/**
 * Build the Fisher market for a population.
 *
 * @param pop    The population (users, budgets, job placement).
 * @param cache  Workload characterizations.
 * @param source Which parallel fraction each job's utility uses.
 */
core::FisherMarket buildMarket(const Population &pop,
                               CharacterizationCache &cache,
                               FractionSource source);

/** Averaged results of one policy at one experiment point. */
struct PolicyMetrics
{
    double sysProgress = 0.0;      //!< Mean SysProgress.
    double mape = 0.0;             //!< Mean entitlement MAPE (Fig 11).
    double meanIterations = 0.0;   //!< Mean mechanism iterations.

    /** Mean user progress per entitlement class (Fig 10). */
    std::map<int, double> classProgress;
};

/** One density point of the Figure 9/10/11 sweeps. */
struct DensitySweepRow
{
    int density = 0;
    std::vector<std::string> policies; //!< Order policies were run in.
    std::map<std::string, PolicyMetrics> byPolicy;
};

/**
 * Reproduces the paper's evaluation experiments.
 */
class ExperimentDriver
{
  public:
    /** Scale and determinism knobs. */
    struct Config
    {
        std::uint64_t seed = 0xa11da;  //!< Population RNG seed.
        int populationsPerPoint = 5;   //!< Paper: 50.
        int users = 60;                //!< Paper: 40-1000.
        double serverMultiplier = 0.5; //!< Paper: {0.25,...,4}.
        int coresPerServer = 24;       //!< Table II server.
        bool includeBestResponse = true; //!< BR is the slow baseline.
    };

    /** Construct with default Config. */
    ExperimentDriver();

    explicit ExperimentDriver(Config config);

    /** @return The shared characterization cache. */
    CharacterizationCache &cache() { return cache_; }

    /**
     * One density point: run all policies over fresh populations and
     * average (Figures 9, 10, 11).
     */
    DensitySweepRow runDensityPoint(int density);

    /**
     * Figure 12: perturb a random user's parallel fractions down by a
     * percentage drawn from [bucket.first, bucket.second], re-run
     * Amdahl Bidding, and report the mean absolute change in the
     * perturbed user's per-job core allocations.
     *
     * @param density          Workload density.
     * @param bucket           Reduction range in percent (e.g. {5, 10}).
     * @param trials           Populations to average over.
     */
    double runSensitivity(int density, std::pair<double, double> bucket,
                          int trials);

    /**
     * Figure 13: mean Amdahl Bidding iterations to convergence at a
     * given population scale.
     */
    double meanBiddingIterations(int users, double server_multiplier,
                                 int density, int populations);

    /** Outcome of the strategy-proofness study (Section I's claim). */
    struct MisreportStudy
    {
        double meanTruthfulUtility = 0.0;
        double meanMisreportUtility = 0.0;
        /** Mean of (misreport - truthful)/truthful, in percent. */
        double meanGainPercent = 0.0;
        /** Worst single-trial gain observed, in percent. */
        double maxGainPercent = 0.0;
    };

    /**
     * Strategy-proofness: one user exaggerates her jobs' parallel
     * fractions (claiming f' = f + exaggeration * (1 - f), capped)
     * while everyone else reports truthfully; both allocations are
     * scored with her *true* utility. The paper claims the market is
     * strategy-proof when the population is large and competitive —
     * so the gain should vanish as `users` grows.
     *
     * @param users        Population size.
     * @param density      Workload density.
     * @param exaggeration Fraction of the remaining headroom claimed,
     *                     in (0, 1].
     * @param trials       Populations to average over.
     */
    MisreportStudy runMisreport(int users, int density,
                                double exaggeration, int trials);

  private:
    Population nextPopulation(int density);
    Population nextPopulation(int users, double multiplier, int density);

    Config cfg;
    CharacterizationCache cache_;
    Rng rng;
};

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_EXPERIMENT_HH
