/**
 * @file
 * Online (epoch-based) market operation.
 *
 * The paper evaluates one-shot allocations; a deployed scheduler runs
 * the market *continuously*: jobs arrive, the market re-clears each
 * epoch over the jobs currently in the system, jobs make progress at
 * their measured speedups, finish, and release cores. This module
 * simulates that closed loop so allocation policies can be compared on
 * completion-time metrics rather than instantaneous progress — the
 * natural "future work" extension of Section VI, built entirely from
 * the paper's own pieces (characterized workloads, the market, and
 * Hamilton rounding).
 *
 * Progress model: a job holding x cores for an epoch of E seconds
 * completes s(x) * E single-core-seconds of its remaining work, where
 * s is the workload's *measured* (simulated) speedup at the full
 * dataset. Jobs are pinned to their arrival server, as in the paper.
 */

#ifndef AMDAHL_EVAL_ONLINE_HH
#define AMDAHL_EVAL_ONLINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "alloc/placement.hh"
#include "alloc/policy.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "eval/characterization.hh"
#include "net/options.hh"
#include "net/session.hh"
#include "obs/metrics.hh"
#include "robustness/durability/durable_store.hh"
#include "robustness/fault_injector.hh"

namespace amdahl::core {
struct KernelCache; // core/bidding_kernel.hh
}

namespace amdahl::eval {

/** One job flowing through the online system. */
struct OnlineJob
{
    /** Sentinel server index: the job is waiting for a live server
     *  (only reachable when a fault schedule kills the whole
     *  cluster). */
    static constexpr std::size_t kUnplaced =
        static_cast<std::size_t>(-1);

    std::size_t user = 0;
    std::size_t server = 0;
    std::size_t workloadIndex = 0;
    double arrivalSeconds = 0.0;
    double totalWork = 0.0;     //!< Single-core seconds at admission.
    double remainingWork = 0.0; //!< Single-core seconds left.
    double completionSeconds = -1.0; //!< < 0 while in the system.

    /** Progress durably saved as of the last checkpoint; a crash
     *  rolls remainingWork back to totalWork - checkpointedWork. */
    double checkpointedWork = 0.0;

    /** Epochs of progress since the last checkpoint. */
    int epochsSinceCheckpoint = 0;

    /** @return true once the job has finished. */
    bool done() const { return completionSeconds >= 0.0; }

    /** @return true while the job waits for a live server. */
    bool unplaced() const { return server == kUnplaced; }
};

/**
 * Overload admission control (disabled by default).
 *
 * An open arrival process has no intrinsic load limit: past some
 * arrival rate the in-system job count grows without bound, every
 * tenant's per-job grant shrinks toward zero, and completion times
 * explode — the market clears every epoch yet serves nobody. With
 * admission control on, the simulator caps the number of admitted
 * in-flight jobs at `maxLoadFactor` per live server; arrivals beyond
 * the cap wait in a bounded FIFO queue (backpressure) and, when the
 * queue is full, one job is shed — by entitlement class when
 * `shedByEntitlement` is set, so the cheapest tenant's work is
 * sacrificed first and a high-budget tenant's arrival is never turned
 * away while a lower class waits.
 *
 * Arrival generation itself never changes: the same seed draws the
 * same job stream whether admission control is on or off (and across
 * load factors), so overload sweeps compare policies on identical
 * demand.
 */
struct AdmissionOptions
{
    bool enabled = false;

    /** Cap on admitted in-flight jobs, per live server. */
    double maxLoadFactor = 6.0;

    /** Bound on the wait queue; 0 sheds every over-cap arrival
     *  immediately. */
    int maxQueueLength = 64;

    /** Shed the queued job whose tenant has the lowest budget
     *  (earliest among ties); off drops the arriving job instead
     *  (plain tail drop). */
    bool shedByEntitlement = true;
};

/**
 * Incremental (delta) re-clearing across epochs.
 *
 * Successive epochs clear nearly-identical markets: the tenant
 * population is fixed, and most jobs survive from one epoch to the
 * next. Delta re-clearing exploits that continuity two ways, both
 * bitwise-invisible to the equilibrium contract (the solver's
 * invariants, convergence test, and audit are unchanged — only the
 * starting point and the CSR build cost move):
 *
 *  - `reuseKernel` keeps the solver's CSR kernel alive across epochs
 *    in OnlineRunState and patches only the rows whose users changed,
 *    instead of rebuilding the whole structure. Structure or value
 *    mismatches are detected by exact comparison (never hashing), so
 *    a reused kernel is byte-for-byte the kernel a cold build would
 *    produce.
 *  - `warmStartBids` seeds each epoch's bids from the previous
 *    equilibrium: surviving jobs restart at their last-cleared bids,
 *    new jobs at an even split of their tenant's budget. When the
 *    fraction of jobs with no previous bid exceeds
 *    `maxChurnFraction` (or on a cold start), the seed falls back to
 *    the analytic mean-field estimate (core::meanFieldSeedBids),
 *    which beats both an even split and stale bids when most of the
 *    market is new.
 *
 * Disabled by default, in which case the run is bit-identical to a
 * build without the feature.
 */
struct DeltaClearingOptions
{
    /** Keep (and patch) the bid kernel across epochs. */
    bool reuseKernel = false;

    /** Seed bids from the previous epoch's equilibrium. */
    bool warmStartBids = false;

    /**
     * Warm-start churn threshold: when more than this fraction of the
     * epoch's jobs have no previous-equilibrium bid, warm bids are
     * judged stale and the mean-field seed is used instead.
     */
    double maxChurnFraction = 0.5;

    /** @return true when any delta mechanism is on. */
    bool enabled() const { return reuseKernel || warmStartBids; }
};

/** Scenario knobs. */
struct OnlineOptions
{
    std::uint64_t seed = 0x0517e5ULL;
    int users = 16;             //!< Fixed tenant population.
    int servers = 8;
    int coresPerServer = 24;

    /**
     * Heterogeneous clusters: per-server core counts (must have
     * `servers` entries when non-empty). Prices encode capacity —
     * this is where price-aware placement outruns load counting.
     */
    std::vector<int> serverCores;
    double epochSeconds = 60.0;  //!< Market re-clearing period.
    double horizonSeconds = 3600.0;
    /** Expected job arrivals per server per epoch (Bernoulli thinned
     *  across epochs; deterministic given the seed). */
    double arrivalsPerServerEpoch = 0.4;
    /** Arriving jobs carry between work * [min, max] of their
     *  workload's full-dataset single-core time. */
    double workScaleMin = 0.1;
    double workScaleMax = 0.5;
    int minBudget = 1; //!< Tenant entitlement classes, as in §VI.
    int maxBudget = 5;

    /**
     * Where arriving jobs are placed. PriceAware steers arrivals to
     * the cheapest server by the last equilibrium's prices (a
     * congestion signal per Eq. 8); when the allocation policy
     * publishes no prices (PS, G, UB), current loads stand in.
     */
    alloc::PlacementRule placement = alloc::PlacementRule::RoundRobin;

    /**
     * Long-term fairness: entitlements are instantaneous in the
     * paper, but epoch-based operation can starve a tenant who was
     * unlucky in *which* epochs her jobs ran. With compensation on,
     * each epoch a tenant's effective budget is scaled by the ratio
     * of her cumulative entitled core-seconds to her cumulative
     * granted core-seconds (clamped to [1, maxCompensation]), so
     * under-served tenants bid with extra weight until they catch
     * up — deficit round-robin's idea expressed in market terms.
     */
    bool deficitCompensation = false;

    /** Cap on the compensation multiplier. */
    double maxCompensation = 3.0;

    /**
     * Fault schedule (robustness/fault_injector.hh): server churn,
     * bid-message loss, and profile staleness. Disabled by default;
     * when disabled the run is bit-identical to fault-free operation
     * (the schedule draws from its own seed, so the arrival stream
     * never shifts either way).
     */
    robustness::FaultOptions faults;

    /** Overload admission control; disabled by default, in which case
     *  the run is bit-identical to a build without the feature. */
    AdmissionOptions admission;

    /**
     * Sharded clearing over the simulated network (src/net/):
     * `net.shards > 0` routes every epoch's clearing through the
     * epoch-barrier protocol of core/bidding_sharded.cc, with the
     * cross-epoch transport state persisted in OnlineRunState. With
     * all fault rates zero and no partitions, any shard count is
     * byte-identical to in-process clearing (the determinism bridge);
     * shards = 0 (the default) disables the network entirely.
     */
    net::ShardedOptions net;

    /** Incremental re-clearing across epochs; disabled by default, in
     *  which case the run is bit-identical to a build without the
     *  feature. */
    DeltaClearingOptions delta;
};

/** Aggregate outcome of one online run. */
struct OnlineMetrics
{
    std::string policyName;
    int jobsArrived = 0;
    int jobsCompleted = 0;
    double workCompleted = 0.0;      //!< Single-core seconds.
    double meanCompletionSeconds = 0.0;  //!< Over completed jobs.
    double p95CompletionSeconds = 0.0;
    double meanJobsInSystem = 0.0;   //!< Time-averaged occupancy.
    double meanWeightedSpeedup = 0.0; //!< Mean per-epoch SysProgress.

    /**
     * Long-run fairness: MAPE of cumulative granted core-seconds
     * against cumulative entitled core-seconds, over tenants that
     * were ever active.
     */
    double longRunEntitlementMape = 0.0;

    /**
     * Like longRunEntitlementMape, but each epoch's entitlement
     * accrues against the *live* cluster capacity — what a tenant
     * could fairly expect given the servers actually up that epoch.
     * Equals entitlement against full capacity when nothing crashes.
     */
    double availabilityWeightedEntitlementMape = 0.0;

    // --- Resilience accounting (all zero in fault-free runs). ---

    /** Epochs where the primary bidding procedure failed to converge
     *  (whether or not a fallback then served the epoch). */
    int nonConvergedEpochs = 0;

    /** Epochs served by the damped, warm-started retry. */
    int fallbackEpochsDamped = 0;

    /** Epochs served by proportional share after both market attempts
     *  failed. */
    int fallbackEpochsProportional = 0;

    /** Epochs served by the best anytime bid state after a clearing
     *  deadline expired (ServeMode::DeadlineAnytime). */
    int fallbackEpochsDeadline = 0;

    /** Epochs whose clearing hit its anytime deadline (counted from
     *  MarketOutcome::deadlineExpired, whichever rung served). */
    int deadlineExpiredEpochs = 0;

    // --- Network accounting (all zero unless sharded clearing ran
    //     over a faulty simulated network). ---

    /** Clearing rounds served on partial quorum (stale aggregates). */
    std::uint64_t netDegradedRounds = 0;

    /** Shard-rounds served from a stale bid aggregate. */
    std::uint64_t netStaleBidRounds = 0;

    /** Bid-aggregate retransmissions across all clearings. */
    std::uint64_t netRetransmits = 0;

    /** Clearings aborted below the quorum floor (then escalated down
     *  the fallback ladder). */
    std::uint64_t netQuorumCollapses = 0;

    // --- Overload accounting (all zero with admission control off). ---

    /** Arrivals that ever waited in the admission queue. */
    int jobsQueued = 0;

    /** Arrivals shed because the admission queue was full. */
    int jobsShed = 0;

    /** Arrivals still waiting in the queue when the horizon ended. */
    int jobsQueuedAtHorizon = 0;

    /** jobsShed / jobsArrived. */
    double sheddingRate = 0.0;

    /** Mean admission-queue wait over admitted jobs (zero for jobs
     *  admitted on arrival). */
    double meanQueueDelaySeconds = 0.0;

    /** Largest queue length observed (after shedding). */
    int peakQueueLength = 0;

    /** Server crash events that occurred within the horizon. */
    int crashEvents = 0;

    /** Jobs moved to another server after a crash (including jobs
     *  parked during a total outage and placed on recovery). */
    int replacements = 0;

    /** Single-core seconds of completed progress rolled back to the
     *  last checkpoint by crashes. */
    double workLostSeconds = 0.0;

    // --- Durability accounting (all zero for non-durable runs and
    //     excluded from encoded snapshot state, so a recovered run's
    //     final snapshot is byte-identical to an uninterrupted one). ---

    /** true when this run resumed from on-disk durable state. */
    bool recovered = false;

    /** Journaled epochs re-executed (and digest-verified) on resume. */
    int recoveryReplayedEpochs = 0;

    /** Durable epoch frontier found at restart (0 = fresh start). */
    std::uint64_t recoveryFrontierEpoch = 0;

    /** Epoch commits journaled by this process. */
    std::uint64_t journalCommits = 0;

    /** Full snapshots written by this process. */
    std::uint64_t snapshotsWritten = 0;

    /** Durable-IO retries after injected transient faults. */
    std::uint64_t ioRetries = 0;

    /** Transient IO faults injected into this process's writes. */
    std::uint64_t ioInjectedFaults = 0;

    /** Deterministic backoff accrued across retries (virtual units). */
    std::uint64_t ioBackoffUnits = 0;

    /** Per-epoch jobs in the system (time series). */
    std::vector<double> occupancyHistory;

    /** Per-epoch entitlement-weighted speedup (time series; zero on
     *  idle epochs). */
    std::vector<double> speedupHistory;

    /** The full job log (completed and still-running). */
    std::vector<OnlineJob> jobs;

    /**
     * Snapshot of the process-wide metrics registry taken as the run
     * ended (obs/metrics.hh): bidding iteration counts, fallback
     * serves, phase-timing histograms when timing was enabled, and so
     * on. Cumulative across runs in the same process — diff two
     * snapshots to attribute counts to one run. Embedded in the bench
     * JSON export so collected artifacts carry their own telemetry.
     */
    obs::MetricsSnapshot metricsSnapshot;
};

/**
 * The complete mutable state of an online run between two epochs.
 *
 * Everything the epoch loop reads or writes lives here — the RNG
 * engine words, the job log, the admission queue, the placer, the
 * Welford accumulators, and the partial metrics counters. Two
 * properties the durability layer relies on:
 *
 *  - runEpoch(state) is a pure function of (state, options, policy):
 *    advancing a restored state replays exactly the epochs the
 *    original process ran (determinism is the redo log);
 *  - encodeOnlineState() is a pure function of this struct, so the
 *    per-epoch CRC digest and snapshot bytes are identical across the
 *    original run, a recovery replay, and the equivalence oracle.
 *
 * `metrics.jobs` and `metrics.metricsSnapshot` stay empty until
 * finalize(); recovery counters on OnlineMetrics are excluded from the
 * encoding (they describe the *process*, not the simulation).
 */
struct OnlineRunState
{
    /** Next epoch index to run (== completed epoch count). */
    int epoch = 0;
    std::array<std::uint64_t, 4> rngState{};
    std::vector<double> budgets;
    std::vector<OnlineJob> jobs;
    std::deque<OnlineJob> waitQueue;
    std::size_t inFlight = 0;
    double queueDelaySum = 0.0;
    std::vector<char> live;
    alloc::JobPlacerState placer;
    OnlineStatsState occupancy;
    OnlineStatsState weightedSpeedup;
    std::vector<double> granted;
    std::vector<double> entitled;
    std::vector<double> entitledAvail;
    /** Cross-epoch simulated-transport state (virtual clock, global
     *  round, per-edge sequence numbers); all zero/empty unless
     *  OnlineOptions::net enables sharded clearing. Persisted so a
     *  crash mid-partition recovers onto the same network timeline. */
    net::NetSession net;
    /**
     * Previous equilibrium's bid per job-log entry (indexed like
     * `jobs`; -1 marks a job with no cleared bid — done, unplaced, or
     * arrived after the last clearing). Empty until the first cleared
     * epoch of a delta-enabled run, and always empty otherwise, so a
     * delta-off state encodes byte-identically to one from a build
     * without the feature's data. Persisted: a recovered run warm
     * starts exactly where the original would have.
     */
    std::vector<double> lastBids;
    /**
     * Cross-epoch bid-kernel cache (DeltaClearingOptions::reuseKernel).
     * Deliberately *not* serialized: a cached kernel is bitwise
     * invisible (exact compare-and-patch reproduces the cold build
     * byte for byte), so a recovered run simply rebuilds it on first
     * use and stays on the original's trajectory.
     */
    std::shared_ptr<core::KernelCache> kernelCache;
    /** Partial accumulators; aggregates are computed by finalize(). */
    OnlineMetrics metrics;
};

/**
 * @return CRC fingerprint of the scenario a state was produced under:
 * every OnlineOptions knob plus the policy name. Snapshots embed it so
 * recovery rejects state from a different configuration instead of
 * replaying it into divergence.
 */
std::uint32_t onlineStateFingerprint(const OnlineOptions &opts,
                                     std::string_view policyName);

/**
 * Serialize a run state to portable bytes (durability/codec.hh
 * framing: little-endian fixed-width fields, length-prefixed
 * containers). Pure function of (@p state, @p opts) — the recovery
 * oracle compares these bytes directly.
 */
std::string encodeOnlineState(const OnlineRunState &state,
                              const OnlineOptions &opts);

/**
 * Deserialize a run state.
 *
 * @return ParseError on malformed bytes, SemanticError on a version
 * or fingerprint mismatch (the state was written by a different build
 * or scenario) or internally inconsistent sizes.
 */
Result<OnlineRunState> decodeOnlineState(std::string_view payload,
                                         const OnlineOptions &opts,
                                         std::string_view policyName);

/**
 * Epoch-driven online market simulator.
 *
 * Deterministic: the arrival process and workload draws depend only on
 * the options' seed, so different policies face the *identical* job
 * stream.
 */
class OnlineSimulator
{
  public:
    /**
     * @param cache Workload characterizations (shared; must outlive
     *              the simulator).
     * @param opts  Scenario parameters.
     */
    OnlineSimulator(CharacterizationCache &cache, OnlineOptions opts);

    /** @return The scenario options. */
    const OnlineOptions &options() const { return opts_; }

    /**
     * Run the scenario under an allocation policy.
     *
     * Each epoch: admit arrivals, build the market over in-flight
     * jobs (servers or users without jobs are excluded; their cores
     * idle), allocate, advance every job by its measured speedup, and
     * retire completions.
     *
     * @param policy Allocation mechanism (AB, PS, ...).
     * @param source Parallel-fraction source for the market's
     *               utilities (Estimated for market policies).
     */
    OnlineMetrics run(const alloc::AllocationPolicy &policy,
                      FractionSource source);

    /**
     * Run the scenario with crash-consistent persistence.
     *
     * Fresh start (@p resume null or empty): discards stale durable
     * state, then runs epoch by epoch; after each epoch the trace sink
     * is flushed and the epoch is committed to @p store (journal
     * append carrying the state digest and trace frontier, full
     * snapshot on the configured cadence). A process killed at *any*
     * point can be restarted with the RecoveredState from
     * store.recover(): the last good snapshot is decoded, the
     * journaled epochs are re-executed with trace emission suppressed
     * — each replayed epoch's state digest must match the journal, or
     * the resume is refused with a SemanticError ("replay divergence":
     * version skew, option skew, or a nondeterminism bug) — and the
     * run continues live from the durable frontier.
     *
     * The caller owns the trace file: before installing the sink on a
     * resume, truncate it to the envelope/entry trace frontier and
     * call TraceSink::resume() (see tools/amdahl_market.cc), which
     * makes the recovered trace byte-identical to an uninterrupted
     * run's.
     *
     * @return The run metrics (recovery counters filled in), or the
     * Status of the first unrecoverable durability failure (IO retries
     * exhausted, undecodable snapshot, replay divergence).
     */
    Result<OnlineMetrics>
    runDurable(const alloc::AllocationPolicy &policy,
               FractionSource source,
               durability::DurableStateStore &store,
               const durability::RecoveredState *resume = nullptr);

    /** @return Epochs in the horizon (ceil(horizon / epoch)). */
    int epochCount() const;

    /**
     * Seed the RNG, draw tenant budgets, and size every container —
     * the state a run starts from before epoch 0. Exposed (with
     * runEpoch/finalize) so recovery tests can drive the loop
     * directly.
     */
    OnlineRunState
    initState(const alloc::AllocationPolicy &policy) const;

    /**
     * Advance @p state by one epoch: admit arrivals, clear the market
     * over in-flight jobs, advance progress, retire completions, and
     * apply this epoch's fault schedule. @p injector must be built
     * from options().faults over epochCount() epochs (it is pure, so
     * every process constructs the identical schedule).
     */
    void runEpoch(OnlineRunState &state,
                  const alloc::AllocationPolicy &policy,
                  FractionSource source,
                  const robustness::FaultInjector &injector) const;

    /**
     * Compute the aggregate metrics of a finished (or mid-horizon)
     * state: completion statistics, fairness MAPEs, queue stats, the
     * registry counters, and the run_end trace event. Does not mutate
     * @p state.
     */
    OnlineMetrics finalize(const OnlineRunState &state) const;

  private:
    CharacterizationCache &cache_;
    OnlineOptions opts_;
};

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_ONLINE_HH
