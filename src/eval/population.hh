/**
 * @file
 * User-population generation (Section VI, "User Populations").
 *
 * The paper constructs 50 random populations: the user count n is drawn
 * uniformly from 40 to 1000 in increments of 80; budgets/entitlements
 * are drawn uniformly from 1 to 5 (integers — these are the entitlement
 * classes of Figure 10); the server count is m = s * n with multiplier s
 * drawn from {0.25, 0.5, 1, 2, 4}; each server hosts between d/2 and d
 * jobs, where d is the workload density; each job is a random Table I
 * benchmark randomly assigned to a user, and every user runs at least
 * one job.
 */

#ifndef AMDAHL_EVAL_POPULATION_HH
#define AMDAHL_EVAL_POPULATION_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace amdahl::eval {

/** One job in a generated population. */
struct PopulationJob
{
    std::size_t server = 0;        //!< Hosting server index.
    std::size_t workloadIndex = 0; //!< Index into workloadLibrary().
};

/** A generated sharing scenario. */
struct Population
{
    std::vector<double> budgets; //!< Per user; integer-valued classes 1-5.
    std::size_t serverCount = 0;
    int coresPerServer = 24;

    /**
     * Per-server core counts for heterogeneous clusters. Empty means
     * homogeneous (every server has coresPerServer cores).
     */
    std::vector<int> serverCores;

    /** Jobs grouped per user; defines the market's job ordering. */
    std::vector<std::vector<PopulationJob>> userJobs;

    /** @return Number of users n. */
    std::size_t userCount() const { return budgets.size(); }

    /** @return Total jobs across users. */
    std::size_t jobCount() const;

    /** @return Cores of server j (handles both cluster shapes). */
    int coresOf(std::size_t j) const;

    /** @return Sum of all server capacities. */
    double totalCores() const;

    /** @return Entitlement class (1-5) of user i: her integer budget. */
    int entitlementClass(std::size_t i) const;
};

/** Knobs mirroring the paper's population parameters. */
struct PopulationOptions
{
    int users = 200;              //!< n.
    double serverMultiplier = 0.5; //!< s, so m = ceil(s * n).
    int density = 12;             //!< d: max colocated jobs per server.
    int coresPerServer = 24;      //!< C_j for every server.

    /**
     * Heterogeneous clusters: when non-empty, each server's core
     * count is drawn uniformly from these choices instead of using
     * coresPerServer (e.g. {12, 24, 48} for mixed generations).
     */
    std::vector<int> coreChoices;
    int minBudget = 1;            //!< Budget class range (inclusive).
    int maxBudget = 5;
    std::size_t workloadCount = 22; //!< Library size to draw jobs from.
};

/**
 * Generate one random population.
 *
 * @param rng  Deterministic generator (advanced by the call).
 * @param opts Population parameters.
 * @return A population satisfying all of the paper's constraints:
 *         servers host between ceil(d/2) and d jobs (before the
 *         every-user-has-a-job fix-up, which may add at most one job to
 *         under-capacity servers), and every user owns at least one job.
 */
Population generatePopulation(Rng &rng, const PopulationOptions &opts);

/**
 * Generate @p count independent populations in parallel.
 *
 * Population p draws from its own counter-based substream
 * substreamSeed(seed, p, 0) — see common/random.hh — so the result is
 * a pure function of (seed, opts, count): identical at any thread
 * count, and populations[p] never depends on how many draws another
 * population made. Note the streams differ from @p count sequential
 * generatePopulation calls on Rng(seed); callers pick one convention
 * and stick to it (the scenario fan-outs in the benches use this one).
 *
 * @param seed  Base seed of the batch.
 * @param opts  Population parameters (shared by every population).
 * @param count Number of populations.
 */
std::vector<Population> generatePopulations(std::uint64_t seed,
                                            const PopulationOptions &opts,
                                            std::size_t count);

/**
 * The paper's n ladder: 40 to 1000 in increments of 80.
 */
std::vector<int> paperUserLadder();

/** The paper's server multipliers {0.25, 0.5, 1, 2, 4}. */
std::vector<double> paperServerMultipliers();

/** The paper's density ladder {4, 8, 12, 16, 20, 24}. */
std::vector<int> paperDensityLadder();

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_POPULATION_HH
