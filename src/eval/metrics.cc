#include "metrics.hh"

#include "common/logging.hh"

namespace amdahl::eval {

ProgressEvaluator::ProgressEvaluator(CharacterizationCache &cache)
    : cache_(cache)
{}

double
ProgressEvaluator::jobProgress(std::size_t workload_index, int cores) const
{
    if (cores < 0)
        fatal("negative core allocation");
    if (cores == 0)
        return 0.0;
    const double t1 = cache_.fullDatasetSeconds(workload_index, 1);
    const double tx = cache_.fullDatasetSeconds(workload_index, cores);
    return t1 / tx;
}

double
ProgressEvaluator::userProgress(const Population &pop, std::size_t i,
                                const std::vector<int> &cores_per_job)
    const
{
    const auto &jobs = pop.userJobs[i];
    if (cores_per_job.size() != jobs.size())
        fatal("allocation for user ", i, " has wrong job count");
    // Unit work rates (w_ij = 1), as in the paper's experiments.
    double total = 0.0;
    for (std::size_t k = 0; k < jobs.size(); ++k)
        total += jobProgress(jobs[k].workloadIndex, cores_per_job[k]);
    return total / static_cast<double>(jobs.size());
}

std::vector<double>
ProgressEvaluator::allUserProgress(
    const Population &pop,
    const std::vector<std::vector<int>> &cores) const
{
    if (cores.size() != pop.userCount())
        fatal("allocation has wrong user count");
    std::vector<double> progress(pop.userCount());
    for (std::size_t i = 0; i < pop.userCount(); ++i)
        progress[i] = userProgress(pop, i, cores[i]);
    return progress;
}

double
ProgressEvaluator::systemProgress(
    const Population &pop,
    const std::vector<std::vector<int>> &cores) const
{
    const auto progress = allUserProgress(pop, cores);
    double weighted = 0.0;
    double budget_sum = 0.0;
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        weighted += pop.budgets[i] * progress[i];
        budget_sum += pop.budgets[i];
    }
    return weighted / budget_sum;
}

} // namespace amdahl::eval
