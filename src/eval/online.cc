#include "online.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {

OnlineSimulator::OnlineSimulator(CharacterizationCache &cache,
                                 OnlineOptions opts)
    : cache_(cache), opts_(opts)
{
    if (opts_.users < 1 || opts_.servers < 1 ||
        opts_.coresPerServer < 1) {
        fatal("online scenario needs users, servers, and cores");
    }
    if (opts_.epochSeconds <= 0.0 || opts_.horizonSeconds <= 0.0)
        fatal("epoch and horizon must be positive");
    if (opts_.arrivalsPerServerEpoch < 0.0)
        fatal("arrival rate must be non-negative");
    if (opts_.workScaleMin <= 0.0 ||
        opts_.workScaleMax < opts_.workScaleMin) {
        fatal("invalid work-scale range");
    }
    if (opts_.minBudget < 1 || opts_.maxBudget < opts_.minBudget)
        fatal("invalid budget class range");
    if (!opts_.serverCores.empty() &&
        opts_.serverCores.size() !=
            static_cast<std::size_t>(opts_.servers)) {
        fatal("serverCores has ", opts_.serverCores.size(),
              " entries for ", opts_.servers, " servers");
    }
    int max_cores = opts_.coresPerServer;
    for (int c : opts_.serverCores) {
        if (c < 1)
            fatal("server core counts must be positive");
        max_cores = std::max(max_cores, c);
    }
    if (max_cores > cache_.simulator().server().cores()) {
        fatal("online servers have up to ", max_cores,
              " cores but the characterization machine only ",
              cache_.simulator().server().cores(),
              "; progress would be unmeasurable");
    }
}

namespace {

/** Cores of server j under the options' cluster shape. */
int
coresOf(const OnlineOptions &opts, std::size_t j)
{
    return opts.serverCores.empty()
               ? opts.coresPerServer
               : opts.serverCores[j];
}

} // namespace

OnlineMetrics
OnlineSimulator::run(const alloc::AllocationPolicy &policy,
                     FractionSource source)
{
    // All randomness is re-seeded per run: every policy faces the
    // identical arrival stream.
    Rng rng(opts_.seed);

    std::vector<double> budgets(static_cast<std::size_t>(opts_.users));
    for (auto &b : budgets) {
        b = static_cast<double>(
            rng.uniformInt(opts_.minBudget, opts_.maxBudget));
    }

    OnlineMetrics metrics;
    metrics.policyName = policy.name();

    const auto &library = sim::workloadLibrary();
    std::vector<OnlineJob> jobs;
    OnlineStats occupancy;
    OnlineStats weighted_speedup;
    alloc::JobPlacer placer(
        opts_.placement, static_cast<std::size_t>(opts_.servers));

    // Cumulative core-second accounting for long-run fairness.
    std::vector<double> granted(static_cast<std::size_t>(opts_.users),
                                0.0);
    std::vector<double> entitled(static_cast<std::size_t>(opts_.users),
                                 0.0);

    const int epochs = static_cast<int>(
        std::ceil(opts_.horizonSeconds / opts_.epochSeconds));
    for (int epoch = 0; epoch < epochs; ++epoch) {
        const double now = epoch * opts_.epochSeconds;

        // 1. Arrivals: a Poisson batch for the whole cluster, placed
        //    by the configured discipline. The batch itself (count,
        //    users, workloads, work sizes) is identical across runs
        //    with the same seed; only placement reacts to state.
        const int count = rng.poisson(opts_.arrivalsPerServerEpoch *
                                      opts_.servers);
        for (int a = 0; a < count; ++a) {
            OnlineJob job;
            job.user = static_cast<std::size_t>(
                rng.uniformInt(0, opts_.users - 1));
            job.workloadIndex =
                static_cast<std::size_t>(rng.uniformInt(
                    0,
                    static_cast<std::int64_t>(library.size()) - 1));
            job.arrivalSeconds = now;
            const double t1 =
                cache_.fullDatasetSeconds(job.workloadIndex, 1);
            job.totalWork = t1 * rng.uniform(opts_.workScaleMin,
                                             opts_.workScaleMax);
            job.remainingWork = job.totalWork;
            job.server = placer.place();
            jobs.push_back(job);
            ++metrics.jobsArrived;
        }

        // 2. Build the market over in-flight jobs. Idle servers and
        //    jobless tenants are excluded from this epoch's market.
        std::vector<std::size_t> active;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            if (!jobs[k].done())
                active.push_back(k);
        }
        occupancy.add(static_cast<double>(active.size()));
        metrics.occupancyHistory.push_back(
            static_cast<double>(active.size()));
        if (active.empty()) {
            metrics.speedupHistory.push_back(0.0);
            continue;
        }

        std::vector<int> server_map(
            static_cast<std::size_t>(opts_.servers), -1);
        std::vector<double> capacities;
        for (std::size_t k : active) {
            auto &slot = server_map[jobs[k].server];
            if (slot < 0) {
                slot = static_cast<int>(capacities.size());
                capacities.push_back(static_cast<double>(
                    coresOf(opts_, jobs[k].server)));
            }
        }

        std::vector<int> user_map(static_cast<std::size_t>(opts_.users),
                                  -1);
        std::vector<core::MarketUser> market_users;
        std::vector<std::vector<std::size_t>> user_job_ids;
        for (std::size_t k : active) {
            auto &slot = user_map[jobs[k].user];
            if (slot < 0) {
                slot = static_cast<int>(market_users.size());
                core::MarketUser user;
                user.name = "tenant" + std::to_string(jobs[k].user);
                user.budget = budgets[jobs[k].user];
                if (opts_.deficitCompensation &&
                    granted[jobs[k].user] > 0.0) {
                    const double boost = std::clamp(
                        entitled[jobs[k].user] /
                            granted[jobs[k].user],
                        1.0, opts_.maxCompensation);
                    user.budget *= boost;
                }
                market_users.push_back(std::move(user));
                user_job_ids.emplace_back();
            }
            core::JobSpec spec;
            spec.server = static_cast<std::size_t>(
                server_map[jobs[k].server]);
            spec.parallelFraction =
                cache_.fraction(jobs[k].workloadIndex, source);
            spec.weight = 1.0;
            market_users[static_cast<std::size_t>(slot)]
                .jobs.push_back(spec);
            user_job_ids[static_cast<std::size_t>(slot)].push_back(k);
        }

        core::FisherMarket market(capacities);
        for (auto &user : market_users)
            market.addUser(std::move(user));

        const auto result = policy.allocate(market);

        // Core-second accounting against *base* budgets: the
        // entitlement contract does not move with compensation.
        {
            double active_budget = 0.0;
            double active_capacity = 0.0;
            for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
                active_budget +=
                    budgets[jobs[user_job_ids[ui][0]].user];
            }
            for (double c : capacities)
                active_capacity += c;
            for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
                const std::size_t tenant =
                    jobs[user_job_ids[ui][0]].user;
                entitled[tenant] += budgets[tenant] / active_budget *
                                    active_capacity *
                                    opts_.epochSeconds;
                granted[tenant] +=
                    result.userCores(ui) * opts_.epochSeconds;
            }
        }

        // Feed the placer its congestion signal for the next epoch:
        // equilibrium prices where the policy publishes them (idle
        // servers are free), current loads otherwise.
        {
            std::vector<double> signal(
                static_cast<std::size_t>(opts_.servers), 0.0);
            const bool has_prices =
                result.outcome.prices.size() == capacities.size();
            for (int j = 0; j < opts_.servers; ++j) {
                const int slot = server_map[static_cast<std::size_t>(j)];
                if (has_prices && slot >= 0) {
                    signal[static_cast<std::size_t>(j)] =
                        result.outcome
                            .prices[static_cast<std::size_t>(slot)];
                } else if (!has_prices) {
                    signal[static_cast<std::size_t>(j)] =
                        static_cast<double>(placer.load(
                            static_cast<std::size_t>(j)));
                }
            }
            placer.updatePrices(signal);
        }

        // 3. Advance jobs by their measured speedups.
        double epoch_speedup = 0.0;
        double budget_sum = 0.0;
        for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
            double user_progress = 0.0;
            for (std::size_t kk = 0; kk < user_job_ids[ui].size();
                 ++kk) {
                const std::size_t k = user_job_ids[ui][kk];
                auto &job = jobs[k];
                const int cores = result.cores[ui][kk];
                if (cores <= 0)
                    continue;
                const double t1 =
                    cache_.fullDatasetSeconds(job.workloadIndex, 1);
                const double tx =
                    cache_.fullDatasetSeconds(job.workloadIndex,
                                              cores);
                const double rate = t1 / tx; // measured speedup
                user_progress += rate;
                const double done_work =
                    rate * opts_.epochSeconds;
                if (done_work >= job.remainingWork) {
                    const double used =
                        job.remainingWork / rate;
                    job.completionSeconds = now + used;
                    job.remainingWork = 0.0;
                    ++metrics.jobsCompleted;
                    placer.jobFinished(job.server);
                } else {
                    job.remainingWork -= done_work;
                }
            }
            const double b = market.user(ui).budget;
            epoch_speedup +=
                b * user_progress /
                static_cast<double>(user_job_ids[ui].size());
            budget_sum += b;
        }
        if (budget_sum > 0.0) {
            weighted_speedup.add(epoch_speedup / budget_sum);
            metrics.speedupHistory.push_back(epoch_speedup /
                                             budget_sum);
        } else {
            metrics.speedupHistory.push_back(0.0);
        }
    }

    // 4. Aggregate metrics.
    std::vector<double> completions;
    for (const auto &job : jobs) {
        if (job.done()) {
            metrics.workCompleted += job.totalWork;
            completions.push_back(job.completionSeconds -
                                  job.arrivalSeconds);
        } else {
            metrics.workCompleted +=
                job.totalWork - job.remainingWork;
        }
    }
    if (!completions.empty()) {
        metrics.meanCompletionSeconds = mean(completions);
        metrics.p95CompletionSeconds = quantile(completions, 0.95);
    }
    metrics.meanJobsInSystem = occupancy.mean();
    metrics.meanWeightedSpeedup = weighted_speedup.mean();

    double mape = 0.0;
    std::size_t ever_active = 0;
    for (std::size_t i = 0; i < entitled.size(); ++i) {
        if (entitled[i] <= 0.0)
            continue;
        mape += std::abs(granted[i] - entitled[i]) / entitled[i];
        ++ever_active;
    }
    if (ever_active > 0) {
        metrics.longRunEntitlementMape =
            100.0 * mape / static_cast<double>(ever_active);
    }

    metrics.jobs = std::move(jobs);
    return metrics;
}

} // namespace amdahl::eval
