#include "online.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "core/bidding.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {

OnlineSimulator::OnlineSimulator(CharacterizationCache &cache,
                                 OnlineOptions opts)
    : cache_(cache), opts_(opts)
{
    if (opts_.users < 1 || opts_.servers < 1 ||
        opts_.coresPerServer < 1) {
        fatal("online scenario needs users, servers, and cores");
    }
    if (opts_.epochSeconds <= 0.0 || opts_.horizonSeconds <= 0.0)
        fatal("epoch and horizon must be positive");
    if (opts_.arrivalsPerServerEpoch < 0.0)
        fatal("arrival rate must be non-negative");
    if (opts_.workScaleMin <= 0.0 ||
        opts_.workScaleMax < opts_.workScaleMin) {
        fatal("invalid work-scale range");
    }
    if (opts_.minBudget < 1 || opts_.maxBudget < opts_.minBudget)
        fatal("invalid budget class range");
    if (!opts_.serverCores.empty() &&
        opts_.serverCores.size() !=
            static_cast<std::size_t>(opts_.servers)) {
        fatal("serverCores has ", opts_.serverCores.size(),
              " entries for ", opts_.servers, " servers");
    }
    int max_cores = opts_.coresPerServer;
    for (int c : opts_.serverCores) {
        if (c < 1)
            fatal("server core counts must be positive");
        max_cores = std::max(max_cores, c);
    }
    if (max_cores > cache_.simulator().server().cores()) {
        fatal("online servers have up to ", max_cores,
              " cores but the characterization machine only ",
              cache_.simulator().server().cores(),
              "; progress would be unmeasurable");
    }
    if (!std::isfinite(opts_.admission.maxLoadFactor) ||
        opts_.admission.maxLoadFactor <= 0.0) {
        fatal("admission load factor must be positive and finite, "
              "got ", opts_.admission.maxLoadFactor);
    }
    if (opts_.admission.maxQueueLength < 0)
        fatal("admission queue bound must be non-negative");
    robustness::validateFaultOptions(opts_.faults);
}

namespace {

/** Cores of server j under the options' cluster shape. */
int
coresOf(const OnlineOptions &opts, std::size_t j)
{
    return opts.serverCores.empty()
               ? opts.coresPerServer
               : opts.serverCores[j];
}

} // namespace

OnlineMetrics
OnlineSimulator::run(const alloc::AllocationPolicy &policy,
                     FractionSource source)
{
    // All randomness is re-seeded per run: every policy faces the
    // identical arrival stream. The fault schedule draws from its own
    // seed, so toggling it never shifts the arrivals either.
    Rng rng(opts_.seed);

    std::vector<double> budgets(static_cast<std::size_t>(opts_.users));
    for (auto &b : budgets) {
        b = static_cast<double>(
            rng.uniformInt(opts_.minBudget, opts_.maxBudget));
    }

    OnlineMetrics metrics;
    metrics.policyName = policy.name();

    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "run_start")
            .field("policy", metrics.policyName)
            .field("seed", opts_.seed)
            .field("users", opts_.users)
            .field("servers", opts_.servers)
            .field("epoch_seconds", opts_.epochSeconds)
            .field("horizon_seconds", opts_.horizonSeconds)
            .field("faults", opts_.faults.enabled)
            .field("admission", opts_.admission.enabled);
    }

    const auto &library = sim::workloadLibrary();
    std::vector<OnlineJob> jobs;
    OnlineStats occupancy;
    OnlineStats weighted_speedup;
    alloc::JobPlacer placer(
        opts_.placement, static_cast<std::size_t>(opts_.servers));

    // Cumulative core-second accounting for long-run fairness.
    std::vector<double> granted(static_cast<std::size_t>(opts_.users),
                                0.0);
    std::vector<double> entitled(static_cast<std::size_t>(opts_.users),
                                 0.0);
    // Entitlement accrued against the capacity actually live each
    // epoch (availability-weighted fairness).
    std::vector<double> entitled_avail(
        static_cast<std::size_t>(opts_.users), 0.0);

    const int epochs = static_cast<int>(
        std::ceil(opts_.horizonSeconds / opts_.epochSeconds));

    const bool faulty = opts_.faults.enabled;
    const robustness::FaultInjector injector(
        opts_.faults, static_cast<std::size_t>(opts_.servers), epochs);
    std::vector<char> live(static_cast<std::size_t>(opts_.servers), 1);
    std::vector<char> crashing(static_cast<std::size_t>(opts_.servers),
                               0);

    // Admission-control state: in_flight counts admitted, unfinished
    // jobs; the wait queue holds generated-but-not-admitted arrivals
    // (never part of `jobs`, so the market and occupancy accounting
    // see only admitted work).
    const bool admission = opts_.admission.enabled;
    std::deque<OnlineJob> wait_queue;
    std::size_t in_flight = 0;
    double queue_delay_sum = 0.0;

    for (int epoch = 0; epoch < epochs; ++epoch) {
        const double now = epoch * opts_.epochSeconds;
        obs::ScopedTimer epoch_timer(
            obs::timeHistogram("time.online.epoch_us"));
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "epoch_start")
                .field("epoch", epoch)
                .field("now", now);
        }

        // 0. Fault-schedule bookkeeping: recovered servers rejoin the
        //    market, and jobs stranded by a total outage are placed as
        //    soon as capacity exists again.
        if (faulty) {
            for (std::size_t j : injector.recoveriesAt(epoch)) {
                if (!live[j]) {
                    live[j] = 1;
                    placer.setServerLive(j, true);
                    if (auto *sink = obs::traceSink()) {
                        obs::TraceEvent(*sink, "churn")
                            .field("epoch", epoch)
                            .field("kind", "recovery")
                            .field("server", j);
                    }
                }
            }
            std::fill(crashing.begin(), crashing.end(), 0);
            for (std::size_t j : injector.crashesDuring(epoch))
                crashing[j] = 1;
            if (placer.anyLive()) {
                for (auto &job : jobs) {
                    if (!job.done() && job.unplaced()) {
                        job.server = placer.place();
                        ++metrics.replacements;
                    }
                }
            }
        }

        // Crash application (shared by the idle-epoch early-out and
        // the main path): servers failing *during* this epoch leave
        // the market, their jobs roll back to the last checkpoint and
        // are re-placed through the regular placement machinery.
        auto apply_crashes = [&]() {
            if (!faulty)
                return;
            for (std::size_t j = 0;
                 j < static_cast<std::size_t>(opts_.servers); ++j) {
                if (!crashing[j])
                    continue;
                live[j] = 0;
                placer.setServerLive(j, false);
                ++metrics.crashEvents;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "churn")
                        .field("epoch", epoch)
                        .field("kind", "crash")
                        .field("server", j);
                }
                for (auto &job : jobs) {
                    if (job.done() || job.server != j)
                        continue;
                    const double done_work =
                        job.totalWork - job.remainingWork;
                    if (done_work > job.checkpointedWork) {
                        const double lost =
                            done_work - job.checkpointedWork;
                        metrics.workLostSeconds += lost;
                        job.remainingWork =
                            job.totalWork - job.checkpointedWork;
                        if (auto *sink = obs::traceSink()) {
                            obs::TraceEvent(*sink,
                                            "checkpoint_rollback")
                                .field("epoch", epoch)
                                .field("user", job.user)
                                .field("server", j)
                                .field("lost_work", lost);
                        }
                    }
                    job.epochsSinceCheckpoint = 0;
                    placer.jobFinished(j);
                    if (placer.anyLive()) {
                        job.server = placer.place();
                        ++metrics.replacements;
                    } else {
                        job.server = OnlineJob::kUnplaced;
                    }
                }
            }
        };

        // 0.7 Admission cap for this epoch, against the servers that
        //     are actually live, and a FIFO drain of the wait queue —
        //     jobs that waited are admitted before this epoch's
        //     arrivals compete for the remaining headroom.
        double admit_cap = 0.0;
        if (admission) {
            int live_servers = 0;
            for (char l : live)
                live_servers += l ? 1 : 0;
            admit_cap = opts_.admission.maxLoadFactor *
                        static_cast<double>(live_servers);
            while (!wait_queue.empty() &&
                   static_cast<double>(in_flight) < admit_cap &&
                   placer.anyLive()) {
                OnlineJob job = wait_queue.front();
                wait_queue.pop_front();
                job.server = placer.place();
                queue_delay_sum += now - job.arrivalSeconds;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "admission")
                        .field("epoch", epoch)
                        .field("action", "admit_from_queue")
                        .field("user", job.user)
                        .field("wait_seconds",
                               now - job.arrivalSeconds)
                        .field("queue_len", wait_queue.size());
                }
                jobs.push_back(job);
                ++in_flight;
            }
        }

        // 1. Arrivals: a Poisson batch for the whole cluster, placed
        //    by the configured discipline. The batch itself (count,
        //    users, workloads, work sizes) is identical across runs
        //    with the same seed — admission control only decides what
        //    happens *after* a job is drawn, so enabling it (or
        //    changing the load factor) never shifts the stream.
        const int count = rng.poisson(opts_.arrivalsPerServerEpoch *
                                      opts_.servers);
        for (int a = 0; a < count; ++a) {
            OnlineJob job;
            job.user = static_cast<std::size_t>(
                rng.uniformInt(0, opts_.users - 1));
            job.workloadIndex =
                static_cast<std::size_t>(rng.uniformInt(
                    0,
                    static_cast<std::int64_t>(library.size()) - 1));
            job.arrivalSeconds = now;
            const double t1 =
                cache_.fullDatasetSeconds(job.workloadIndex, 1);
            job.totalWork = t1 * rng.uniform(opts_.workScaleMin,
                                             opts_.workScaleMax);
            job.remainingWork = job.totalWork;
            ++metrics.jobsArrived;
            auto trace_arrival = [&](const char *action) {
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "admission")
                        .field("epoch", epoch)
                        .field("action", action)
                        .field("user", job.user)
                        .field("workload", job.workloadIndex)
                        .field("work", job.totalWork);
                }
            };
            if (!admission) {
                if (faulty && !placer.anyLive())
                    job.server = OnlineJob::kUnplaced;
                else
                    job.server = placer.place();
                trace_arrival(job.unplaced() ? "park" : "admit");
                jobs.push_back(job);
                ++in_flight;
            } else if (static_cast<double>(in_flight) < admit_cap &&
                       (!faulty || placer.anyLive())) {
                job.server = placer.place();
                trace_arrival("admit");
                jobs.push_back(job);
                ++in_flight;
            } else {
                // Backpressure: over-cap arrivals wait. A full queue
                // sheds one job — the earliest lowest-budget one under
                // entitlement shedding, the arrival itself under tail
                // drop.
                wait_queue.push_back(job);
                ++metrics.jobsQueued;
                trace_arrival("queue");
                if (wait_queue.size() >
                    static_cast<std::size_t>(
                        opts_.admission.maxQueueLength)) {
                    std::size_t victim = wait_queue.size() - 1;
                    if (opts_.admission.shedByEntitlement) {
                        for (std::size_t q = 0; q < wait_queue.size();
                             ++q) {
                            if (budgets[wait_queue[q].user] <
                                budgets[wait_queue[victim].user]) {
                                victim = q;
                            }
                        }
                    }
                    if (auto *sink = obs::traceSink()) {
                        obs::TraceEvent(*sink, "admission")
                            .field("epoch", epoch)
                            .field("action", "shed")
                            .field("user", wait_queue[victim].user)
                            .field("queue_len",
                                   wait_queue.size() - 1);
                    }
                    wait_queue.erase(
                        wait_queue.begin() +
                        static_cast<std::ptrdiff_t>(victim));
                    ++metrics.jobsShed;
                }
                metrics.peakQueueLength = std::max(
                    metrics.peakQueueLength,
                    static_cast<int>(wait_queue.size()));
            }
        }

        // 2. Build the market over placed in-flight jobs. Idle or
        //    crashed servers and jobless tenants are excluded from
        //    this epoch's market.
        std::vector<std::size_t> active;
        std::size_t in_system = 0;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            if (jobs[k].done())
                continue;
            ++in_system;
            if (!jobs[k].unplaced())
                active.push_back(k);
        }
        occupancy.add(static_cast<double>(in_system));
        metrics.occupancyHistory.push_back(
            static_cast<double>(in_system));
        if (active.empty()) {
            metrics.speedupHistory.push_back(0.0);
            apply_crashes();
            if (auto *sink = obs::traceSink()) {
                obs::TraceEvent(*sink, "epoch_end")
                    .field("epoch", epoch)
                    .field("in_system", in_system)
                    .field("idle", true);
            }
            continue;
        }

        std::vector<int> server_map(
            static_cast<std::size_t>(opts_.servers), -1);
        std::vector<double> capacities;
        for (std::size_t k : active) {
            AMDAHL_ASSERT(live[jobs[k].server],
                          "job placed on a dead server at epoch ",
                          epoch);
            auto &slot = server_map[jobs[k].server];
            if (slot < 0) {
                slot = static_cast<int>(capacities.size());
                capacities.push_back(static_cast<double>(
                    coresOf(opts_, jobs[k].server)));
            }
        }

        std::vector<int> user_map(static_cast<std::size_t>(opts_.users),
                                  -1);
        std::vector<core::MarketUser> market_users;
        std::vector<std::vector<std::size_t>> user_job_ids;
        for (std::size_t k : active) {
            auto &slot = user_map[jobs[k].user];
            if (slot < 0) {
                slot = static_cast<int>(market_users.size());
                core::MarketUser user;
                user.name = "tenant" + std::to_string(jobs[k].user);
                user.budget = budgets[jobs[k].user];
                if (opts_.deficitCompensation &&
                    granted[jobs[k].user] > 0.0) {
                    const double boost = std::clamp(
                        entitled[jobs[k].user] /
                            granted[jobs[k].user],
                        1.0, opts_.maxCompensation);
                    user.budget *= boost;
                }
                market_users.push_back(std::move(user));
                user_job_ids.emplace_back();
            }
            core::JobSpec spec;
            spec.server = static_cast<std::size_t>(
                server_map[jobs[k].server]);
            double fraction =
                cache_.fraction(jobs[k].workloadIndex, source);
            if (faulty) {
                // Stale profiles: the market prices tomorrow's cores
                // with yesterday's estimates.
                fraction = injector.perturbFraction(
                    epoch, jobs[k].workloadIndex, fraction);
            }
            spec.parallelFraction = fraction;
            spec.weight = 1.0;
            market_users[static_cast<std::size_t>(slot)]
                .jobs.push_back(spec);
            user_job_ids[static_cast<std::size_t>(slot)].push_back(k);
        }

        core::FisherMarket market(capacities);
        for (auto &user : market_users)
            market.addUser(std::move(user));

        core::BidTransportFaults transport;
        if (faulty) {
            transport.lossRate = opts_.faults.bidLossRate;
            transport.seed = injector.bidSeed(epoch);
        }
        const auto result = faulty ? policy.allocate(market, transport)
                                   : policy.allocate(market);

        // Degraded-mode bookkeeping: count epochs the primary
        // procedure failed and which ladder rung served them. A
        // rate-limited warning keeps non-convergence caller-visible
        // without flooding long runs.
        if (result.mode == alloc::ServeMode::DampedRetry)
            ++metrics.fallbackEpochsDamped;
        else if (result.mode == alloc::ServeMode::ProportionalFallback)
            ++metrics.fallbackEpochsProportional;
        else if (result.mode == alloc::ServeMode::DeadlineAnytime)
            ++metrics.fallbackEpochsDeadline;
        if (result.outcome.deadlineExpired)
            ++metrics.deadlineExpiredEpochs;
        const bool primary_failed =
            result.mode != alloc::ServeMode::Primary ||
            (result.outcome.iterations > 0 &&
             !result.outcome.converged);
        if (primary_failed) {
            ++metrics.nonConvergedEpochs;
            if (metrics.nonConvergedEpochs == 1 ||
                metrics.nonConvergedEpochs % 64 == 0) {
                warn(metrics.policyName, ": bidding did not converge ",
                     "at epoch ", epoch, " (",
                     result.outcome.iterations,
                     " iterations; served by ",
                     alloc::toString(result.mode),
                     "; ", metrics.nonConvergedEpochs,
                     " non-converged epochs so far)");
            }
        }

        // Contract: an epoch's integral grants never exceed the live
        // capacity — crashed servers' cores must be out of the market.
        if constexpr (checkedBuild) {
            double total_cores = 0.0;
            for (const auto &row : result.cores) {
                for (int c : row)
                    total_cores += static_cast<double>(c);
            }
            double live_capacity = 0.0;
            for (int j = 0; j < opts_.servers; ++j) {
                if (live[static_cast<std::size_t>(j)]) {
                    live_capacity += static_cast<double>(
                        coresOf(opts_, static_cast<std::size_t>(j)));
                }
            }
            AMDAHL_ASSERT(total_cores <= live_capacity + 1e-9,
                          "epoch ", epoch, " granted ", total_cores,
                          " cores with only ", live_capacity, " live");
        }

        // Core-second accounting against *base* budgets: the
        // entitlement contract does not move with compensation.
        {
            double active_budget = 0.0;
            double active_capacity = 0.0;
            for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
                active_budget +=
                    budgets[jobs[user_job_ids[ui][0]].user];
            }
            for (double c : capacities)
                active_capacity += c;
            double live_capacity = 0.0;
            for (int j = 0; j < opts_.servers; ++j) {
                if (live[static_cast<std::size_t>(j)]) {
                    live_capacity += static_cast<double>(
                        coresOf(opts_, static_cast<std::size_t>(j)));
                }
            }
            for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
                const std::size_t tenant =
                    jobs[user_job_ids[ui][0]].user;
                entitled[tenant] += budgets[tenant] / active_budget *
                                    active_capacity *
                                    opts_.epochSeconds;
                entitled_avail[tenant] +=
                    budgets[tenant] / active_budget * live_capacity *
                    opts_.epochSeconds;
                granted[tenant] +=
                    result.userCores(ui) * opts_.epochSeconds;
            }
        }

        // Feed the placer its congestion signal for the next epoch:
        // equilibrium prices where the policy publishes them (idle
        // servers are free), current loads otherwise.
        {
            std::vector<double> signal(
                static_cast<std::size_t>(opts_.servers), 0.0);
            const bool has_prices =
                result.outcome.prices.size() == capacities.size();
            for (int j = 0; j < opts_.servers; ++j) {
                const int slot = server_map[static_cast<std::size_t>(j)];
                if (has_prices && slot >= 0) {
                    signal[static_cast<std::size_t>(j)] =
                        result.outcome
                            .prices[static_cast<std::size_t>(slot)];
                } else if (!has_prices) {
                    signal[static_cast<std::size_t>(j)] =
                        static_cast<double>(placer.load(
                            static_cast<std::size_t>(j)));
                }
            }
            placer.updatePrices(signal);
        }

        // 3. Advance jobs by their measured speedups. Jobs on a
        //    server that fails during this epoch make no durable
        //    progress: the crash takes their epoch with it.
        double epoch_speedup = 0.0;
        double budget_sum = 0.0;
        for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
            double user_progress = 0.0;
            for (std::size_t kk = 0; kk < user_job_ids[ui].size();
                 ++kk) {
                const std::size_t k = user_job_ids[ui][kk];
                auto &job = jobs[k];
                if (faulty && crashing[job.server])
                    continue;
                const int cores = result.cores[ui][kk];
                if (cores <= 0)
                    continue;
                const double t1 =
                    cache_.fullDatasetSeconds(job.workloadIndex, 1);
                const double tx =
                    cache_.fullDatasetSeconds(job.workloadIndex,
                                              cores);
                const double rate = t1 / tx; // measured speedup
                user_progress += rate;
                const double done_work =
                    rate * opts_.epochSeconds;
                if (done_work >= job.remainingWork) {
                    const double used =
                        job.remainingWork / rate;
                    job.completionSeconds = now + used;
                    job.remainingWork = 0.0;
                    ++metrics.jobsCompleted;
                    --in_flight;
                    placer.jobFinished(job.server);
                } else {
                    job.remainingWork -= done_work;
                }
            }
            const double b = market.user(ui).budget;
            epoch_speedup +=
                b * user_progress /
                static_cast<double>(user_job_ids[ui].size());
            budget_sum += b;
        }
        if (budget_sum > 0.0) {
            weighted_speedup.add(epoch_speedup / budget_sum);
            metrics.speedupHistory.push_back(epoch_speedup /
                                             budget_sum);
        } else {
            metrics.speedupHistory.push_back(0.0);
        }

        apply_crashes();

        // 4. Checkpoint tick: durable progress advances every
        //    checkpointEpochs epochs, bounding what the next crash
        //    can take.
        if (faulty) {
            for (auto &job : jobs) {
                if (job.done() || job.unplaced())
                    continue;
                ++job.epochsSinceCheckpoint;
                if (job.epochsSinceCheckpoint >=
                    opts_.faults.checkpointEpochs) {
                    job.checkpointedWork =
                        job.totalWork - job.remainingWork;
                    job.epochsSinceCheckpoint = 0;
                }
            }
        }

        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "epoch_end")
                .field("epoch", epoch)
                .field("in_system", in_system)
                .field("idle", false)
                .field("mode", alloc::toString(result.mode))
                .field("weighted_speedup",
                       metrics.speedupHistory.back())
                .field("jobs_completed", metrics.jobsCompleted);
        }
    }

    // 5. Aggregate metrics.
    std::vector<double> completions;
    for (const auto &job : jobs) {
        if (job.done()) {
            metrics.workCompleted += job.totalWork;
            completions.push_back(job.completionSeconds -
                                  job.arrivalSeconds);
        } else {
            metrics.workCompleted +=
                job.totalWork - job.remainingWork;
        }
    }
    if (!completions.empty()) {
        metrics.meanCompletionSeconds = mean(completions);
        metrics.p95CompletionSeconds = quantile(completions, 0.95);
    }
    metrics.meanJobsInSystem = occupancy.mean();
    metrics.meanWeightedSpeedup = weighted_speedup.mean();

    double mape = 0.0;
    double mape_avail = 0.0;
    std::size_t ever_active = 0;
    for (std::size_t i = 0; i < entitled.size(); ++i) {
        if (entitled[i] <= 0.0)
            continue;
        mape += std::abs(granted[i] - entitled[i]) / entitled[i];
        if (entitled_avail[i] > 0.0) {
            mape_avail += std::abs(granted[i] - entitled_avail[i]) /
                          entitled_avail[i];
        }
        ++ever_active;
    }
    if (ever_active > 0) {
        metrics.longRunEntitlementMape =
            100.0 * mape / static_cast<double>(ever_active);
        metrics.availabilityWeightedEntitlementMape =
            100.0 * mape_avail / static_cast<double>(ever_active);
    }

    metrics.jobsQueuedAtHorizon = static_cast<int>(wait_queue.size());
    if (metrics.jobsArrived > 0) {
        metrics.sheddingRate =
            static_cast<double>(metrics.jobsShed) /
            static_cast<double>(metrics.jobsArrived);
    }
    if (!jobs.empty()) {
        metrics.meanQueueDelaySeconds =
            queue_delay_sum / static_cast<double>(jobs.size());
    }

    {
        auto &reg = obs::metrics();
        reg.counter("online.runs").add();
        reg.counter("online.epochs")
            .add(static_cast<std::uint64_t>(epochs));
        reg.counter("online.jobs_arrived")
            .add(static_cast<std::uint64_t>(metrics.jobsArrived));
        reg.counter("online.jobs_completed")
            .add(static_cast<std::uint64_t>(metrics.jobsCompleted));
        reg.counter("online.jobs_shed")
            .add(static_cast<std::uint64_t>(metrics.jobsShed));
        reg.counter("online.crash_events")
            .add(static_cast<std::uint64_t>(metrics.crashEvents));
    }
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "run_end")
            .field("policy", metrics.policyName)
            .field("jobs_arrived", metrics.jobsArrived)
            .field("jobs_completed", metrics.jobsCompleted)
            .field("jobs_shed", metrics.jobsShed)
            .field("non_converged_epochs", metrics.nonConvergedEpochs)
            .field("deadline_expired_epochs",
                   metrics.deadlineExpiredEpochs);
        sink->flush();
    }
    metrics.metricsSnapshot = obs::metrics().snapshot();

    metrics.jobs = std::move(jobs);
    return metrics;
}

} // namespace amdahl::eval
