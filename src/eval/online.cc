#include "online.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/bidding.hh"
#include "core/bidding_kernel.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "robustness/durability/codec.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {

OnlineSimulator::OnlineSimulator(CharacterizationCache &cache,
                                 OnlineOptions opts)
    : cache_(cache), opts_(opts)
{
    if (opts_.users < 1 || opts_.servers < 1 ||
        opts_.coresPerServer < 1) {
        fatal("online scenario needs users, servers, and cores");
    }
    if (opts_.epochSeconds <= 0.0 || opts_.horizonSeconds <= 0.0)
        fatal("epoch and horizon must be positive");
    if (opts_.arrivalsPerServerEpoch < 0.0)
        fatal("arrival rate must be non-negative");
    if (opts_.workScaleMin <= 0.0 ||
        opts_.workScaleMax < opts_.workScaleMin) {
        fatal("invalid work-scale range");
    }
    if (opts_.minBudget < 1 || opts_.maxBudget < opts_.minBudget)
        fatal("invalid budget class range");
    if (!opts_.serverCores.empty() &&
        opts_.serverCores.size() !=
            static_cast<std::size_t>(opts_.servers)) {
        fatal("serverCores has ", opts_.serverCores.size(),
              " entries for ", opts_.servers, " servers");
    }
    int max_cores = opts_.coresPerServer;
    for (int c : opts_.serverCores) {
        if (c < 1)
            fatal("server core counts must be positive");
        max_cores = std::max(max_cores, c);
    }
    if (max_cores > cache_.simulator().server().cores()) {
        fatal("online servers have up to ", max_cores,
              " cores but the characterization machine only ",
              cache_.simulator().server().cores(),
              "; progress would be unmeasurable");
    }
    if (!std::isfinite(opts_.admission.maxLoadFactor) ||
        opts_.admission.maxLoadFactor <= 0.0) {
        fatal("admission load factor must be positive and finite, "
              "got ", opts_.admission.maxLoadFactor);
    }
    if (opts_.admission.maxQueueLength < 0)
        fatal("admission queue bound must be non-negative");
    robustness::validateFaultOptions(opts_.faults);
    if (const Status st = net::validateShardedOptions(opts_.net);
        !st.isOk()) {
        fatal("invalid sharded clearing options: ", st.toString());
    }
}

namespace {

/** Cores of server j under the options' cluster shape. */
int
coresOf(const OnlineOptions &opts, std::size_t j)
{
    return opts.serverCores.empty()
               ? opts.coresPerServer
               : opts.serverCores[j];
}

/** Emit the run_start event (fresh runs only; on a recovery the event
 *  is already durable in the trace file). */
void
emitRunStart(const OnlineOptions &opts, const std::string &policyName)
{
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "run_start")
            .field("policy", policyName)
            .field("seed", opts.seed)
            .field("users", opts.users)
            .field("servers", opts.servers)
            .field("epoch_seconds", opts.epochSeconds)
            .field("horizon_seconds", opts.horizonSeconds)
            .field("faults", opts.faults.enabled)
            .field("admission", opts.admission.enabled);
    }
}

/** Layout version of encodeOnlineState; bump on any field change. */
constexpr std::uint32_t kStateVersion = 3;

void
putJob(durability::ByteWriter &w, const OnlineJob &job)
{
    w.putU64(static_cast<std::uint64_t>(job.user));
    w.putU64(static_cast<std::uint64_t>(job.server));
    w.putU64(static_cast<std::uint64_t>(job.workloadIndex));
    w.putF64(job.arrivalSeconds);
    w.putF64(job.totalWork);
    w.putF64(job.remainingWork);
    w.putF64(job.completionSeconds);
    w.putF64(job.checkpointedWork);
    w.putU64(static_cast<std::uint64_t>(job.epochsSinceCheckpoint));
}

OnlineJob
readJob(durability::ByteReader &r)
{
    OnlineJob job;
    job.user = static_cast<std::size_t>(r.readU64());
    job.server = static_cast<std::size_t>(r.readU64());
    job.workloadIndex = static_cast<std::size_t>(r.readU64());
    job.arrivalSeconds = r.readF64();
    job.totalWork = r.readF64();
    job.remainingWork = r.readF64();
    job.completionSeconds = r.readF64();
    job.checkpointedWork = r.readF64();
    job.epochsSinceCheckpoint = static_cast<int>(r.readU64());
    return job;
}

void
putStats(durability::ByteWriter &w, const OnlineStatsState &st)
{
    w.putU64(static_cast<std::uint64_t>(st.n));
    w.putF64(st.m);
    w.putF64(st.m2);
    w.putF64(st.lo);
    w.putF64(st.hi);
}

OnlineStatsState
readStats(durability::ByteReader &r)
{
    OnlineStatsState st;
    st.n = static_cast<std::size_t>(r.readU64());
    st.m = r.readF64();
    st.m2 = r.readF64();
    st.lo = r.readF64();
    st.hi = r.readF64();
    return st;
}

void
putCharVector(durability::ByteWriter &w, const std::vector<char> &v)
{
    w.putString(std::string_view(v.data(), v.size()));
}

std::vector<char>
readCharVector(durability::ByteReader &r)
{
    const std::string s = r.readString();
    return {s.begin(), s.end()};
}

void
putIntVector(durability::ByteWriter &w, const std::vector<int> &v)
{
    w.putU64(v.size());
    for (int x : v)
        w.putU64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(x)));
}

std::vector<int>
readIntVector(durability::ByteReader &r)
{
    const std::vector<std::uint64_t> raw = r.readU64Vector();
    std::vector<int> out;
    out.reserve(raw.size());
    for (std::uint64_t x : raw)
        out.push_back(static_cast<int>(static_cast<std::int64_t>(x)));
    return out;
}

void
putCount(durability::ByteWriter &w, int v)
{
    w.putU64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

int
readCount(durability::ByteReader &r)
{
    return static_cast<int>(static_cast<std::int64_t>(r.readU64()));
}

} // namespace

std::uint32_t
onlineStateFingerprint(const OnlineOptions &opts,
                       std::string_view policyName)
{
    Crc32 d;
    d.updateU64(opts.seed);
    d.updateU64(static_cast<std::uint64_t>(opts.users));
    d.updateU64(static_cast<std::uint64_t>(opts.servers));
    d.updateU64(static_cast<std::uint64_t>(opts.coresPerServer));
    d.updateU64(opts.serverCores.size());
    for (int c : opts.serverCores)
        d.updateU64(static_cast<std::uint64_t>(c));
    d.updateF64(opts.epochSeconds);
    d.updateF64(opts.horizonSeconds);
    d.updateF64(opts.arrivalsPerServerEpoch);
    d.updateF64(opts.workScaleMin);
    d.updateF64(opts.workScaleMax);
    d.updateU64(static_cast<std::uint64_t>(opts.minBudget));
    d.updateU64(static_cast<std::uint64_t>(opts.maxBudget));
    d.updateU32(static_cast<std::uint32_t>(opts.placement));
    d.updateU32(opts.deficitCompensation ? 1 : 0);
    d.updateF64(opts.maxCompensation);
    d.updateU32(opts.faults.enabled ? 1 : 0);
    d.updateU64(opts.faults.seed);
    d.updateF64(opts.faults.crashRatePerServerEpoch);
    d.updateU64(static_cast<std::uint64_t>(opts.faults.downEpochs));
    d.updateU64(
        static_cast<std::uint64_t>(opts.faults.checkpointEpochs));
    d.updateF64(opts.faults.bidLossRate);
    d.updateF64(opts.faults.fractionNoiseStddev);
    d.updateU64(
        static_cast<std::uint64_t>(opts.faults.staleRefreshEpochs));
    d.updateU64(opts.faults.scriptedCrashes.size());
    for (const auto &ev : opts.faults.scriptedCrashes) {
        d.updateU64(static_cast<std::uint64_t>(ev.server));
        d.updateU64(static_cast<std::uint64_t>(ev.crashEpoch));
        d.updateU64(static_cast<std::uint64_t>(ev.recoverEpoch));
    }
    d.updateU32(opts.admission.enabled ? 1 : 0);
    d.updateF64(opts.admission.maxLoadFactor);
    d.updateU64(
        static_cast<std::uint64_t>(opts.admission.maxQueueLength));
    d.updateU32(opts.admission.shedByEntitlement ? 1 : 0);
    d.updateU64(static_cast<std::uint64_t>(opts.net.shards));
    d.updateU64(opts.net.barrierDeadline);
    d.updateU64(opts.net.retransmitBase);
    d.updateU32(opts.net.maxRetransmits);
    d.updateF64(opts.net.quorumFloor);
    d.updateU64(opts.net.maxStaleRounds);
    d.updateF64(opts.net.reentryDamping);
    d.updateF64(opts.net.faults.lossRate);
    d.updateU64(opts.net.faults.delayMin);
    d.updateU64(opts.net.faults.delayMax);
    d.updateF64(opts.net.faults.duplicationRate);
    d.updateU64(opts.net.faults.seed);
    d.updateU32(opts.delta.reuseKernel ? 1 : 0);
    d.updateU32(opts.delta.warmStartBids ? 1 : 0);
    d.updateF64(opts.delta.maxChurnFraction);
    d.updateU64(opts.net.partitions.size());
    for (const auto &w : opts.net.partitions) {
        d.updateU64(static_cast<std::uint64_t>(w.shard));
        d.updateU64(w.fromRound);
        d.updateU64(w.toRound);
    }
    d.update(policyName);
    return d.value();
}

std::string
encodeOnlineState(const OnlineRunState &s, const OnlineOptions &opts)
{
    durability::ByteWriter w;
    w.putU32(kStateVersion);
    w.putU32(onlineStateFingerprint(opts, s.metrics.policyName));
    w.putU64(static_cast<std::uint64_t>(s.epoch));
    for (std::uint64_t word : s.rngState)
        w.putU64(word);
    w.putF64Vector(s.budgets);
    w.putU64(s.jobs.size());
    for (const auto &job : s.jobs)
        putJob(w, job);
    w.putU64(s.waitQueue.size());
    for (const auto &job : s.waitQueue)
        putJob(w, job);
    w.putU64(static_cast<std::uint64_t>(s.inFlight));
    w.putF64(s.queueDelaySum);
    putCharVector(w, s.live);
    putIntVector(w, s.placer.loads);
    putCharVector(w, s.placer.live);
    w.putF64Vector(s.placer.prices);
    putIntVector(w, s.placer.sinceUpdate);
    w.putU64(static_cast<std::uint64_t>(s.placer.nextRoundRobin));
    putStats(w, s.occupancy);
    putStats(w, s.weightedSpeedup);
    w.putF64Vector(s.granted);
    w.putF64Vector(s.entitled);
    w.putF64Vector(s.entitledAvail);
    w.putString(s.metrics.policyName);
    putCount(w, s.metrics.jobsArrived);
    putCount(w, s.metrics.jobsCompleted);
    putCount(w, s.metrics.nonConvergedEpochs);
    putCount(w, s.metrics.fallbackEpochsDamped);
    putCount(w, s.metrics.fallbackEpochsProportional);
    putCount(w, s.metrics.fallbackEpochsDeadline);
    putCount(w, s.metrics.deadlineExpiredEpochs);
    putCount(w, s.metrics.jobsQueued);
    putCount(w, s.metrics.jobsShed);
    putCount(w, s.metrics.peakQueueLength);
    putCount(w, s.metrics.crashEvents);
    putCount(w, s.metrics.replacements);
    w.putF64(s.metrics.workLostSeconds);
    w.putF64Vector(s.metrics.occupancyHistory);
    w.putF64Vector(s.metrics.speedupHistory);
    w.putU64(s.net.ticks);
    w.putU64(s.net.globalRound);
    w.putU64(s.net.edgeSeq.size());
    for (std::uint64_t seq : s.net.edgeSeq)
        w.putU64(seq);
    w.putU64(s.metrics.netDegradedRounds);
    w.putU64(s.metrics.netStaleBidRounds);
    w.putU64(s.metrics.netRetransmits);
    w.putU64(s.metrics.netQuorumCollapses);
    // The kernel cache is deliberately absent: it is bitwise invisible
    // (a recovered run rebuilds it and stays on the same trajectory).
    w.putF64Vector(s.lastBids);
    return w.take();
}

Result<OnlineRunState>
decodeOnlineState(std::string_view payload, const OnlineOptions &opts,
                  std::string_view policyName)
{
    durability::ByteReader r(payload);
    const std::uint32_t version = r.readU32();
    if (r.ok() && version != kStateVersion) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot state version ", version,
                             "; this build reads version ",
                             kStateVersion);
    }
    const std::uint32_t fingerprint = r.readU32();
    const std::uint32_t expected =
        onlineStateFingerprint(opts, policyName);
    if (r.ok() && fingerprint != expected) {
        return Status::error(
            ErrorKind::SemanticError, 0,
            "snapshot was produced under a different scenario or "
            "policy (state fingerprint ", fingerprint, ", this run's ",
            expected, "); refusing to replay into divergence");
    }

    OnlineRunState s;
    s.epoch = static_cast<int>(r.readU64());
    for (auto &word : s.rngState)
        word = r.readU64();
    s.budgets = r.readF64Vector();
    const std::uint64_t job_count = r.readU64();
    for (std::uint64_t i = 0; r.ok() && i < job_count; ++i)
        s.jobs.push_back(readJob(r));
    const std::uint64_t queue_count = r.readU64();
    for (std::uint64_t i = 0; r.ok() && i < queue_count; ++i)
        s.waitQueue.push_back(readJob(r));
    s.inFlight = static_cast<std::size_t>(r.readU64());
    s.queueDelaySum = r.readF64();
    s.live = readCharVector(r);
    s.placer.loads = readIntVector(r);
    s.placer.live = readCharVector(r);
    s.placer.prices = r.readF64Vector();
    s.placer.sinceUpdate = readIntVector(r);
    s.placer.nextRoundRobin = static_cast<std::size_t>(r.readU64());
    s.occupancy = readStats(r);
    s.weightedSpeedup = readStats(r);
    s.granted = r.readF64Vector();
    s.entitled = r.readF64Vector();
    s.entitledAvail = r.readF64Vector();
    s.metrics.policyName = r.readString();
    s.metrics.jobsArrived = readCount(r);
    s.metrics.jobsCompleted = readCount(r);
    s.metrics.nonConvergedEpochs = readCount(r);
    s.metrics.fallbackEpochsDamped = readCount(r);
    s.metrics.fallbackEpochsProportional = readCount(r);
    s.metrics.fallbackEpochsDeadline = readCount(r);
    s.metrics.deadlineExpiredEpochs = readCount(r);
    s.metrics.jobsQueued = readCount(r);
    s.metrics.jobsShed = readCount(r);
    s.metrics.peakQueueLength = readCount(r);
    s.metrics.crashEvents = readCount(r);
    s.metrics.replacements = readCount(r);
    s.metrics.workLostSeconds = r.readF64();
    s.metrics.occupancyHistory = r.readF64Vector();
    s.metrics.speedupHistory = r.readF64Vector();
    s.net.ticks = r.readU64();
    s.net.globalRound = r.readU64();
    const std::uint64_t edge_count = r.readU64();
    for (std::uint64_t i = 0; r.ok() && i < edge_count; ++i)
        s.net.edgeSeq.push_back(r.readU64());
    s.metrics.netDegradedRounds = r.readU64();
    s.metrics.netStaleBidRounds = r.readU64();
    s.metrics.netRetransmits = r.readU64();
    s.metrics.netQuorumCollapses = r.readU64();
    s.lastBids = r.readF64Vector();
    r.expectEnd();
    if (!r.ok())
        return r.status();

    // The container CRC already matched, so these only fire on a
    // collision or an encoder bug — but the reader promises to reject
    // every inconsistent state, not just the probable ones.
    const auto users = static_cast<std::size_t>(opts.users);
    const auto servers = static_cast<std::size_t>(opts.servers);
    const int epochs = static_cast<int>(
        std::ceil(opts.horizonSeconds / opts.epochSeconds));
    if (s.epoch < 0 || s.epoch > epochs) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot is at epoch ", s.epoch,
                             " of a ", epochs, "-epoch horizon");
    }
    if (s.budgets.size() != users || s.granted.size() != users ||
        s.entitled.size() != users || s.entitledAvail.size() != users) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot tenant vectors do not match ",
                             users, " users");
    }
    if (s.live.size() != servers || s.placer.loads.size() != servers ||
        s.placer.live.size() != servers ||
        s.placer.prices.size() != servers ||
        s.placer.sinceUpdate.size() != servers) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot server vectors do not match ",
                             servers, " servers");
    }
    if (!s.net.edgeSeq.empty() &&
        s.net.edgeSeq.size() != 2 * opts.net.shards) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot transport session has ",
                             s.net.edgeSeq.size(),
                             " edge sequences; this scenario's ",
                             opts.net.shards, " shards need ",
                             2 * opts.net.shards);
    }
    const auto epoch_entries = static_cast<std::size_t>(s.epoch);
    if (s.metrics.occupancyHistory.size() != epoch_entries ||
        s.metrics.speedupHistory.size() != epoch_entries) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot history length does not match "
                             "its epoch count ", s.epoch);
    }
    if (s.lastBids.size() > s.jobs.size()) {
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot carries ", s.lastBids.size(),
                             " warm-start bids for a ", s.jobs.size(),
                             "-entry job log");
    }
    return s;
}

int
OnlineSimulator::epochCount() const
{
    return static_cast<int>(
        std::ceil(opts_.horizonSeconds / opts_.epochSeconds));
}

OnlineRunState
OnlineSimulator::initState(const alloc::AllocationPolicy &policy) const
{
    // All randomness is re-seeded per run: every policy faces the
    // identical arrival stream. The fault schedule draws from its own
    // seed, so toggling it never shifts the arrivals either.
    Rng rng(opts_.seed);

    OnlineRunState s;
    s.budgets.resize(static_cast<std::size_t>(opts_.users));
    for (auto &b : s.budgets) {
        b = static_cast<double>(
            rng.uniformInt(opts_.minBudget, opts_.maxBudget));
    }
    s.rngState = rng.saveState();
    s.metrics.policyName = policy.name();
    s.jobs.clear();
    s.live.assign(static_cast<std::size_t>(opts_.servers), 1);
    const alloc::JobPlacer placer(
        opts_.placement, static_cast<std::size_t>(opts_.servers));
    s.placer = placer.saveState();
    s.granted.assign(static_cast<std::size_t>(opts_.users), 0.0);
    s.entitled.assign(static_cast<std::size_t>(opts_.users), 0.0);
    s.entitledAvail.assign(static_cast<std::size_t>(opts_.users), 0.0);
    return s;
}

void
OnlineSimulator::runEpoch(OnlineRunState &s,
                          const alloc::AllocationPolicy &policy,
                          FractionSource source,
                          const robustness::FaultInjector &injector) const
{
    const int epoch = s.epoch;
    const double now = epoch * opts_.epochSeconds;
    const bool faulty = opts_.faults.enabled;
    const bool admission = opts_.admission.enabled;
    const auto &library = sim::workloadLibrary();

    // Rebuild the live accumulators from their serialized state; they
    // are saved back on every exit path. A placer/RNG restored from
    // state behaves identically to one that ran continuously, which is
    // what makes a replayed epoch bit-identical to the original.
    Rng rng(opts_.seed);
    rng.restoreState(s.rngState);
    alloc::JobPlacer placer(opts_.placement,
                            static_cast<std::size_t>(opts_.servers));
    placer.restoreState(s.placer);
    OnlineStats occupancy = OnlineStats::fromState(s.occupancy);
    OnlineStats weighted_speedup =
        OnlineStats::fromState(s.weightedSpeedup);
    auto &metrics = s.metrics;
    auto &jobs = s.jobs;
    auto &live = s.live;
    auto &budgets = s.budgets;
    auto &wait_queue = s.waitQueue;
    auto &granted = s.granted;
    auto &entitled = s.entitled;
    auto &entitled_avail = s.entitledAvail;
    auto &in_flight = s.inFlight;
    auto &queue_delay_sum = s.queueDelaySum;
    std::vector<char> crashing(static_cast<std::size_t>(opts_.servers),
                               0);

    auto save_back = [&] {
        s.rngState = rng.saveState();
        s.placer = placer.saveState();
        s.occupancy = occupancy.saveState();
        s.weightedSpeedup = weighted_speedup.saveState();
        ++s.epoch;
    };

    obs::ScopedTimer epoch_timer(
        obs::timeHistogram("time.online.epoch_us"));
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "epoch_start")
            .field("epoch", epoch)
            .field("now", now);
    }

    // Root of this epoch's span tree: derived from (seed, epoch) and
    // stamped with the persistent net-session clock, so the rungs and
    // rounds cleared below hang off it. Zero-width for epochs that
    // never touch the sharded transport (virtual time stands still).
    const std::uint64_t epochSpanId =
        obs::spanSink() != nullptr
            ? obs::spanId(obs::SpanKind::Epoch, opts_.seed,
                          static_cast<std::uint64_t>(epoch))
            : 0;
    const std::uint64_t epochSpanT0 = s.net.ticks;
    std::optional<obs::SpanParentScope> epochScope;
    if (epochSpanId != 0)
        epochScope.emplace(epochSpanId);
    const auto emitEpochSpan = [&](bool idle) {
        if (auto *spanTrace = obs::spanSink()) {
            obs::SpanEvent(*spanTrace, "epoch", epochSpanId, 0,
                           epochSpanT0, s.net.ticks)
                .field("epoch", epoch)
                .field("idle", idle);
        }
    };

    // 0. Fault-schedule bookkeeping: recovered servers rejoin the
    //    market, and jobs stranded by a total outage are placed as
    //    soon as capacity exists again.
    if (faulty) {
        for (std::size_t j : injector.recoveriesAt(epoch)) {
            if (!live[j]) {
                live[j] = 1;
                placer.setServerLive(j, true);
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "churn")
                        .field("epoch", epoch)
                        .field("kind", "recovery")
                        .field("server", j);
                }
            }
        }
        for (std::size_t j : injector.crashesDuring(epoch))
            crashing[j] = 1;
        if (placer.anyLive()) {
            for (auto &job : jobs) {
                if (!job.done() && job.unplaced()) {
                    job.server = placer.place();
                    ++metrics.replacements;
                }
            }
        }
    }

    // Crash application (shared by the idle-epoch early-out and
    // the main path): servers failing *during* this epoch leave
    // the market, their jobs roll back to the last checkpoint and
    // are re-placed through the regular placement machinery.
    auto apply_crashes = [&]() {
        if (!faulty)
            return;
        for (std::size_t j = 0;
             j < static_cast<std::size_t>(opts_.servers); ++j) {
            if (!crashing[j])
                continue;
            live[j] = 0;
            placer.setServerLive(j, false);
            ++metrics.crashEvents;
            if (auto *sink = obs::traceSink()) {
                obs::TraceEvent(*sink, "churn")
                    .field("epoch", epoch)
                    .field("kind", "crash")
                    .field("server", j);
            }
            for (auto &job : jobs) {
                if (job.done() || job.server != j)
                    continue;
                const double done_work =
                    job.totalWork - job.remainingWork;
                if (done_work > job.checkpointedWork) {
                    const double lost =
                        done_work - job.checkpointedWork;
                    metrics.workLostSeconds += lost;
                    job.remainingWork =
                        job.totalWork - job.checkpointedWork;
                    if (auto *sink = obs::traceSink()) {
                        obs::TraceEvent(*sink,
                                        "checkpoint_rollback")
                            .field("epoch", epoch)
                            .field("user", job.user)
                            .field("server", j)
                            .field("lost_work", lost);
                    }
                }
                job.epochsSinceCheckpoint = 0;
                placer.jobFinished(j);
                if (placer.anyLive()) {
                    job.server = placer.place();
                    ++metrics.replacements;
                } else {
                    job.server = OnlineJob::kUnplaced;
                }
            }
        }
    };

    // 0.7 Admission cap for this epoch, against the servers that
    //     are actually live, and a FIFO drain of the wait queue —
    //     jobs that waited are admitted before this epoch's
    //     arrivals compete for the remaining headroom.
    double admit_cap = 0.0;
    if (admission) {
        int live_servers = 0;
        for (char l : live)
            live_servers += l ? 1 : 0;
        admit_cap = opts_.admission.maxLoadFactor *
                    static_cast<double>(live_servers);
        while (!wait_queue.empty() &&
               static_cast<double>(in_flight) < admit_cap &&
               placer.anyLive()) {
            OnlineJob job = wait_queue.front();
            wait_queue.pop_front();
            job.server = placer.place();
            queue_delay_sum += now - job.arrivalSeconds;
            if (auto *sink = obs::traceSink()) {
                obs::TraceEvent(*sink, "admission")
                    .field("epoch", epoch)
                    .field("action", "admit_from_queue")
                    .field("user", job.user)
                    .field("wait_seconds",
                           now - job.arrivalSeconds)
                    .field("queue_len", wait_queue.size());
            }
            jobs.push_back(job);
            ++in_flight;
        }
    }

    // 1. Arrivals: a Poisson batch for the whole cluster, placed
    //    by the configured discipline. The batch itself (count,
    //    users, workloads, work sizes) is identical across runs
    //    with the same seed — admission control only decides what
    //    happens *after* a job is drawn, so enabling it (or
    //    changing the load factor) never shifts the stream.
    const int count = rng.poisson(opts_.arrivalsPerServerEpoch *
                                  opts_.servers);
    for (int a = 0; a < count; ++a) {
        OnlineJob job;
        job.user = static_cast<std::size_t>(
            rng.uniformInt(0, opts_.users - 1));
        job.workloadIndex =
            static_cast<std::size_t>(rng.uniformInt(
                0,
                static_cast<std::int64_t>(library.size()) - 1));
        job.arrivalSeconds = now;
        const double t1 =
            cache_.fullDatasetSeconds(job.workloadIndex, 1);
        job.totalWork = t1 * rng.uniform(opts_.workScaleMin,
                                         opts_.workScaleMax);
        job.remainingWork = job.totalWork;
        ++metrics.jobsArrived;
        auto trace_arrival = [&](const char *action) {
            if (auto *sink = obs::traceSink()) {
                obs::TraceEvent(*sink, "admission")
                    .field("epoch", epoch)
                    .field("action", action)
                    .field("user", job.user)
                    .field("workload", job.workloadIndex)
                    .field("work", job.totalWork);
            }
        };
        if (!admission) {
            if (faulty && !placer.anyLive())
                job.server = OnlineJob::kUnplaced;
            else
                job.server = placer.place();
            trace_arrival(job.unplaced() ? "park" : "admit");
            jobs.push_back(job);
            ++in_flight;
        } else if (static_cast<double>(in_flight) < admit_cap &&
                   (!faulty || placer.anyLive())) {
            job.server = placer.place();
            trace_arrival("admit");
            jobs.push_back(job);
            ++in_flight;
        } else {
            // Backpressure: over-cap arrivals wait. A full queue
            // sheds one job — the earliest lowest-budget one under
            // entitlement shedding, the arrival itself under tail
            // drop.
            wait_queue.push_back(job);
            ++metrics.jobsQueued;
            trace_arrival("queue");
            if (wait_queue.size() >
                static_cast<std::size_t>(
                    opts_.admission.maxQueueLength)) {
                std::size_t victim = wait_queue.size() - 1;
                if (opts_.admission.shedByEntitlement) {
                    for (std::size_t q = 0; q < wait_queue.size();
                         ++q) {
                        if (budgets[wait_queue[q].user] <
                            budgets[wait_queue[victim].user]) {
                            victim = q;
                        }
                    }
                }
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "admission")
                        .field("epoch", epoch)
                        .field("action", "shed")
                        .field("user", wait_queue[victim].user)
                        .field("queue_len",
                               wait_queue.size() - 1);
                }
                wait_queue.erase(
                    wait_queue.begin() +
                    static_cast<std::ptrdiff_t>(victim));
                ++metrics.jobsShed;
            }
            metrics.peakQueueLength = std::max(
                metrics.peakQueueLength,
                static_cast<int>(wait_queue.size()));
        }
    }

    // 2. Build the market over placed in-flight jobs. Idle or
    //    crashed servers and jobless tenants are excluded from
    //    this epoch's market.
    std::vector<std::size_t> active;
    std::size_t in_system = 0;
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        if (jobs[k].done())
            continue;
        ++in_system;
        if (!jobs[k].unplaced())
            active.push_back(k);
    }
    occupancy.add(static_cast<double>(in_system));
    metrics.occupancyHistory.push_back(
        static_cast<double>(in_system));
    if (active.empty()) {
        metrics.speedupHistory.push_back(0.0);
        apply_crashes();
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "epoch_end")
                .field("epoch", epoch)
                .field("in_system", in_system)
                .field("idle", true);
        }
        emitEpochSpan(true);
        save_back();
        return;
    }

    std::vector<int> server_map(
        static_cast<std::size_t>(opts_.servers), -1);
    std::vector<double> capacities;
    for (std::size_t k : active) {
        AMDAHL_ASSERT(live[jobs[k].server],
                      "job placed on a dead server at epoch ",
                      epoch);
        auto &slot = server_map[jobs[k].server];
        if (slot < 0) {
            slot = static_cast<int>(capacities.size());
            capacities.push_back(static_cast<double>(
                coresOf(opts_, jobs[k].server)));
        }
    }

    std::vector<int> user_map(static_cast<std::size_t>(opts_.users),
                              -1);
    std::vector<core::MarketUser> market_users;
    std::vector<std::vector<std::size_t>> user_job_ids;
    for (std::size_t k : active) {
        auto &slot = user_map[jobs[k].user];
        if (slot < 0) {
            slot = static_cast<int>(market_users.size());
            core::MarketUser user;
            user.name = "tenant" + std::to_string(jobs[k].user);
            user.budget = budgets[jobs[k].user];
            if (opts_.deficitCompensation &&
                granted[jobs[k].user] > 0.0) {
                const double boost = std::clamp(
                    entitled[jobs[k].user] /
                        granted[jobs[k].user],
                    1.0, opts_.maxCompensation);
                user.budget *= boost;
            }
            market_users.push_back(std::move(user));
            user_job_ids.emplace_back();
        }
        core::JobSpec spec;
        spec.server = static_cast<std::size_t>(
            server_map[jobs[k].server]);
        double fraction =
            cache_.fraction(jobs[k].workloadIndex, source);
        if (faulty) {
            // Stale profiles: the market prices tomorrow's cores
            // with yesterday's estimates.
            fraction = injector.perturbFraction(
                epoch, jobs[k].workloadIndex, fraction);
        }
        spec.parallelFraction = fraction;
        spec.weight = 1.0;
        market_users[static_cast<std::size_t>(slot)]
            .jobs.push_back(spec);
        user_job_ids[static_cast<std::size_t>(slot)].push_back(k);
    }

    core::FisherMarket market(capacities);
    for (auto &user : market_users)
        market.addUser(std::move(user));

    core::BidTransportFaults transport;
    if (faulty) {
        transport.lossRate = opts_.faults.bidLossRate;
        transport.seed = injector.bidSeed(epoch);
    }

    // Delta re-clearing: seed this epoch's bids from the previous
    // equilibrium. Surviving jobs restart at their last-cleared bid,
    // new jobs at an even split of their tenant's (possibly
    // compensated) budget; a cold start, or churn above the
    // threshold, falls back to the analytic mean-field seed. The
    // solver renormalizes and floors whatever seed it is given, so
    // this is a trajectory hint, never a feasibility obligation.
    const bool delta = opts_.delta.enabled();
    core::JobMatrix warm;
    if (delta && opts_.delta.warmStartBids) {
        std::size_t warm_jobs = 0;
        std::size_t total_jobs = 0;
        warm.resize(user_job_ids.size());
        for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
            warm[ui].assign(user_job_ids[ui].size(), -1.0);
            for (std::size_t kk = 0; kk < user_job_ids[ui].size();
                 ++kk) {
                const std::size_t k = user_job_ids[ui][kk];
                if (k < s.lastBids.size() && s.lastBids[k] >= 0.0) {
                    warm[ui][kk] = s.lastBids[k];
                    ++warm_jobs;
                }
                ++total_jobs;
            }
        }
        const double churn =
            1.0 - static_cast<double>(warm_jobs) /
                      static_cast<double>(total_jobs);
        if (warm_jobs == 0 || churn > opts_.delta.maxChurnFraction) {
            warm = core::meanFieldSeedBids(market);
            obs::metrics()
                .counter("online.delta.meanfield_epochs")
                .add();
        } else {
            for (auto ui = std::size_t{0}; ui < warm.size(); ++ui) {
                const double even =
                    market.user(ui).budget /
                    static_cast<double>(warm[ui].size());
                for (double &b : warm[ui]) {
                    if (b < 0.0)
                        b = even;
                }
            }
            obs::metrics().counter("online.delta.warm_epochs").add();
        }
    }

    const auto result = [&] {
        if (opts_.net.enabled() || delta) {
            // Sharded clearing over the simulated network (the
            // transport session rides in the run state so recovery
            // resumes on the same network timeline), and/or the delta
            // re-clearing plumbing. The kernel cache lives in the run
            // state but is never serialized: a recovered run rebuilds
            // it and stays on the original's trajectory.
            core::ClearingContext ctx;
            ctx.transport = transport;
            if (opts_.net.enabled()) {
                ctx.sharding = &opts_.net;
                ctx.session = &s.net;
            }
            if (!warm.empty())
                ctx.initialBids = &warm;
            if (opts_.delta.reuseKernel) {
                if (!s.kernelCache) {
                    s.kernelCache =
                        std::make_shared<core::KernelCache>();
                }
                ctx.kernelCache = s.kernelCache.get();
            }
            return policy.allocate(market, ctx);
        }
        return faulty ? policy.allocate(market, transport)
                      : policy.allocate(market);
    }();

    // Record the equilibrium bids for the next epoch's warm start.
    // Shape-guarded: fallback rungs (proportional share) and
    // non-market policies publish no bids — those epochs leave the
    // previous record standing rather than poisoning it.
    if (delta) {
        const auto &bids = result.outcome.bids;
        bool shaped = bids.size() == user_job_ids.size();
        for (std::size_t ui = 0; shaped && ui < bids.size(); ++ui)
            shaped = bids[ui].size() == user_job_ids[ui].size();
        if (shaped) {
            s.lastBids.assign(jobs.size(), -1.0);
            for (std::size_t ui = 0; ui < user_job_ids.size();
                 ++ui) {
                for (std::size_t kk = 0;
                     kk < user_job_ids[ui].size(); ++kk) {
                    s.lastBids[user_job_ids[ui][kk]] =
                        bids[ui][kk];
                }
            }
        }
    }
    metrics.netDegradedRounds += result.outcome.net.degradedRounds;
    metrics.netStaleBidRounds += result.outcome.net.staleBidRounds;
    metrics.netRetransmits += result.outcome.net.retransmits;
    if (result.outcome.net.quorumCollapsed)
        ++metrics.netQuorumCollapses;

    // Degraded-mode bookkeeping: count epochs the primary
    // procedure failed and which ladder rung served them. A
    // rate-limited warning keeps non-convergence caller-visible
    // without flooding long runs.
    if (result.mode == alloc::ServeMode::DampedRetry)
        ++metrics.fallbackEpochsDamped;
    else if (result.mode == alloc::ServeMode::ProportionalFallback)
        ++metrics.fallbackEpochsProportional;
    else if (result.mode == alloc::ServeMode::DeadlineAnytime)
        ++metrics.fallbackEpochsDeadline;
    if (result.outcome.deadlineExpired)
        ++metrics.deadlineExpiredEpochs;
    const bool primary_failed =
        result.mode != alloc::ServeMode::Primary ||
        (result.outcome.iterations > 0 &&
         !result.outcome.converged);
    if (primary_failed) {
        ++metrics.nonConvergedEpochs;
        if (metrics.nonConvergedEpochs == 1 ||
            metrics.nonConvergedEpochs % 64 == 0) {
            warn(metrics.policyName, ": bidding did not converge ",
                 "at epoch ", epoch, " (",
                 result.outcome.iterations,
                 " iterations; served by ",
                 alloc::toString(result.mode),
                 "; ", metrics.nonConvergedEpochs,
                 " non-converged epochs so far)");
        }
    }

    // Contract: an epoch's integral grants never exceed the live
    // capacity — crashed servers' cores must be out of the market.
    if constexpr (checkedBuild) {
        double total_cores = 0.0;
        for (const auto &row : result.cores) {
            for (int c : row)
                total_cores += static_cast<double>(c);
        }
        double live_capacity = 0.0;
        for (int j = 0; j < opts_.servers; ++j) {
            if (live[static_cast<std::size_t>(j)]) {
                live_capacity += static_cast<double>(
                    coresOf(opts_, static_cast<std::size_t>(j)));
            }
        }
        AMDAHL_ASSERT(total_cores <= live_capacity + 1e-9,
                      "epoch ", epoch, " granted ", total_cores,
                      " cores with only ", live_capacity, " live");
    }

    // Core-second accounting against *base* budgets: the
    // entitlement contract does not move with compensation.
    {
        double active_budget = 0.0;
        double active_capacity = 0.0;
        for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
            active_budget +=
                budgets[jobs[user_job_ids[ui][0]].user];
        }
        for (double c : capacities)
            active_capacity += c;
        double live_capacity = 0.0;
        for (int j = 0; j < opts_.servers; ++j) {
            if (live[static_cast<std::size_t>(j)]) {
                live_capacity += static_cast<double>(
                    coresOf(opts_, static_cast<std::size_t>(j)));
            }
        }
        for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
            const std::size_t tenant =
                jobs[user_job_ids[ui][0]].user;
            entitled[tenant] += budgets[tenant] / active_budget *
                                active_capacity *
                                opts_.epochSeconds;
            entitled_avail[tenant] +=
                budgets[tenant] / active_budget * live_capacity *
                opts_.epochSeconds;
            granted[tenant] +=
                result.userCores(ui) * opts_.epochSeconds;
        }
    }

    // Feed the placer its congestion signal for the next epoch:
    // equilibrium prices where the policy publishes them (idle
    // servers are free), current loads otherwise.
    {
        std::vector<double> signal(
            static_cast<std::size_t>(opts_.servers), 0.0);
        const bool has_prices =
            result.outcome.prices.size() == capacities.size();
        for (int j = 0; j < opts_.servers; ++j) {
            const int slot = server_map[static_cast<std::size_t>(j)];
            if (has_prices && slot >= 0) {
                signal[static_cast<std::size_t>(j)] =
                    result.outcome
                        .prices[static_cast<std::size_t>(slot)];
            } else if (!has_prices) {
                signal[static_cast<std::size_t>(j)] =
                    static_cast<double>(placer.load(
                        static_cast<std::size_t>(j)));
            }
        }
        placer.updatePrices(signal);
    }

    // 3. Advance jobs by their measured speedups. Jobs on a
    //    server that fails during this epoch make no durable
    //    progress: the crash takes their epoch with it.
    double epoch_speedup = 0.0;
    double budget_sum = 0.0;
    for (std::size_t ui = 0; ui < user_job_ids.size(); ++ui) {
        double user_progress = 0.0;
        for (std::size_t kk = 0; kk < user_job_ids[ui].size();
             ++kk) {
            const std::size_t k = user_job_ids[ui][kk];
            auto &job = jobs[k];
            if (faulty && crashing[job.server])
                continue;
            const int cores = result.cores[ui][kk];
            if (cores <= 0)
                continue;
            const double t1 =
                cache_.fullDatasetSeconds(job.workloadIndex, 1);
            const double tx =
                cache_.fullDatasetSeconds(job.workloadIndex,
                                          cores);
            const double rate = t1 / tx; // measured speedup
            user_progress += rate;
            const double done_work =
                rate * opts_.epochSeconds;
            if (done_work >= job.remainingWork) {
                const double used =
                    job.remainingWork / rate;
                job.completionSeconds = now + used;
                job.remainingWork = 0.0;
                ++metrics.jobsCompleted;
                --in_flight;
                placer.jobFinished(job.server);
            } else {
                job.remainingWork -= done_work;
            }
        }
        const double b = market.user(ui).budget;
        epoch_speedup +=
            b * user_progress /
            static_cast<double>(user_job_ids[ui].size());
        budget_sum += b;
    }
    if (budget_sum > 0.0) {
        weighted_speedup.add(epoch_speedup / budget_sum);
        metrics.speedupHistory.push_back(epoch_speedup /
                                         budget_sum);
    } else {
        metrics.speedupHistory.push_back(0.0);
    }

    apply_crashes();

    // 4. Checkpoint tick: durable progress advances every
    //    checkpointEpochs epochs, bounding what the next crash
    //    can take.
    if (faulty) {
        for (auto &job : jobs) {
            if (job.done() || job.unplaced())
                continue;
            ++job.epochsSinceCheckpoint;
            if (job.epochsSinceCheckpoint >=
                opts_.faults.checkpointEpochs) {
                job.checkpointedWork =
                    job.totalWork - job.remainingWork;
                job.epochsSinceCheckpoint = 0;
            }
        }
    }

    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "epoch_end")
            .field("epoch", epoch)
            .field("in_system", in_system)
            .field("idle", false)
            .field("mode", alloc::toString(result.mode))
            .field("weighted_speedup",
                   metrics.speedupHistory.back())
            .field("jobs_completed", metrics.jobsCompleted);
    }
    emitEpochSpan(false);
    save_back();
}

OnlineMetrics
OnlineSimulator::finalize(const OnlineRunState &s) const
{
    OnlineMetrics metrics = s.metrics;

    // 5. Aggregate metrics.
    std::vector<double> completions;
    for (const auto &job : s.jobs) {
        if (job.done()) {
            metrics.workCompleted += job.totalWork;
            completions.push_back(job.completionSeconds -
                                  job.arrivalSeconds);
        } else {
            metrics.workCompleted +=
                job.totalWork - job.remainingWork;
        }
    }
    if (!completions.empty()) {
        metrics.meanCompletionSeconds = mean(completions);
        metrics.p95CompletionSeconds = quantile(completions, 0.95);
    }
    metrics.meanJobsInSystem =
        OnlineStats::fromState(s.occupancy).mean();
    metrics.meanWeightedSpeedup =
        OnlineStats::fromState(s.weightedSpeedup).mean();

    double mape = 0.0;
    double mape_avail = 0.0;
    std::size_t ever_active = 0;
    for (std::size_t i = 0; i < s.entitled.size(); ++i) {
        if (s.entitled[i] <= 0.0)
            continue;
        mape += std::abs(s.granted[i] - s.entitled[i]) / s.entitled[i];
        if (s.entitledAvail[i] > 0.0) {
            mape_avail +=
                std::abs(s.granted[i] - s.entitledAvail[i]) /
                s.entitledAvail[i];
        }
        ++ever_active;
    }
    if (ever_active > 0) {
        metrics.longRunEntitlementMape =
            100.0 * mape / static_cast<double>(ever_active);
        metrics.availabilityWeightedEntitlementMape =
            100.0 * mape_avail / static_cast<double>(ever_active);
    }

    metrics.jobsQueuedAtHorizon =
        static_cast<int>(s.waitQueue.size());
    if (metrics.jobsArrived > 0) {
        metrics.sheddingRate =
            static_cast<double>(metrics.jobsShed) /
            static_cast<double>(metrics.jobsArrived);
    }
    if (!s.jobs.empty()) {
        metrics.meanQueueDelaySeconds =
            s.queueDelaySum / static_cast<double>(s.jobs.size());
    }

    {
        auto &reg = obs::metrics();
        reg.counter("online.runs").add();
        reg.counter("online.epochs")
            .add(static_cast<std::uint64_t>(s.epoch));
        reg.counter("online.jobs_arrived")
            .add(static_cast<std::uint64_t>(metrics.jobsArrived));
        reg.counter("online.jobs_completed")
            .add(static_cast<std::uint64_t>(metrics.jobsCompleted));
        reg.counter("online.jobs_shed")
            .add(static_cast<std::uint64_t>(metrics.jobsShed));
        reg.counter("online.crash_events")
            .add(static_cast<std::uint64_t>(metrics.crashEvents));
    }
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "run_end")
            .field("policy", metrics.policyName)
            .field("jobs_arrived", metrics.jobsArrived)
            .field("jobs_completed", metrics.jobsCompleted)
            .field("jobs_shed", metrics.jobsShed)
            .field("non_converged_epochs", metrics.nonConvergedEpochs)
            .field("deadline_expired_epochs",
                   metrics.deadlineExpiredEpochs);
        // A flush failure latches into sink->status(); the CLI
        // surfaces it at exit, where the destination path is known.
        (void)sink->flush();
    }
    metrics.metricsSnapshot = obs::metrics().snapshot();

    metrics.jobs = s.jobs;
    return metrics;
}

OnlineMetrics
OnlineSimulator::run(const alloc::AllocationPolicy &policy,
                     FractionSource source)
{
    OnlineRunState state = initState(policy);
    emitRunStart(opts_, state.metrics.policyName);

    const int epochs = epochCount();
    const robustness::FaultInjector injector(
        opts_.faults, static_cast<std::size_t>(opts_.servers), epochs);
    while (state.epoch < epochs)
        runEpoch(state, policy, source, injector);
    return finalize(state);
}

Result<OnlineMetrics>
OnlineSimulator::runDurable(const alloc::AllocationPolicy &policy,
                            FractionSource source,
                            durability::DurableStateStore &store,
                            const durability::RecoveredState *resume)
{
    const int epochs = epochCount();

    OnlineRunState state;
    // Constructed only after run_start is emitted (fresh) or under
    // trace suppression (resume): building the schedule emits
    // fault_schedule events, which must land exactly where an
    // uninterrupted run puts them.
    std::optional<robustness::FaultInjector> injector;
    bool completed_on_disk = false;
    int replayed = 0;
    std::uint64_t frontier = 0;
    const bool resuming =
        resume != nullptr &&
        (resume->hasSnapshot || !resume->entries.empty());

    if (resuming) {
        frontier = resume->frontierEpoch();
        if (resume->hasSnapshot) {
            auto envelope = durability::decodeSnapshotEnvelope(
                resume->snapshotPayload);
            if (!envelope.ok())
                return envelope.status();
            completed_on_disk = envelope.value().completed;
            auto decoded = decodeOnlineState(envelope.value().state,
                                             opts_, policy.name());
            if (!decoded.ok())
                return decoded.status();
            state = decoded.take();
        } else {
            // Crash before the first snapshot: replay from epoch 0.
            state = initState(policy);
        }

        // Re-execute the journaled epochs with trace emission
        // suppressed (their events are already durable in the trace
        // file), proving each one reproduces exactly what the crashed
        // process committed. Determinism is the redo log; the digest
        // is its proof obligation.
        obs::TraceSink *saved = obs::setTraceSink(nullptr);
        injector.emplace(opts_.faults,
                         static_cast<std::size_t>(opts_.servers),
                         epochs);
        for (const durability::JournalEntry &entry : resume->entries) {
            if (entry.epoch !=
                static_cast<std::uint64_t>(state.epoch) + 1) {
                obs::setTraceSink(saved);
                return Status::error(
                    ErrorKind::SemanticError, 0,
                    "journal entry for epoch ", entry.epoch,
                    " does not continue the snapshot state at epoch ",
                    state.epoch);
            }
            runEpoch(state, policy, source, *injector);
            const std::uint32_t digest =
                crc32(encodeOnlineState(state, opts_));
            if (digest != entry.eventCrc) {
                obs::setTraceSink(saved);
                return Status::error(
                    ErrorKind::SemanticError, 0,
                    "replay divergence at epoch ", entry.epoch,
                    ": journaled state digest ", entry.eventCrc,
                    ", replay produced ", digest,
                    " (option, version, or determinism skew)");
            }
            ++replayed;
        }
        obs::setTraceSink(saved);
        if (Status st = store.beginResume(*resume); !st.isOk())
            return st;
    } else {
        state = initState(policy);
        if (Status st = store.beginFresh(); !st.isOk())
            return st;
        emitRunStart(opts_, state.metrics.policyName);
        injector.emplace(opts_.faults,
                         static_cast<std::size_t>(opts_.servers),
                         epochs);
    }

    while (state.epoch < epochs) {
        runEpoch(state, policy, source, *injector);

        // WAL rule: the trace bytes an entry claims as durable must be
        // in the file before the entry itself commits.
        auto *sink = obs::traceSink();
        if (sink)
            (void)sink->flush();

        durability::JournalEntry entry;
        entry.epoch = static_cast<std::uint64_t>(state.epoch);
        const std::string encoded = encodeOnlineState(state, opts_);
        entry.eventCrc = crc32(encoded);
        entry.traceBytes = sink ? sink->bytesWritten() : 0;
        entry.traceSeq = sink ? sink->currentSeq() : 0;
        durability::OnlineSnapshotEnvelope env;
        env.traceBytes = entry.traceBytes;
        env.traceSeq = entry.traceSeq;
        if (Status st = store.commitEpoch(entry, [&] {
                env.state = encoded;
                return durability::encodeSnapshotEnvelope(env);
            });
            !st.isOk())
            return st;
    }

    // A run that already finished on disk has its run_end event in the
    // durable trace; recompute the aggregates without emitting it
    // twice.
    OnlineMetrics metrics;
    if (completed_on_disk) {
        obs::TraceSink *saved = obs::setTraceSink(nullptr);
        metrics = finalize(state);
        obs::setTraceSink(saved);
    } else {
        metrics = finalize(state);
    }

    auto *sink = obs::traceSink();
    if (sink)
        (void)sink->flush();
    durability::OnlineSnapshotEnvelope final_env;
    final_env.completed = true;
    final_env.traceBytes = sink ? sink->bytesWritten() : 0;
    final_env.traceSeq = sink ? sink->currentSeq() : 0;
    if (Status st = store.finishRun(
            static_cast<std::uint64_t>(epochs),
            [&] {
                final_env.state = encodeOnlineState(state, opts_);
                return durability::encodeSnapshotEnvelope(final_env);
            });
        !st.isOk())
        return st;

    const durability::DurabilityCounters &counters = store.counters();
    metrics.recovered = resuming;
    metrics.recoveryReplayedEpochs = replayed;
    metrics.recoveryFrontierEpoch = frontier;
    metrics.journalCommits = counters.journalAppends;
    metrics.snapshotsWritten = counters.snapshotsWritten;
    metrics.ioRetries = counters.ioRetries;
    metrics.ioInjectedFaults = counters.injectedFaults;
    metrics.ioBackoffUnits = counters.backoffUnits;
    {
        auto &reg = obs::metrics();
        reg.counter("durability.journal_commits")
            .add(counters.journalAppends);
        reg.counter("durability.snapshots_written")
            .add(counters.snapshotsWritten);
        reg.counter("durability.io_retries").add(counters.ioRetries);
        reg.counter("durability.io_injected_faults")
            .add(counters.injectedFaults);
        reg.counter("durability.replayed_epochs")
            .add(static_cast<std::uint64_t>(replayed));
        if (resuming)
            reg.counter("durability.recoveries").add();
    }
    metrics.metricsSnapshot = obs::metrics().snapshot();
    return metrics;
}

} // namespace amdahl::eval
