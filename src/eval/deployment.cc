#include "deployment.hh"

#include "common/logging.hh"

namespace amdahl::eval {

DeploymentModel::DeploymentModel(DeploymentCosts costs) : costs_(costs)
{
    if (costs_.userBidUpdateMs < 0.0 || costs_.priceUpdateMs < 0.0 ||
        costs_.networkRttMinMs < 0.0 || costs_.receiveBidsMs < 0.0 ||
        costs_.roundingMs < 0.0) {
        fatal("deployment costs must be non-negative");
    }
    if (costs_.networkRttMaxMs < costs_.networkRttMinMs)
        fatal("network RTT range inverted");
    if (costs_.bestResponseMultiplier < 1.0)
        fatal("BR multiplier must be >= 1");
}

LatencyBreakdown
DeploymentModel::latency(int iterations, int users,
                         Architecture architecture,
                         Mechanism mechanism) const
{
    if (iterations < 1)
        fatal("need at least one iteration");
    if (users < 1)
        fatal("need at least one user");

    double update = costs_.userBidUpdateMs;
    if (mechanism == Mechanism::BestResponse)
        update *= costs_.bestResponseMultiplier;

    LatencyBreakdown breakdown;
    if (architecture == Architecture::Distributed) {
        // Users bid in parallel; the network round trip is paid every
        // iteration (mean of the measured RTT range).
        const double rtt =
            0.5 * (costs_.networkRttMinMs + costs_.networkRttMaxMs);
        breakdown.bidUpdatesMs = iterations * update;
        breakdown.networkMs = iterations * rtt;
    } else {
        // The coordinator computes all users' bids itself: updates
        // serialize, and there is no per-iteration network.
        breakdown.bidUpdatesMs = iterations * update * users;
        breakdown.networkMs = 0.0;
    }
    breakdown.priceUpdatesMs = iterations * costs_.priceUpdateMs;
    breakdown.finalizationMs =
        costs_.receiveBidsMs + costs_.roundingMs;
    return breakdown;
}

double
DeploymentModel::totalMs(int iterations, int users,
                         Architecture architecture,
                         Mechanism mechanism) const
{
    return latency(iterations, users, architecture, mechanism).totalMs();
}

} // namespace amdahl::eval
