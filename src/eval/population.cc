#include "population.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "exec/thread_pool.hh"

namespace amdahl::eval {

std::size_t
Population::jobCount() const
{
    std::size_t total = 0;
    for (const auto &jobs : userJobs)
        total += jobs.size();
    return total;
}

int
Population::coresOf(std::size_t j) const
{
    if (j >= serverCount)
        fatal("server index ", j, " out of range");
    if (serverCores.empty())
        return coresPerServer;
    return serverCores[j];
}

double
Population::totalCores() const
{
    double total = 0.0;
    for (std::size_t j = 0; j < serverCount; ++j)
        total += coresOf(j);
    return total;
}

int
Population::entitlementClass(std::size_t i) const
{
    if (i >= budgets.size())
        fatal("user index ", i, " out of range");
    return static_cast<int>(std::llround(budgets[i]));
}

Population
generatePopulation(Rng &rng, const PopulationOptions &opts)
{
    if (opts.users < 1)
        fatal("population needs at least one user");
    if (opts.serverMultiplier <= 0.0)
        fatal("server multiplier must be positive");
    if (opts.density < 1)
        fatal("density must be at least 1");
    if (opts.coresPerServer < 1)
        fatal("servers need at least one core");
    if (opts.minBudget < 1 || opts.maxBudget < opts.minBudget)
        fatal("invalid budget class range");
    if (opts.workloadCount == 0)
        fatal("need at least one workload to draw from");

    Population pop;
    pop.coresPerServer = opts.coresPerServer;
    pop.serverCount = static_cast<std::size_t>(
        std::ceil(opts.serverMultiplier * opts.users));
    if (pop.serverCount == 0)
        pop.serverCount = 1;

    if (!opts.coreChoices.empty()) {
        for (int c : opts.coreChoices) {
            if (c < 1)
                fatal("core choices must be positive");
        }
        pop.serverCores.resize(pop.serverCount);
        for (auto &cores : pop.serverCores) {
            cores = opts.coreChoices[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   opts.coreChoices.size()) -
                                   1))];
        }
    }

    pop.budgets.resize(opts.users);
    for (auto &budget : pop.budgets) {
        budget = static_cast<double>(
            rng.uniformInt(opts.minBudget, opts.maxBudget));
    }
    pop.userJobs.resize(opts.users);

    // Per server: draw the job count from {ceil(d/2), ..., d}, then a
    // benchmark and a user for each job.
    std::vector<int> server_jobs(pop.serverCount, 0);
    const int lo = std::max(1, (opts.density + 1) / 2);
    for (std::size_t j = 0; j < pop.serverCount; ++j) {
        const int count =
            static_cast<int>(rng.uniformInt(lo, opts.density));
        server_jobs[j] = count;
        for (int c = 0; c < count; ++c) {
            PopulationJob job;
            job.server = j;
            job.workloadIndex = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(opts.workloadCount) - 1));
            const auto owner = static_cast<std::size_t>(
                rng.uniformInt(0, opts.users - 1));
            pop.userJobs[owner].push_back(job);
        }
    }

    // Fix-up: every user runs at least one job. Prefer servers that are
    // still below their density cap.
    for (std::size_t i = 0; i < pop.userJobs.size(); ++i) {
        if (!pop.userJobs[i].empty())
            continue;
        std::vector<std::size_t> open;
        for (std::size_t j = 0; j < pop.serverCount; ++j) {
            if (server_jobs[j] < opts.density)
                open.push_back(j);
        }
        std::size_t target;
        if (!open.empty()) {
            target = open[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(open.size()) - 1))];
        } else {
            target = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(pop.serverCount) - 1));
        }
        PopulationJob job;
        job.server = target;
        job.workloadIndex = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(opts.workloadCount) - 1));
        pop.userJobs[i].push_back(job);
        ++server_jobs[target];
    }
    return pop;
}

std::vector<Population>
generatePopulations(std::uint64_t seed, const PopulationOptions &opts,
                    std::size_t count)
{
    std::vector<Population> pops(count);
    // Each population owns a substream-seeded generator, so slots can
    // fill in any order (and concurrently) without the realization
    // depending on the schedule. Grain 4: one population is a few
    // thousand draws — small enough to batch, big enough to matter.
    exec::parallelFor(0, count, 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
            Rng rng(substreamSeed(seed, p, 0));
            pops[p] = generatePopulation(rng, opts);
        }
    });
    return pops;
}

std::vector<int>
paperUserLadder()
{
    std::vector<int> ladder;
    for (int n = 40; n <= 1000; n += 80)
        ladder.push_back(n);
    return ladder;
}

std::vector<double>
paperServerMultipliers()
{
    return {0.25, 0.5, 1.0, 2.0, 4.0};
}

std::vector<int>
paperDensityLadder()
{
    return {4, 8, 12, 16, 20, 24};
}

} // namespace amdahl::eval
