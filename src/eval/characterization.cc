#include "characterization.hh"

#include "common/logging.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {

CharacterizationCache::CharacterizationCache(sim::TaskSimulator simulator)
    : sim_(std::move(simulator))
{}

const WorkloadCharacterization &
CharacterizationCache::of(std::size_t index)
{
    // Held across the characterization itself: a miss is filled once
    // even when several workers ask for the same workload at once.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = characterizations.find(index);
    if (it != characterizations.end())
        return it->second;

    const auto &library = sim::workloadLibrary();
    if (index >= library.size())
        fatal("workload index ", index, " out of range (", library.size(),
              ")");
    const auto &workload = library[index];

    profiling::Profiler profiler(sim_);

    WorkloadCharacterization record;
    record.name = workload.name;

    // Measured fraction: Karp-Flatt on the full dataset.
    const auto full_profile =
        profiler.profile(workload, {workload.datasetGB});
    record.measuredFraction =
        profiling::estimateFraction(full_profile, workload.datasetGB)
            .expected;
    record.t1Seconds = full_profile.secondsAt(workload.datasetGB, 1);

    // Estimated fraction: the sampled-dataset pipeline of Section IV.
    const auto plan = profiling::planSamples(workload);
    const auto sampled_profile =
        profiler.profile(workload, plan.sampleSizesGB);
    record.estimatedFraction =
        profiling::estimateFractionFromSamples(sampled_profile);

    return characterizations.emplace(index, std::move(record))
        .first->second;
}

double
CharacterizationCache::fraction(std::size_t index, FractionSource source)
{
    const auto &record = of(index);
    return source == FractionSource::Measured ? record.measuredFraction
                                              : record.estimatedFraction;
}

double
CharacterizationCache::fullDatasetSeconds(std::size_t index, int cores)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto key = std::make_pair(index, cores);
    const auto it = times.find(key);
    if (it != times.end())
        return it->second;

    const auto &library = sim::workloadLibrary();
    if (index >= library.size())
        fatal("workload index ", index, " out of range");
    const auto &workload = library[index];
    const double seconds =
        sim_.executionSeconds(workload, workload.datasetGB, cores);
    times.emplace(key, seconds);
    return seconds;
}

} // namespace amdahl::eval
