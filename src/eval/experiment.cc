#include "experiment.hh"

#include <cmath>
#include <memory>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/best_response.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "common/logging.hh"
#include "core/bidding.hh"
#include "core/entitlement.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {

core::FisherMarket
buildMarket(const Population &pop, CharacterizationCache &cache,
            FractionSource source)
{
    std::vector<double> capacities(pop.serverCount);
    for (std::size_t j = 0; j < pop.serverCount; ++j)
        capacities[j] = static_cast<double>(pop.coresOf(j));
    core::FisherMarket market(std::move(capacities));
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        core::MarketUser user;
        user.name = "user" + std::to_string(i);
        user.budget = pop.budgets[i];
        for (const auto &job : pop.userJobs[i]) {
            core::JobSpec spec;
            spec.server = job.server;
            spec.parallelFraction =
                cache.fraction(job.workloadIndex, source);
            spec.weight = 1.0;
            user.jobs.push_back(spec);
        }
        market.addUser(std::move(user));
    }
    return market;
}

ExperimentDriver::ExperimentDriver() : ExperimentDriver(Config()) {}

ExperimentDriver::ExperimentDriver(Config config)
    : cfg(config), cache_(), rng(config.seed)
{
    if (cfg.populationsPerPoint < 1)
        fatal("need at least one population per point");
}

Population
ExperimentDriver::nextPopulation(int density)
{
    return nextPopulation(cfg.users, cfg.serverMultiplier, density);
}

Population
ExperimentDriver::nextPopulation(int users, double multiplier, int density)
{
    PopulationOptions opts;
    opts.users = users;
    opts.serverMultiplier = multiplier;
    opts.density = density;
    opts.coresPerServer = cfg.coresPerServer;
    opts.workloadCount = sim::workloadLibrary().size();
    return generatePopulation(rng, opts);
}

DensitySweepRow
ExperimentDriver::runDensityPoint(int density)
{
    DensitySweepRow row;
    row.density = density;

    // The five mechanisms of Section VI-A. Oracle policies (G, UB) see
    // measured fractions; market policies (AB, BR) see the estimates
    // their deployments would actually have.
    struct Entry
    {
        std::unique_ptr<alloc::AllocationPolicy> policy;
        FractionSource source;
    };
    std::vector<Entry> entries;
    entries.push_back({std::make_unique<alloc::GreedyPolicy>(),
                       FractionSource::Measured});
    entries.push_back({std::make_unique<alloc::ProportionalShare>(),
                       FractionSource::Measured});
    entries.push_back({std::make_unique<alloc::AmdahlBiddingPolicy>(),
                       FractionSource::Estimated});
    if (cfg.includeBestResponse) {
        entries.push_back({std::make_unique<alloc::BestResponsePolicy>(),
                           FractionSource::Estimated});
    }
    entries.push_back({std::make_unique<alloc::UpperBoundPolicy>(),
                       FractionSource::Measured});
    for (const auto &entry : entries)
        row.policies.push_back(entry.policy->name());

    ProgressEvaluator evaluator(cache_);
    std::map<std::string, std::map<int, double>> class_sums;
    std::map<std::string, std::map<int, std::size_t>> class_counts;

    for (int p = 0; p < cfg.populationsPerPoint; ++p) {
        const Population pop = nextPopulation(density);
        const auto measured =
            buildMarket(pop, cache_, FractionSource::Measured);
        const auto estimated =
            buildMarket(pop, cache_, FractionSource::Estimated);

        for (const auto &entry : entries) {
            const auto &market =
                entry.source == FractionSource::Measured ? measured
                                                         : estimated;
            const auto result = entry.policy->allocate(market);
            auto &metrics = row.byPolicy[entry.policy->name()];

            metrics.sysProgress +=
                evaluator.systemProgress(pop, result.cores);
            metrics.meanIterations += result.outcome.iterations;

            // Entitlement MAPE over integral datacenter-wide cores.
            const auto entitled = core::entitledCoresPerUser(market);
            double mape = 0.0;
            for (std::size_t i = 0; i < pop.userCount(); ++i) {
                mape += std::abs(result.userCores(i) - entitled[i]) /
                        entitled[i];
            }
            metrics.mape +=
                100.0 * mape / static_cast<double>(pop.userCount());

            const auto progress =
                evaluator.allUserProgress(pop, result.cores);
            for (std::size_t i = 0; i < pop.userCount(); ++i) {
                const int cls = pop.entitlementClass(i);
                class_sums[entry.policy->name()][cls] += progress[i];
                class_counts[entry.policy->name()][cls] += 1;
            }
        }
    }

    const double pops = static_cast<double>(cfg.populationsPerPoint);
    for (auto &[name, metrics] : row.byPolicy) {
        metrics.sysProgress /= pops;
        metrics.mape /= pops;
        metrics.meanIterations /= pops;
        for (const auto &[cls, sum] : class_sums[name]) {
            metrics.classProgress[cls] =
                sum / static_cast<double>(class_counts[name][cls]);
        }
    }
    return row;
}

double
ExperimentDriver::runSensitivity(int density,
                                 std::pair<double, double> bucket,
                                 int trials)
{
    if (trials < 1)
        fatal("need at least one sensitivity trial");
    if (bucket.first < 0.0 || bucket.second < bucket.first ||
        bucket.second > 100.0) {
        fatal("invalid reduction bucket [", bucket.first, ", ",
              bucket.second, "]");
    }

    alloc::AmdahlBiddingPolicy ab;
    double mae_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
        const Population pop = nextPopulation(density);
        auto market = buildMarket(pop, cache_, FractionSource::Estimated);
        const auto baseline = ab.allocate(market);

        // Perturb one random user: contention lowers the effective
        // parallel fraction of *all* her jobs.
        const auto victim = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(pop.userCount()) - 1));
        const double reduction =
            rng.uniform(bucket.first, bucket.second);

        core::FisherMarket adjusted(market.capacities());
        for (std::size_t i = 0; i < pop.userCount(); ++i) {
            core::MarketUser user = market.user(i);
            if (i == victim) {
                for (auto &job : user.jobs) {
                    job.parallelFraction *= 1.0 - reduction / 100.0;
                }
            }
            adjusted.addUser(std::move(user));
        }
        const auto perturbed = ab.allocate(adjusted);

        // MAE over the victim's per-job fractional allocations.
        double mae = 0.0;
        const auto &orig = baseline.outcome.allocation[victim];
        const auto &pert = perturbed.outcome.allocation[victim];
        for (std::size_t k = 0; k < orig.size(); ++k)
            mae += std::abs(orig[k] - pert[k]);
        mae_sum += mae / static_cast<double>(orig.size());
    }
    return mae_sum / static_cast<double>(trials);
}

ExperimentDriver::MisreportStudy
ExperimentDriver::runMisreport(int users, int density, double exaggeration,
                               int trials)
{
    if (trials < 1)
        fatal("need at least one misreport trial");
    if (exaggeration <= 0.0 || exaggeration > 1.0)
        fatal("exaggeration must be in (0, 1], got ", exaggeration);

    MisreportStudy study;
    alloc::AmdahlBiddingPolicy ab;
    for (int t = 0; t < trials; ++t) {
        const Population pop =
            nextPopulation(users, cfg.serverMultiplier, density);
        const auto market =
            buildMarket(pop, cache_, FractionSource::Estimated);
        const auto liar = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(pop.userCount()) - 1));

        // Truthful run, scored with the liar's true utility.
        const auto truthful = ab.allocate(market);
        const auto utility = market.utilityOf(liar);
        const double u_truth =
            utility.value(truthful.outcome.allocation[liar]);

        // Misreport: the liar claims most of her remaining
        // parallelism headroom on every job.
        core::FisherMarket shaded(market.capacities());
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            core::MarketUser user = market.user(i);
            if (i == liar) {
                for (auto &job : user.jobs) {
                    job.parallelFraction = std::min(
                        0.999, job.parallelFraction +
                                   exaggeration *
                                       (1.0 - job.parallelFraction));
                }
            }
            shaded.addUser(std::move(user));
        }
        const auto manipulated = ab.allocate(shaded);
        const double u_lie =
            utility.value(manipulated.outcome.allocation[liar]);

        const double gain = 100.0 * (u_lie - u_truth) / u_truth;
        study.meanTruthfulUtility += u_truth;
        study.meanMisreportUtility += u_lie;
        study.meanGainPercent += gain;
        study.maxGainPercent = std::max(study.maxGainPercent, gain);
    }
    const double scale = 1.0 / static_cast<double>(trials);
    study.meanTruthfulUtility *= scale;
    study.meanMisreportUtility *= scale;
    study.meanGainPercent *= scale;
    return study;
}

double
ExperimentDriver::meanBiddingIterations(int users, double server_multiplier,
                                        int density, int populations)
{
    if (populations < 1)
        fatal("need at least one population");
    double total = 0.0;
    for (int p = 0; p < populations; ++p) {
        const Population pop =
            nextPopulation(users, server_multiplier, density);
        const auto market =
            buildMarket(pop, cache_, FractionSource::Estimated);
        const auto result = core::solveAmdahlBidding(market);
        total += result.iterations;
    }
    return total / static_cast<double>(populations);
}

} // namespace amdahl::eval
