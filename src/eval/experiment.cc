#include "experiment.hh"

#include <cmath>
#include <memory>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/best_response.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "common/logging.hh"
#include "core/bidding.hh"
#include "core/entitlement.hh"
#include "exec/thread_pool.hh"
#include "obs/timer.hh"
#include "sim/workload_library.hh"

// Parallel-evaluation recipe used throughout this file: every
// stochastic input (populations, victim indices, perturbation draws)
// is pre-drawn *serially* from the driver's RNG in the exact legacy
// order, trials are then evaluated concurrently (they share only the
// mutexed characterization cache and the thread-safe metrics
// registry), and per-trial results are folded *serially* in trial
// order. Floating-point accumulation therefore associates exactly as
// the old sequential loops did — results are bit-identical at any
// thread count, including 1.

namespace amdahl::eval {

namespace {

/** One trial per chunk: trials are whole-market solves, far above any
 *  sensible grain. */
constexpr std::size_t kTrialGrain = 1;

} // namespace

core::FisherMarket
buildMarket(const Population &pop, CharacterizationCache &cache,
            FractionSource source)
{
    std::vector<double> capacities(pop.serverCount);
    for (std::size_t j = 0; j < pop.serverCount; ++j)
        capacities[j] = static_cast<double>(pop.coresOf(j));
    core::FisherMarket market(std::move(capacities));
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        core::MarketUser user;
        user.name = "user" + std::to_string(i);
        user.budget = pop.budgets[i];
        for (const auto &job : pop.userJobs[i]) {
            core::JobSpec spec;
            spec.server = job.server;
            spec.parallelFraction =
                cache.fraction(job.workloadIndex, source);
            spec.weight = 1.0;
            user.jobs.push_back(spec);
        }
        market.addUser(std::move(user));
    }
    return market;
}

ExperimentDriver::ExperimentDriver() : ExperimentDriver(Config()) {}

ExperimentDriver::ExperimentDriver(Config config)
    : cfg(config), cache_(), rng(config.seed)
{
    if (cfg.populationsPerPoint < 1)
        fatal("need at least one population per point");
}

Population
ExperimentDriver::nextPopulation(int density)
{
    return nextPopulation(cfg.users, cfg.serverMultiplier, density);
}

Population
ExperimentDriver::nextPopulation(int users, double multiplier, int density)
{
    PopulationOptions opts;
    opts.users = users;
    opts.serverMultiplier = multiplier;
    opts.density = density;
    opts.coresPerServer = cfg.coresPerServer;
    opts.workloadCount = sim::workloadLibrary().size();
    return generatePopulation(rng, opts);
}

DensitySweepRow
ExperimentDriver::runDensityPoint(int density)
{
    DensitySweepRow row;
    row.density = density;

    // The five mechanisms of Section VI-A. Oracle policies (G, UB) see
    // measured fractions; market policies (AB, BR) see the estimates
    // their deployments would actually have.
    struct Entry
    {
        std::unique_ptr<alloc::AllocationPolicy> policy;
        FractionSource source;
    };
    std::vector<Entry> entries;
    entries.push_back({std::make_unique<alloc::GreedyPolicy>(),
                       FractionSource::Measured});
    entries.push_back({std::make_unique<alloc::ProportionalShare>(),
                       FractionSource::Measured});
    entries.push_back({std::make_unique<alloc::AmdahlBiddingPolicy>(),
                       FractionSource::Estimated});
    if (cfg.includeBestResponse) {
        entries.push_back({std::make_unique<alloc::BestResponsePolicy>(),
                           FractionSource::Estimated});
    }
    entries.push_back({std::make_unique<alloc::UpperBoundPolicy>(),
                       FractionSource::Measured});
    for (const auto &entry : entries)
        row.policies.push_back(entry.policy->name());

    ProgressEvaluator evaluator(cache_);
    std::map<std::string, std::map<int, double>> class_sums;
    std::map<std::string, std::map<int, std::size_t>> class_counts;

    // Pre-draw every population serially: the RNG stream advances in
    // the exact legacy order regardless of the thread count.
    const auto pop_count =
        static_cast<std::size_t>(cfg.populationsPerPoint);
    std::vector<Population> pops;
    pops.reserve(pop_count);
    for (std::size_t p = 0; p < pop_count; ++p)
        pops.push_back(nextPopulation(density));

    // Evaluate trials concurrently; one record per (trial, policy).
    struct EntryEval
    {
        double sysProgress = 0.0;
        int iterations = 0;
        double mape = 0.0;
        std::vector<double> progress; // per user
    };
    std::vector<std::vector<EntryEval>> evals(pop_count);

    obs::ScopedTimer point_timer(
        obs::timeHistogram("time.eval.density_point_us"));
    exec::parallelFor(
        0, pop_count, kTrialGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = lo; p < hi; ++p) {
                const Population &pop = pops[p];
                const auto measured =
                    buildMarket(pop, cache_, FractionSource::Measured);
                const auto estimated = buildMarket(
                    pop, cache_, FractionSource::Estimated);

                evals[p].resize(entries.size());
                for (std::size_t e = 0; e < entries.size(); ++e) {
                    const auto &entry = entries[e];
                    const auto &market =
                        entry.source == FractionSource::Measured
                            ? measured
                            : estimated;
                    const auto result = entry.policy->allocate(market);
                    EntryEval &ev = evals[p][e];

                    ev.sysProgress =
                        evaluator.systemProgress(pop, result.cores);
                    ev.iterations = result.outcome.iterations;

                    // Entitlement MAPE over integral datacenter-wide
                    // cores.
                    const auto entitled =
                        core::entitledCoresPerUser(market);
                    double mape = 0.0;
                    for (std::size_t i = 0; i < pop.userCount(); ++i) {
                        mape += std::abs(result.userCores(i) -
                                         entitled[i]) /
                                entitled[i];
                    }
                    ev.mape = 100.0 * mape /
                              static_cast<double>(pop.userCount());

                    ev.progress =
                        evaluator.allUserProgress(pop, result.cores);
                }
            }
        });

    // Fold in (trial, policy, user) order — the legacy accumulation
    // order, so the averaged sums are bit-identical to the serial run.
    for (std::size_t p = 0; p < pop_count; ++p) {
        const Population &pop = pops[p];
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const auto &name = entries[e].policy->name();
            const EntryEval &ev = evals[p][e];
            auto &metrics = row.byPolicy[name];
            metrics.sysProgress += ev.sysProgress;
            metrics.meanIterations += ev.iterations;
            metrics.mape += ev.mape;
            for (std::size_t i = 0; i < pop.userCount(); ++i) {
                const int cls = pop.entitlementClass(i);
                class_sums[name][cls] += ev.progress[i];
                class_counts[name][cls] += 1;
            }
        }
    }

    const double scale = static_cast<double>(cfg.populationsPerPoint);
    for (auto &[name, metrics] : row.byPolicy) {
        metrics.sysProgress /= scale;
        metrics.mape /= scale;
        metrics.meanIterations /= scale;
        for (const auto &[cls, sum] : class_sums[name]) {
            metrics.classProgress[cls] =
                sum / static_cast<double>(class_counts[name][cls]);
        }
    }
    return row;
}

double
ExperimentDriver::runSensitivity(int density,
                                 std::pair<double, double> bucket,
                                 int trials)
{
    if (trials < 1)
        fatal("need at least one sensitivity trial");
    if (bucket.first < 0.0 || bucket.second < bucket.first ||
        bucket.second > 100.0) {
        fatal("invalid reduction bucket [", bucket.first, ", ",
              bucket.second, "]");
    }

    alloc::AmdahlBiddingPolicy ab;

    // Pre-draw (population, victim, reduction) per trial in the legacy
    // stream order; the draws interleave exactly as the old loop's.
    struct Trial
    {
        Population pop;
        std::size_t victim = 0;
        double reduction = 0.0;
    };
    const auto trial_count = static_cast<std::size_t>(trials);
    std::vector<Trial> setup(trial_count);
    for (auto &trial : setup) {
        trial.pop = nextPopulation(density);
        // Perturb one random user: contention lowers the effective
        // parallel fraction of *all* her jobs.
        trial.victim = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(trial.pop.userCount()) - 1));
        trial.reduction = rng.uniform(bucket.first, bucket.second);
    }

    std::vector<double> maes(trial_count, 0.0);
    exec::parallelFor(
        0, trial_count, kTrialGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t t = lo; t < hi; ++t) {
                const Trial &trial = setup[t];
                auto market = buildMarket(trial.pop, cache_,
                                          FractionSource::Estimated);
                const auto baseline = ab.allocate(market);

                core::FisherMarket adjusted(market.capacities());
                for (std::size_t i = 0; i < trial.pop.userCount();
                     ++i) {
                    core::MarketUser user = market.user(i);
                    if (i == trial.victim) {
                        for (auto &job : user.jobs) {
                            job.parallelFraction *=
                                1.0 - trial.reduction / 100.0;
                        }
                    }
                    adjusted.addUser(std::move(user));
                }
                const auto perturbed = ab.allocate(adjusted);

                // MAE over the victim's per-job fractional
                // allocations.
                double mae = 0.0;
                const auto &orig =
                    baseline.outcome.allocation[trial.victim];
                const auto &pert =
                    perturbed.outcome.allocation[trial.victim];
                for (std::size_t k = 0; k < orig.size(); ++k)
                    mae += std::abs(orig[k] - pert[k]);
                maes[t] = mae / static_cast<double>(orig.size());
            }
        });

    double mae_sum = 0.0;
    for (double mae : maes)
        mae_sum += mae;
    return mae_sum / static_cast<double>(trials);
}

ExperimentDriver::MisreportStudy
ExperimentDriver::runMisreport(int users, int density, double exaggeration,
                               int trials)
{
    if (trials < 1)
        fatal("need at least one misreport trial");
    if (exaggeration <= 0.0 || exaggeration > 1.0)
        fatal("exaggeration must be in (0, 1], got ", exaggeration);

    MisreportStudy study;
    alloc::AmdahlBiddingPolicy ab;

    // Pre-draw (population, liar) per trial in legacy stream order.
    struct Trial
    {
        Population pop;
        std::size_t liar = 0;
    };
    const auto trial_count = static_cast<std::size_t>(trials);
    std::vector<Trial> setup(trial_count);
    for (auto &trial : setup) {
        trial.pop = nextPopulation(users, cfg.serverMultiplier, density);
        trial.liar = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(trial.pop.userCount()) - 1));
    }

    struct Outcome
    {
        double truthful = 0.0;
        double misreport = 0.0;
    };
    std::vector<Outcome> outcomes(trial_count);
    exec::parallelFor(
        0, trial_count, kTrialGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t t = lo; t < hi; ++t) {
                const Trial &trial = setup[t];
                const auto market = buildMarket(
                    trial.pop, cache_, FractionSource::Estimated);
                const std::size_t liar = trial.liar;

                // Truthful run, scored with the liar's true utility.
                const auto truthful = ab.allocate(market);
                const auto utility = market.utilityOf(liar);
                outcomes[t].truthful =
                    utility.value(truthful.outcome.allocation[liar]);

                // Misreport: the liar claims most of her remaining
                // parallelism headroom on every job.
                core::FisherMarket shaded(market.capacities());
                for (std::size_t i = 0; i < market.userCount(); ++i) {
                    core::MarketUser user = market.user(i);
                    if (i == liar) {
                        for (auto &job : user.jobs) {
                            job.parallelFraction = std::min(
                                0.999,
                                job.parallelFraction +
                                    exaggeration *
                                        (1.0 - job.parallelFraction));
                        }
                    }
                    shaded.addUser(std::move(user));
                }
                const auto manipulated = ab.allocate(shaded);
                outcomes[t].misreport = utility.value(
                    manipulated.outcome.allocation[liar]);
            }
        });

    for (const Outcome &outcome : outcomes) {
        const double gain = 100.0 *
                            (outcome.misreport - outcome.truthful) /
                            outcome.truthful;
        study.meanTruthfulUtility += outcome.truthful;
        study.meanMisreportUtility += outcome.misreport;
        study.meanGainPercent += gain;
        study.maxGainPercent = std::max(study.maxGainPercent, gain);
    }
    const double scale = 1.0 / static_cast<double>(trials);
    study.meanTruthfulUtility *= scale;
    study.meanMisreportUtility *= scale;
    study.meanGainPercent *= scale;
    return study;
}

double
ExperimentDriver::meanBiddingIterations(int users, double server_multiplier,
                                        int density, int populations)
{
    if (populations < 1)
        fatal("need at least one population");
    const auto pop_count = static_cast<std::size_t>(populations);
    std::vector<Population> pops;
    pops.reserve(pop_count);
    for (std::size_t p = 0; p < pop_count; ++p)
        pops.push_back(nextPopulation(users, server_multiplier, density));

    std::vector<int> iterations(pop_count, 0);
    exec::parallelFor(
        0, pop_count, kTrialGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = lo; p < hi; ++p) {
                const auto market = buildMarket(
                    pops[p], cache_, FractionSource::Estimated);
                const auto result = core::solveAmdahlBidding(market);
                iterations[p] = result.iterations;
            }
        });

    double total = 0.0;
    for (int iters : iterations)
        total += iters;
    return total / static_cast<double>(populations);
}

} // namespace amdahl::eval
