/**
 * @file
 * Deployment cost model for the market runtime (Section VI-F).
 *
 * The paper reports end-to-end equilibrium latency as
 *
 *     total = iterations * (user bid update + market price update
 *                           + network round trip)
 *             + receive bids + calculate & round allocations
 *
 * with measured constants 12.35 ms = 10 * (0.10 + 0.85 + 0.25)
 * + (0.30 + 0.05) ms, and notes that Best Response's bid update is
 * ~22x slower — prohibitive for *centralized* deployments where bid
 * updates dominate because there is no per-iteration network time to
 * hide behind. This model reproduces that arithmetic for both
 * architectures and either mechanism, with the paper's constants as
 * defaults and our measured constants pluggable.
 */

#ifndef AMDAHL_EVAL_DEPLOYMENT_HH
#define AMDAHL_EVAL_DEPLOYMENT_HH

namespace amdahl::eval {

/** Per-step costs, milliseconds. Defaults are the paper's values. */
struct DeploymentCosts
{
    double userBidUpdateMs = 0.10;  //!< One user's AB update round.
    double priceUpdateMs = 0.85;    //!< Price update + termination check.
    double networkRttMinMs = 0.20;  //!< Round-trip to bidders, best.
    double networkRttMaxMs = 0.30;  //!< Round-trip to bidders, worst.
    double receiveBidsMs = 0.30;    //!< Servers receive equilibrium bids.
    double roundingMs = 0.05;       //!< Per-server allocation rounding.

    /**
     * BR's bid-update time relative to AB's (the paper measures 22x).
     */
    double bestResponseMultiplier = 22.0;
};

/** Where bids are computed. */
enum class Architecture
{
    /** Users bid on their own machines; each iteration pays a network
     *  round trip, but bid updates run in parallel across users. */
    Distributed,
    /** The market computes every user's bids itself: no per-iteration
     *  network, but bid updates serialize at the coordinator. */
    Centralized,
};

/** Which bid-update rule runs. */
enum class Mechanism
{
    AmdahlBidding,
    BestResponse,
};

/** Itemized latency of one equilibrium computation, milliseconds. */
struct LatencyBreakdown
{
    double bidUpdatesMs = 0.0;
    double priceUpdatesMs = 0.0;
    double networkMs = 0.0;
    double finalizationMs = 0.0; //!< Receive bids + rounding.

    /** @return The end-to-end total. */
    double totalMs() const
    {
        return bidUpdatesMs + priceUpdatesMs + networkMs +
               finalizationMs;
    }
};

/**
 * Analytic latency model for market deployments.
 */
class DeploymentModel
{
  public:
    explicit DeploymentModel(DeploymentCosts costs = DeploymentCosts());

    /** @return The cost constants in use. */
    const DeploymentCosts &costs() const { return costs_; }

    /**
     * Itemized equilibrium latency.
     *
     * @param iterations   Bidding iterations until convergence (>= 1).
     * @param users        Participants (>= 1); only affects the
     *                     centralized architecture, where bid updates
     *                     serialize across users.
     * @param architecture Distributed or centralized.
     * @param mechanism    AB (closed form) or BR (optimization).
     */
    LatencyBreakdown latency(int iterations, int users,
                             Architecture architecture,
                             Mechanism mechanism) const;

    /**
     * Convenience: the paper's headline number. With the default
     * constants, latency(10, n, Distributed, AmdahlBidding) totals
     * 12.35 ms for any n.
     */
    double totalMs(int iterations, int users,
                   Architecture architecture,
                   Mechanism mechanism) const;

  private:
    DeploymentCosts costs_;
};

} // namespace amdahl::eval

#endif // AMDAHL_EVAL_DEPLOYMENT_HH
