#include "fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::robustness {

namespace {

/** Publish the drawn schedule: each outage becomes one trace event,
 *  so a post-mortem can line crash epochs up against slow clearings. */
void
recordSchedule(const std::vector<CrashEvent> &events)
{
    obs::metrics()
        .counter("faults.scheduled_crashes")
        .add(events.size());
    if (auto *sink = obs::traceSink()) {
        for (const auto &event : events) {
            obs::TraceEvent(*sink, "fault_schedule")
                .field("server", event.server)
                .field("crash_epoch", event.crashEpoch)
                .field("recover_epoch", event.recoverEpoch);
        }
    }
}

} // namespace

void
validateFaultOptions(const FaultOptions &opts)
{
    if (opts.crashRatePerServerEpoch < 0.0 ||
        opts.crashRatePerServerEpoch > 1.0) {
        fatal("crash rate must be in [0, 1], got ",
              opts.crashRatePerServerEpoch);
    }
    if (opts.downEpochs < 1)
        fatal("downEpochs must be >= 1, got ", opts.downEpochs);
    if (opts.checkpointEpochs < 1)
        fatal("checkpointEpochs must be >= 1, got ",
              opts.checkpointEpochs);
    if (opts.bidLossRate < 0.0 || opts.bidLossRate > 1.0)
        fatal("bid loss rate must be in [0, 1], got ",
              opts.bidLossRate);
    if (opts.fractionNoiseStddev < 0.0)
        fatal("fraction noise stddev must be non-negative");
    if (opts.staleRefreshEpochs < 1)
        fatal("staleRefreshEpochs must be >= 1, got ",
              opts.staleRefreshEpochs);
    for (const auto &event : opts.scriptedCrashes) {
        if (event.recoverEpoch <= event.crashEpoch) {
            fatal("scripted crash of server ", event.server,
                  " recovers at epoch ", event.recoverEpoch,
                  " which is not after its crash epoch ",
                  event.crashEpoch);
        }
    }
}

FaultInjector::FaultInjector(FaultOptions opts, std::size_t servers,
                             int epochs)
    : opts_(std::move(opts)), servers_(servers)
{
    validateFaultOptions(opts_);
    if (servers_ == 0)
        fatal("fault injector needs at least one server");
    if (!opts_.enabled)
        return;

    if (!opts_.scriptedCrashes.empty()) {
        events = opts_.scriptedCrashes;
        std::sort(events.begin(), events.end(),
                  [](const CrashEvent &a, const CrashEvent &b) {
                      return a.crashEpoch < b.crashEpoch;
                  });
        // Per-server outages must not overlap: a down server cannot
        // crash again.
        std::vector<int> down_until(servers_, 0);
        for (const auto &event : events) {
            if (event.server >= servers_) {
                fatal("scripted crash names server ", event.server,
                      " but the cluster has ", servers_);
            }
            if (event.crashEpoch < down_until[event.server]) {
                fatal("scripted crashes of server ", event.server,
                      " overlap at epoch ", event.crashEpoch);
            }
            down_until[event.server] = event.recoverEpoch;
        }
        recordSchedule(events);
        return;
    }

    if (opts_.crashRatePerServerEpoch <= 0.0)
        return;
    Rng rng(opts_.seed);
    std::vector<int> down_until(servers_, 0);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (std::size_t j = 0; j < servers_; ++j) {
            if (epoch < down_until[j])
                continue; // Already down; cannot crash again.
            if (!rng.bernoulli(opts_.crashRatePerServerEpoch))
                continue;
            CrashEvent event;
            event.server = j;
            event.crashEpoch = epoch;
            event.recoverEpoch = epoch + opts_.downEpochs + 1;
            down_until[j] = event.recoverEpoch;
            events.push_back(event);
        }
    }
    recordSchedule(events);
}

std::vector<std::size_t>
FaultInjector::crashesDuring(int epoch) const
{
    std::vector<std::size_t> crashed;
    for (const auto &event : events) {
        if (event.crashEpoch == epoch)
            crashed.push_back(event.server);
    }
    return crashed;
}

std::vector<std::size_t>
FaultInjector::recoveriesAt(int epoch) const
{
    std::vector<std::size_t> recovered;
    for (const auto &event : events) {
        if (event.recoverEpoch == epoch)
            recovered.push_back(event.server);
    }
    return recovered;
}

bool
FaultInjector::liveForClearing(std::size_t server, int epoch) const
{
    for (const auto &event : events) {
        if (event.server == server && event.crashEpoch < epoch &&
            epoch < event.recoverEpoch) {
            return false;
        }
    }
    return true;
}

double
FaultInjector::perturbFraction(int epoch, std::size_t workload,
                               double f) const
{
    if (!opts_.enabled || opts_.fractionNoiseStddev <= 0.0)
        return f;
    // Noise is a pure function of (seed, staleness window, workload):
    // within a window every epoch sees the same wrong estimate, as a
    // stale profile would supply.
    const auto window = static_cast<std::uint64_t>(
        epoch / opts_.staleRefreshEpochs);
    SplitMix64 mixer(opts_.seed);
    const std::uint64_t stream =
        mixer.next() ^
        (0x9e3779b97f4a7c15ULL * (window + 1)) ^
        (0xbf58476d1ce4e5b9ULL *
         (static_cast<std::uint64_t>(workload) + 1));
    Rng noise(stream);
    const double perturbed =
        f + noise.gaussian(0.0, opts_.fractionNoiseStddev);
    return std::clamp(perturbed, 0.005, 0.999);
}

std::uint64_t
FaultInjector::bidSeed(int epoch) const
{
    SplitMix64 mixer(opts_.seed ^
                     (0x94d049bb133111ebULL *
                      (static_cast<std::uint64_t>(epoch) + 1)));
    return mixer.next();
}

} // namespace amdahl::robustness
