/**
 * @file
 * Deterministic, seed-driven fault injection for the online market.
 *
 * The paper evaluates one-shot allocations on a healthy cluster; a
 * deployed market must keep clearing when servers crash mid-epoch,
 * bid messages are lost by the distributed (Synchronous) deployment,
 * and profiled parallel fractions go stale. This module generates a
 * reproducible fault schedule so those scenarios can be simulated,
 * tested, and swept in benches without any nondeterminism: the same
 * options always yield the same crashes, the same message losses, and
 * the same profile perturbations.
 *
 * Fault model (epoch granularity, matching the online simulator):
 *
 *  - A server *crashes during* epoch c: it participated in epoch c's
 *    clearing, then failed mid-epoch, so its jobs' progress for epoch
 *    c (plus any uncheckpointed earlier progress) is lost. The server
 *    is excluded from clearings c+1 .. recoverEpoch-1 and rejoins the
 *    market at recoverEpoch.
 *  - Bid-message loss perturbs the proportional-response iteration of
 *    the Synchronous schedule (see BiddingOptions::transport); the
 *    injector supplies a distinct deterministic seed per epoch.
 *  - Profile staleness perturbs the f estimates the market is built
 *    from; noise is re-drawn every staleRefreshEpochs so estimates
 *    stay wrong in a correlated way, as stale profiles do.
 */

#ifndef AMDAHL_ROBUSTNESS_FAULT_INJECTOR_HH
#define AMDAHL_ROBUSTNESS_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace amdahl::robustness {

/** One server outage in the schedule. */
struct CrashEvent
{
    std::size_t server = 0;
    /** The server fails *during* this epoch (it was cleared at its
     *  start; progress made on it this epoch is lost). */
    int crashEpoch = 0;
    /** First epoch the server participates in clearing again. */
    int recoverEpoch = 0;
};

/** Knobs of the deterministic fault schedule. */
struct FaultOptions
{
    /** Master switch; when false no fault is ever injected and the
     *  online simulator's behavior is bit-identical to fault-free
     *  operation. */
    bool enabled = false;

    /** Seed of the fault schedule; independent of the simulation seed
     *  so the arrival stream never shifts when faults are toggled. */
    std::uint64_t seed = 0xfa17'c0deULL;

    /** Per-live-server, per-epoch crash probability. */
    double crashRatePerServerEpoch = 0.0;

    /** Clearings a crashed server misses before rejoining (>= 1). */
    int downEpochs = 2;

    /**
     * Checkpoint interval in epochs (>= 1). Jobs checkpoint their
     * progress every this many epochs; a crash rolls a job back to
     * its last checkpoint. 1 bounds lost work to the crash epoch's
     * own progress.
     */
    int checkpointEpochs = 1;

    /** Per-message bid-update loss probability fed into the bidding
     *  procedure's transport model each epoch (see
     *  BiddingOptions::transport). */
    double bidLossRate = 0.0;

    /** Stddev of additive gaussian noise on profiled parallel
     *  fractions (0 disables staleness). */
    double fractionNoiseStddev = 0.0;

    /** Epochs between staleness re-draws (>= 1): estimates stay wrong
     *  the same way until the next profile refresh. */
    int staleRefreshEpochs = 4;

    /**
     * Explicit outage script; when non-empty it replaces the random
     * crash schedule (crashRatePerServerEpoch is ignored). Events must
     * not overlap per server. Used by targeted tests and experiments.
     */
    std::vector<CrashEvent> scriptedCrashes;
};

/**
 * Validate fault options, throwing FatalError on out-of-range knobs.
 * Called by FaultInjector and by OnlineSimulator at construction.
 */
void validateFaultOptions(const FaultOptions &opts);

/**
 * Precomputed fault schedule over a fixed horizon.
 *
 * Construction draws the full crash schedule up front from a private
 * RNG stream; all queries are pure lookups, so two injectors built
 * from the same options always answer identically.
 */
class FaultInjector
{
  public:
    /**
     * @param opts    Fault knobs (validated; fatal on bad ranges).
     * @param servers Number of servers in the cluster.
     * @param epochs  Horizon in epochs; crashes are drawn for
     *                epochs [0, epochs).
     */
    FaultInjector(FaultOptions opts, std::size_t servers, int epochs);

    /** @return The options the schedule was drawn from. */
    const FaultOptions &options() const { return opts_; }

    /** @return The full outage schedule, sorted by crash epoch. */
    const std::vector<CrashEvent> &schedule() const { return events; }

    /** @return Servers failing during @p epoch (cleared, then died). */
    std::vector<std::size_t> crashesDuring(int epoch) const;

    /** @return Servers whose capacity rejoins at @p epoch's clearing. */
    std::vector<std::size_t> recoveriesAt(int epoch) const;

    /** @return true when @p server participates in @p epoch's clearing. */
    bool liveForClearing(std::size_t server, int epoch) const;

    /**
     * Apply profile staleness to a parallel-fraction estimate.
     *
     * @param epoch    Current epoch (selects the staleness window).
     * @param workload Library workload index (each drifts separately).
     * @param f        The clean estimate.
     * @return Perturbed estimate, clamped to (0, 1); @p f unchanged
     *         when staleness is disabled.
     */
    double perturbFraction(int epoch, std::size_t workload,
                           double f) const;

    /** @return Deterministic bid-transport seed for @p epoch. */
    std::uint64_t bidSeed(int epoch) const;

  private:
    FaultOptions opts_;
    std::size_t servers_;
    std::vector<CrashEvent> events;
};

} // namespace amdahl::robustness

#endif // AMDAHL_ROBUSTNESS_FAULT_INJECTOR_HH
