/**
 * @file
 * Fault-aware POSIX file primitives for the durability layer.
 *
 * All durable writes go through raw file descriptors rather than
 * iostreams: the commit protocol needs fsync (data durability),
 * ftruncate (torn-tail repair), and rename (atomic publication), none
 * of which iostreams expose. This module is a designated owner under
 * the TRUST-fio lint rule — the rest of src/ must not open files for
 * writing at all.
 *
 * Every operation runs under IoContext::run: a bounded retry loop that
 * consults the deterministic IoFaultInjector before each attempt and
 * charges virtual backoff units between attempts. Real IO errors
 * (ENOSPC, EIO) retry on the same schedule; when attempts are
 * exhausted the IoError Status propagates to the caller, which
 * degrades gracefully instead of crashing.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_POSIX_IO_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_POSIX_IO_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hh"
#include "robustness/durability/io_faults.hh"

namespace amdahl::durability {

/** Cumulative IO bookkeeping for one durable store. */
struct DurabilityCounters
{
    std::uint64_t injectedFaults = 0; //!< Attempts failed by injection.
    std::uint64_t ioRetries = 0;      //!< Attempts after the first.
    std::uint64_t backoffUnits = 0;   //!< Virtual units waited, total.
    std::uint64_t journalAppends = 0;
    std::uint64_t journalResets = 0;
    std::uint64_t snapshotsWritten = 0;
};

/**
 * Retry harness shared by journal and snapshot IO.
 *
 * Holds the fault injector and the counters; run() gives each logical
 * operation a fresh operation id so the injected-fault realization is
 * a pure function of (seed, issue order).
 */
class IoContext
{
  public:
    IoContext(IoFaultInjector injector, DurabilityCounters *counters)
        : faults(std::move(injector)), counters_(counters)
    {}

    /**
     * Execute @p op with bounded retries.
     *
     * Each attempt first consults the fault injector (an injected
     * fault consumes the attempt without running @p op), then runs
     * @p op; a failed Status from @p op consumes the attempt too.
     * Between attempts, deterministic backoff units are charged to the
     * counters. After maxRetries attempts the last failure (or a
     * synthesized IoError for an injected fault) is returned.
     *
     * @param what Operation label for diagnostics.
     * @param op   The attempt body; must be safe to re-run (callers
     *             undo partial effects — e.g. truncate a half-written
     *             record — before returning failure).
     */
    Status run(const char *what, const std::function<Status()> &op);

    /** @return The cumulative counters. */
    const DurabilityCounters &counters() const { return *counters_; }

  private:
    IoFaultInjector faults;
    DurabilityCounters *counters_;
};

/**
 * RAII file descriptor with Status-returning operations.
 *
 * Move-only; closes on destruction (the destructor ignores close
 * errors — durability decisions are made at fsync time, never close).
 */
class PosixFile
{
  public:
    PosixFile() = default;
    ~PosixFile();
    PosixFile(PosixFile &&other) noexcept;
    PosixFile &operator=(PosixFile &&other) noexcept;
    PosixFile(const PosixFile &) = delete;
    PosixFile &operator=(const PosixFile &) = delete;

    /** Open (or create) @p path for appending. */
    static Result<PosixFile> openAppend(const std::string &path);

    /** Create/truncate @p path for writing. */
    static Result<PosixFile> createTruncate(const std::string &path);

    /** @return true when a descriptor is held. */
    bool isOpen() const { return fd_ >= 0; }

    /** Write all of @p size bytes at the current offset. */
    Status writeAll(const void *data, std::size_t size);

    /** fsync the descriptor. */
    Status sync();

    /** Truncate the file to @p size bytes (offset moves to the end). */
    Status truncate(std::uint64_t size);

    /** @return The current file size in bytes. */
    Result<std::uint64_t> size() const;

    /** Close explicitly; reports the close error (destructor cannot). */
    Status close();

  private:
    explicit PosixFile(int fd) : fd_(fd) {}

    int fd_ = -1;
};

/** Atomically rename @p from to @p to (same filesystem). */
Status renameFile(const std::string &from, const std::string &to);

/** Remove @p path; missing files are not an error. */
Status removeFile(const std::string &path);

/** fsync the directory @p dir so renames/creates in it are durable. */
Status syncDir(const std::string &dir);

/** Read the whole of @p path into a string. */
Result<std::string> readFileBytes(const std::string &path);

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_POSIX_IO_HH
