#include "robustness/durability/io_faults.hh"

#include <cmath>

#include "common/random.hh"

namespace amdahl::durability {

Status
validateIoFaultOptions(const IoFaultOptions &opts)
{
    if (!std::isfinite(opts.failureRate) || opts.failureRate < 0.0 ||
        opts.failureRate >= 1.0)
        return Status::error(ErrorKind::DomainError, 0,
                             "io fault rate must be in [0, 1), got ",
                             opts.failureRate);
    if (opts.maxRetries < 1)
        return Status::error(ErrorKind::DomainError, 0,
                             "io max retries must be >= 1, got ",
                             opts.maxRetries);
    return Status::ok();
}

bool
IoFaultInjector::injectFailure(std::uint64_t opId,
                               std::uint64_t attempt) const
{
    if (!opts_.enabled)
        return false;
    return counterBernoulli(opts_.seed, opId, attempt, opts_.failureRate);
}

std::uint64_t
IoFaultInjector::backoffUnits(std::uint64_t opId,
                              std::uint64_t attempt) const
{
    // Exponential base with full jitter, all in virtual units. The
    // jitter substream is decorrelated from the failure substream by
    // flipping the seed.
    const std::uint64_t base = std::uint64_t{1} << (attempt < 20 ? attempt
                                                                 : 20);
    const std::uint64_t bits =
        mix64(substreamSeed(~opts_.seed, opId, attempt));
    const double jitter = counterUniform(bits);
    return base + static_cast<std::uint64_t>(
                      jitter * static_cast<double>(base));
}

} // namespace amdahl::durability
