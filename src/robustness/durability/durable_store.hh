/**
 * @file
 * Crash-consistent persistence for OnlineSimulator epochs.
 *
 * DurableStateStore ties the journal and snapshot layers into the
 * commit protocol the online runtime drives once per epoch:
 *
 *   1. journal.append(entry)      — the epoch's verification digest
 *      and trace frontier become durable (WAL rule: nothing the epoch
 *      produced is observable until this fsync returns);
 *   2. every snapshotEvery epochs: snapshot.write(full state) then
 *      journal.reset() — the snapshot makes journaled epochs
 *      redundant, so the journal truncates back to a bare header.
 *
 * A journal entry is deliberately *not* a state delta. It records the
 * epoch number, a CRC digest of everything the epoch admitted
 * (arrivals, placements, admission decisions, completions, churn,
 * allocations, RNG state), and the trace-file frontier. Recovery
 * loads the last good snapshot and *re-executes* the journaled epochs
 * through the same simulator code — determinism is the redo log. The
 * journaled digest then proves the replay reproduced exactly what the
 * crashed process committed; any divergence (version skew, a
 * nondeterminism bug, a tampered journal) is detected and reported
 * instead of silently producing different history.
 *
 * See DESIGN.md §13 for the full recovery state machine.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_DURABLE_STORE_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_DURABLE_STORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hh"
#include "robustness/durability/io_faults.hh"
#include "robustness/durability/journal.hh"
#include "robustness/durability/posix_io.hh"
#include "robustness/durability/snapshot.hh"

namespace amdahl::durability {

/** Durability knobs (CLI: --state-dir / --snapshot-every / --recover). */
struct DurabilityOptions
{
    /** Directory for journal + snapshots; created when absent. */
    std::string stateDir;
    /** Epochs between full snapshots; 0 = final snapshot only. */
    int snapshotEvery = 8;
    /** Snapshot generations to retain (>= 1). */
    int keepSnapshots = 2;
    /** Transient-IO fault injection (off by default). */
    IoFaultOptions ioFaults;
};

/** @return DomainError when a knob is outside its documented range. */
Status validateDurabilityOptions(const DurabilityOptions &opts);

/** One committed epoch, as journaled. */
struct JournalEntry
{
    /** 1-based count of completed epochs (epoch index + 1). */
    std::uint64_t epoch = 0;
    /** Digest of everything the epoch admitted (see file comment). */
    std::uint32_t eventCrc = 0;
    /** Trace-sink bytes durable through this epoch. */
    std::uint64_t traceBytes = 0;
    /** Trace-sink sequence number through this epoch. */
    std::uint64_t traceSeq = 0;
};

/**
 * The payload framing of every snapshot file.
 *
 * The envelope separates what the *durability* layer must know on
 * recovery (the trace-file frontier to truncate to, and whether the
 * run had already finalized so its run_end event is durable) from the
 * opaque simulator state bytes. The replay digest covers only `state`,
 * so it is identical with and without a trace sink installed.
 */
struct OnlineSnapshotEnvelope
{
    /** true when written by finishRun (run_end already emitted). */
    bool completed = false;
    /** Trace-sink bytes durable as of this snapshot. */
    std::uint64_t traceBytes = 0;
    /** Trace-sink sequence number as of this snapshot. */
    std::uint64_t traceSeq = 0;
    /** Encoded simulator state (eval::encodeOnlineState bytes). */
    std::string state;
};

/** Encode a snapshot envelope to payload bytes. */
std::string encodeSnapshotEnvelope(const OnlineSnapshotEnvelope &env);

/** Decode a snapshot payload; ParseError/SemanticError on bad bytes. */
Result<OnlineSnapshotEnvelope>
decodeSnapshotEnvelope(std::string_view payload);

/** Everything recover() could verify on disk. */
struct RecoveredState
{
    /** Epoch of the snapshot (0 with hasSnapshot = false: none). */
    std::uint64_t snapshotEpoch = 0;
    bool hasSnapshot = false;
    /** Encoded OnlineRunState bytes (decode in eval/online). */
    std::string snapshotPayload;
    /** Journaled epochs after the snapshot, strictly contiguous. */
    std::vector<JournalEntry> entries;
    /** true when corrupt bytes had to be discarded from the journal. */
    bool tornTail = false;
    /** Truncation point for resuming the journal. */
    std::uint64_t journalValidBytes = 0;
    /** true when the journal file needs re-creation (unusable). */
    bool journalUsable = false;
    /** Human-readable anomaly notes, in detection order. */
    std::vector<std::string> notes;

    /** @return The newest durable epoch (0 = nothing durable). */
    std::uint64_t
    frontierEpoch() const
    {
        return entries.empty() ? snapshotEpoch : entries.back().epoch;
    }
};

/**
 * The per-run persistence handle. Lifecycle:
 *
 *     open() -> recover() -> beginFresh() | beginResume(rec)
 *            -> commitEpoch()*            (once per epoch)
 *            -> finishRun()               (final snapshot)
 */
class DurableStateStore
{
  public:
    /** Validate options and create the state directory. */
    static Result<DurableStateStore> open(DurabilityOptions opts);

    /**
     * Read-only scan of the state directory: last good snapshot,
     * verified journal prefix filtered to epochs after the snapshot
     * and checked for contiguity (a gap or duplicate ends the usable
     * prefix with a note). Never mutates disk.
     */
    RecoveredState recover() const;

    /** Discard any previous state and start a fresh journal. */
    Status beginFresh();

    /**
     * Resume after recover(): truncate the journal to the verified
     * prefix (or re-create it when unusable) and open for append.
     */
    Status beginResume(const RecoveredState &rec);

    /**
     * Commit one epoch: journal append, then on the snapshot cadence
     * a full snapshot + journal reset. @p encodeState is only invoked
     * when a snapshot is actually taken. Brackets the work with the
     * epoch.pre_commit / epoch.post_commit kill points.
     */
    Status commitEpoch(const JournalEntry &entry,
                       const std::function<std::string()> &encodeState);

    /** Final snapshot at @p epoch + journal reset (run completed). */
    Status finishRun(std::uint64_t epoch,
                     const std::function<std::string()> &encodeState);

    /** @return Cumulative IO/fault/commit counters. */
    const DurabilityCounters &counters() const { return *counters_; }

    /** @return The configured options. */
    const DurabilityOptions &options() const { return opts_; }

    /** @return The journal file path inside the state directory. */
    std::string journalPath() const { return opts_.stateDir + "/journal.amjl"; }

    /** Encode one journal entry payload (exposed for tests). */
    static std::string encodeEntry(const JournalEntry &entry);

    /** Decode one journal entry payload (exposed for tests). */
    static Result<JournalEntry> decodeEntry(std::string_view payload);

  private:
    DurableStateStore(DurabilityOptions opts)
        : opts_(std::move(opts)),
          snapshots_(opts_.stateDir, opts_.keepSnapshots),
          io_(IoFaultInjector(opts_.ioFaults), counters_.get())
    {}

    /** Snapshot + journal reset at @p epoch. */
    Status takeSnapshot(std::uint64_t epoch,
                        const std::function<std::string()> &encodeState);

    DurabilityOptions opts_;
    SnapshotStore snapshots_;
    /** Heap-held so IoContext's pointer survives moving the store
     *  (e.g. out of the Result returned by open()). */
    std::unique_ptr<DurabilityCounters> counters_ =
        std::make_unique<DurabilityCounters>();
    IoContext io_;
    std::optional<Journal> journal_;
    std::uint64_t lastSnapshotEpoch_ = 0;
};

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_DURABLE_STORE_HH
