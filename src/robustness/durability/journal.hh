/**
 * @file
 * Write-ahead epoch journal.
 *
 * On-disk layout (all integers little-endian):
 *
 *     header:  "AMJL" | u32 version
 *     record:  u32 payloadLen | u32 crc32(payload) | payload bytes
 *     ...repeated until end of file
 *
 * The journal is append-only between snapshots; a snapshot makes all
 * journaled epochs redundant and the journal is reset (truncated back
 * to a bare header, fsynced). Appends write the complete record then
 * fsync before the epoch is considered durable; a crash mid-append
 * leaves a torn tail that scan() detects (short record or CRC
 * mismatch) and reports as the end of the valid prefix — recovery
 * truncates the file there and resumes appending.
 *
 * scan() treats the file as untrusted input: it never applies bytes
 * it cannot verify, and classifies every anomaly (missing header,
 * version skew, implausible length, checksum failure) in
 * human-readable notes the CLI surfaces after --recover.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_JOURNAL_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_JOURNAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "robustness/durability/posix_io.hh"

namespace amdahl::durability {

/** One verified record from a journal scan. */
struct ScannedRecord
{
    std::string payload;
    /** File offset one past this record (a valid truncation point). */
    std::uint64_t endOffset = 0;
};

/** Result of reading a journal file back (see scan()). */
struct JournalScan
{
    /** Verified records, in append order (the valid prefix). */
    std::vector<ScannedRecord> records;
    /** true when unverifiable bytes followed the valid prefix. */
    bool tornTail = false;
    /** Offset one past the last verified record (header only = 8). */
    std::uint64_t validBytes = 0;
    /** true when the file exists with a well-formed current header. */
    bool usable = false;
    /** Human-readable anomaly descriptions, in detection order. */
    std::vector<std::string> notes;
};

/** Append handle for a journal file. */
class Journal
{
  public:
    static constexpr std::uint32_t kVersion = 1;
    /** "AMJL" + u32 version. */
    static constexpr std::uint64_t kHeaderBytes = 8;
    /** Sanity cap on one record; larger lengths are treated as
     *  corruption, bounding allocation on malicious/garbage input. */
    static constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

    /**
     * Verify @p path without mutating it. A missing file yields an
     * empty, non-usable scan with no notes (the fresh-start case); a
     * present-but-unusable file (empty, bad magic, version skew)
     * yields notes and usable = false.
     */
    static JournalScan scan(const std::string &path);

    /** Create/truncate @p path with a fresh header (fsynced). */
    static Result<Journal> create(const std::string &path, IoContext &io);

    /**
     * Open @p path for appending after a scan: truncates to
     * @p validBytes, discarding any torn tail. The scan must have
     * found a usable header.
     */
    static Result<Journal> openResume(const std::string &path,
                                      std::uint64_t validBytes,
                                      IoContext &io);

    /**
     * Append one checksummed record and fsync. On any failed attempt
     * the file is truncated back to its pre-append size, so a
     * successful retry never duplicates bytes. Hits the
     * journal.pre_append / journal.mid_append / journal.post_append
     * kill points.
     */
    Status append(std::string_view payload, IoContext &io);

    /**
     * Truncate back to a bare header and fsync (after a snapshot made
     * the journaled epochs redundant). Hits journal.pre_reset /
     * journal.post_reset.
     */
    Status reset(IoContext &io);

    /** @return Current file size in bytes (header + records). */
    std::uint64_t sizeBytes() const { return size_; }

  private:
    Journal(PosixFile file, std::uint64_t size)
        : file_(std::move(file)), size_(size)
    {}

    PosixFile file_;
    std::uint64_t size_ = 0;
};

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_JOURNAL_HH
