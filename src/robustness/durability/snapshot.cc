#include "robustness/durability/snapshot.hh"

#include <algorithm>
#include <filesystem>

#include "common/crc32.hh"
#include "robustness/durability/codec.hh"
#include "robustness/durability/kill_points.hh"

namespace amdahl::durability {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'S', 'S'};
constexpr std::string_view kPrefix = "snapshot-";
constexpr std::string_view kSuffix = ".amss";
constexpr std::string_view kTmpSuffix = ".amss.tmp";

std::string
epochTag(std::uint64_t epoch)
{
    std::string digits = std::to_string(epoch);
    if (digits.size() < 8)
        digits.insert(0, 8 - digits.size(), '0');
    return digits;
}

/** @return The epoch encoded in a `snapshot-XXXXXXXX.amss` file name,
 *  or nullopt when @p name does not match the pattern. */
std::optional<std::uint64_t>
epochFromName(std::string_view name)
{
    if (name.size() < kPrefix.size() + kSuffix.size() + 1 ||
        name.substr(0, kPrefix.size()) != kPrefix ||
        name.substr(name.size() - kSuffix.size()) != kSuffix)
        return std::nullopt;
    const std::string_view digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    std::uint64_t epoch = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return std::nullopt;
        epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return epoch;
}

} // namespace

Result<SnapshotData>
SnapshotStore::decodeFile(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.status();
    const std::string data = bytes.take();
    if (data.empty())
        return Status::error(ErrorKind::ParseError, 0,
                             "snapshot is zero-length");
    if (data.size() < 4 || data.compare(0, 4, kMagic, 4) != 0)
        return Status::error(ErrorKind::ParseError, 0,
                             "snapshot magic is missing or wrong");
    ByteReader r(std::string_view(data).substr(4));
    const std::uint32_t version = r.readU32();
    const std::uint64_t epoch = r.readU64();
    const std::uint64_t len = r.readU64();
    const std::uint32_t want = r.readU32();
    if (!r.ok())
        return r.status();
    if (version != kVersion)
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot version ", version,
                             " does not match supported version ",
                             kVersion);
    if (len > kMaxPayloadBytes)
        return Status::error(ErrorKind::ParseError, 0,
                             "implausible snapshot payload length ",
                             len);
    if (r.remaining() != len)
        return Status::error(ErrorKind::ParseError, 0,
                             "snapshot payload truncated: header "
                             "promises ",
                             len, " bytes, ", r.remaining(),
                             " present");
    const std::string_view payload =
        std::string_view(data).substr(data.size() - r.remaining());
    if (crc32(payload) != want)
        return Status::error(ErrorKind::ParseError, 0,
                             "snapshot checksum mismatch");
    return SnapshotData{epoch, std::string(payload)};
}

SnapshotLoad
SnapshotStore::loadLatest() const
{
    SnapshotLoad out;
    std::vector<std::pair<std::uint64_t, std::string>> candidates;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (const auto epoch = epochFromName(name))
            candidates.emplace_back(*epoch, entry.path().string());
    }
    // Newest first; the filename epoch is only a hint — the decoded
    // header epoch is authoritative and must agree.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (const auto &[epoch, path] : candidates) {
        auto decoded = decodeFile(path);
        if (!decoded.ok()) {
            out.rejected.push_back(path + ": " +
                                   decoded.status().toString());
            continue;
        }
        SnapshotData snap = decoded.take();
        if (snap.epoch != epoch) {
            out.rejected.push_back(
                path + ": header epoch " + std::to_string(snap.epoch) +
                " disagrees with the file name");
            continue;
        }
        out.snapshot = std::move(snap);
        break;
    }
    return out;
}

std::string
SnapshotStore::pathFor(std::uint64_t epoch) const
{
    return dir_ + "/" + std::string(kPrefix) + epochTag(epoch) +
           std::string(kSuffix);
}

Status
SnapshotStore::write(std::uint64_t epoch, std::string_view payload,
                     IoContext &io)
{
    ByteWriter header;
    header.putU32(static_cast<std::uint32_t>(kMagic[0]) |
                  static_cast<std::uint32_t>(kMagic[1]) << 8 |
                  static_cast<std::uint32_t>(kMagic[2]) << 16 |
                  static_cast<std::uint32_t>(kMagic[3]) << 24);
    header.putU32(kVersion);
    header.putU64(epoch);
    header.putU64(payload.size());
    header.putU32(crc32(payload));
    const std::string head = header.take();

    const std::string finalPath = pathFor(epoch);
    const std::string tmpPath = dir_ + "/" + std::string(kPrefix) +
                                epochTag(epoch) +
                                std::string(kTmpSuffix);

    killPoint("snapshot.pre_write");
    Status st = io.run("snapshot write", [&]() -> Status {
        // Recreate the tmp from scratch on every attempt, so a failed
        // attempt never leaves half-written bytes in the next one.
        auto opened = PosixFile::createTruncate(tmpPath);
        if (!opened.ok())
            return opened.status();
        PosixFile tmp = opened.take();
        if (Status w = tmp.writeAll(head.data(), head.size()); !w.isOk())
            return w;
        const std::size_t half = payload.size() / 2;
        if (Status w = tmp.writeAll(payload.data(), half); !w.isOk())
            return w;
        // Torn-write crash site: a partial tmp file, never renamed —
        // recovery must ignore it entirely.
        killPoint("snapshot.mid_write");
        if (Status w = tmp.writeAll(payload.data() + half,
                                    payload.size() - half);
            !w.isOk())
            return w;
        if (Status s = tmp.sync(); !s.isOk())
            return s;
        return tmp.close();
    });
    if (!st.isOk())
        return st;

    killPoint("snapshot.pre_rename");
    st = io.run("snapshot rename",
                [&]() -> Status { return renameFile(tmpPath, finalPath); });
    if (!st.isOk())
        return st;
    killPoint("snapshot.post_rename");
    st = io.run("state dir sync",
                [&]() -> Status { return syncDir(dir_); });
    if (!st.isOk())
        return st;

    // Prune: drop generations beyond the keep count and stale tmps.
    // Best-effort — a prune failure must not fail the commit.
    std::vector<std::pair<std::uint64_t, std::string>> generations;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (const auto e = epochFromName(name))
            generations.emplace_back(*e, entry.path().string());
        else if (name.size() > kTmpSuffix.size() &&
                 name.substr(name.size() - kTmpSuffix.size()) ==
                     kTmpSuffix)
            (void)removeFile(entry.path().string());
    }
    std::sort(generations.begin(), generations.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t i = static_cast<std::size_t>(keep_);
         i < generations.size(); ++i)
        (void)removeFile(generations[i].second);
    return Status::ok();
}

} // namespace amdahl::durability
