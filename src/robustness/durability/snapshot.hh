/**
 * @file
 * Checksummed full-state snapshots.
 *
 * On-disk layout of `snapshot-<epoch:08>.amss` (little-endian):
 *
 *     "AMSS" | u32 version | u64 epoch | u64 payloadLen |
 *     u32 crc32(payload) | payload bytes
 *
 * Publication follows the classic atomic-rename protocol: the bytes
 * are written to a `.tmp` sibling, fsynced, renamed over the final
 * name, and the directory is fsynced. A reader therefore never sees a
 * partially written snapshot under the final name; a crash can only
 * leave a stale `.tmp` (ignored and pruned) or no file at all.
 *
 * loadLatest() walks snapshots newest-first and returns the first one
 * that verifies — a corrupt newest snapshot (bit rot, version skew,
 * tampering) is *rejected with a note* and the previous one is used,
 * which is why write() retains keepSnapshots generations instead of
 * exactly one.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_SNAPSHOT_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_SNAPSHOT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "robustness/durability/posix_io.hh"

namespace amdahl::durability {

/** One decoded, checksum-verified snapshot. */
struct SnapshotData
{
    std::uint64_t epoch = 0;
    std::string payload;
};

/** Outcome of loadLatest(): the newest verifiable snapshot, if any. */
struct SnapshotLoad
{
    std::optional<SnapshotData> snapshot;
    /** Notes for every newer snapshot that failed verification. */
    std::vector<std::string> rejected;
};

/** Manages the snapshot generation files in one state directory. */
class SnapshotStore
{
  public:
    static constexpr std::uint32_t kVersion = 1;
    /** Sanity cap on a snapshot payload (bounds allocation). */
    static constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

    /**
     * @param dir  State directory (must exist).
     * @param keep Generations to retain (>= 1).
     */
    SnapshotStore(std::string dir, int keep)
        : dir_(std::move(dir)), keep_(keep)
    {}

    /**
     * Verify and decode one snapshot file (any path). Used by
     * loadLatest() and directly by the corruption-corpus tests.
     */
    static Result<SnapshotData> decodeFile(const std::string &path);

    /** @return The newest verifiable snapshot in the directory, with
     *  notes for every newer one that had to be rejected. */
    SnapshotLoad loadLatest() const;

    /**
     * Durably publish a snapshot for @p epoch (tmp + fsync + rename +
     * dir fsync), then prune generations beyond the keep count and any
     * stale tmp files. Hits the snapshot.pre_write / mid_write /
     * pre_rename / post_rename kill points.
     */
    Status write(std::uint64_t epoch, std::string_view payload,
                 IoContext &io);

    /** @return The final path for @p epoch's snapshot file. */
    std::string pathFor(std::uint64_t epoch) const;

  private:
    std::string dir_;
    int keep_;
};

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_SNAPSHOT_HH
