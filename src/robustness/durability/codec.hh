/**
 * @file
 * Binary encoding for durable market state.
 *
 * Snapshots and journal records are byte strings produced by ByteWriter
 * and consumed by ByteReader. The format is deliberately primitive:
 * fixed-width little-endian integers, doubles by IEEE-754 bit pattern,
 * and length-prefixed byte strings. No varints, no alignment, no
 * endianness probes — the encoding of a value sequence is the same on
 * every platform, which is what makes snapshot bytes comparable across
 * runs (the recovery-equivalence oracle diffs them directly).
 *
 * Readers treat the input as untrusted (a crashed process may have
 * left arbitrary bytes): every read is bounds-checked, length prefixes
 * are capped by the bytes actually present, and the first failure is
 * latched as a Status the caller checks once at the end — the
 * trust-boundary pattern from common/status.hh applied to binary
 * input.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_CODEC_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace amdahl::durability {

/** Appends primitive values to a byte buffer (little-endian). */
class ByteWriter
{
  public:
    /** Fold one unsigned 32-bit value. */
    void putU32(std::uint32_t v);

    /** Fold one unsigned 64-bit value. */
    void putU64(std::uint64_t v);

    /** Fold a double by bit pattern (exact round trip). */
    void putF64(double v);

    /** Fold a byte string with a u64 length prefix. */
    void putString(std::string_view s);

    /** Fold a vector of doubles with a u64 count prefix. */
    void putF64Vector(const std::vector<double> &v);

    /** Fold a vector of u64 with a u64 count prefix. */
    void putU64Vector(const std::vector<std::uint64_t> &v);

    /** @return The accumulated bytes. */
    const std::string &bytes() const { return buf; }

    /** @return The accumulated bytes, moved out. */
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/**
 * Bounds-checked reader over an encoded byte string.
 *
 * On underrun or an implausible length prefix the reader latches a
 * ParseError and every subsequent read returns a zero value; callers
 * check status() once after decoding instead of after every field.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : in(data) {}

    /** @return The next u32, or 0 after a latched failure. */
    std::uint32_t readU32();

    /** @return The next u64, or 0 after a latched failure. */
    std::uint64_t readU64();

    /** @return The next double, or 0.0 after a latched failure. */
    double readF64();

    /** @return The next length-prefixed byte string, or "" on failure. */
    std::string readString();

    /** @return The next count-prefixed double vector ({} on failure). */
    std::vector<double> readF64Vector();

    /** @return The next count-prefixed u64 vector ({} on failure). */
    std::vector<std::uint64_t> readU64Vector();

    /** @return Bytes not yet consumed. */
    std::size_t remaining() const { return in.size() - pos; }

    /** @return true when no read has failed so far. */
    bool ok() const { return st.isOk(); }

    /** @return The latched first failure, or Status::ok(). */
    const Status &status() const { return st; }

    /**
     * Require that every input byte was consumed; trailing garbage
     * latches a ParseError (a well-formed record decodes exactly).
     */
    void expectEnd();

  private:
    /** @return true when @p n more bytes may be consumed. */
    bool need(std::size_t n, const char *what);

    std::string_view in;
    std::size_t pos = 0;
    Status st = Status::ok();
};

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_CODEC_HH
