#include "robustness/durability/posix_io.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace amdahl::durability {

namespace {

/** @return "<what>: <errno message>" as an IoError. */
Status
errnoStatus(const char *what, int err)
{
    return Status::error(ErrorKind::IoError, 0, what, ": ",
                         std::strerror(err));
}

} // namespace

Status
IoContext::run(const char *what, const std::function<Status()> &op)
{
    const std::uint64_t opId = faults.nextOpId();
    const int maxRetries = faults.options().maxRetries;
    Status last = Status::ok();
    for (int attempt = 0; attempt < maxRetries; ++attempt) {
        const auto a = static_cast<std::uint64_t>(attempt);
        if (attempt > 0) {
            ++counters_->ioRetries;
            counters_->backoffUnits += faults.backoffUnits(opId, a - 1);
        }
        if (faults.injectFailure(opId, a)) {
            ++counters_->injectedFaults;
            last = Status::error(ErrorKind::IoError, 0, what,
                                 ": injected transient fault (op ",
                                 opId, ", attempt ", attempt, ")");
            continue;
        }
        last = op();
        if (last.isOk())
            return last;
    }
    return last;
}

PosixFile::~PosixFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

PosixFile::PosixFile(PosixFile &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{}

PosixFile &
PosixFile::operator=(PosixFile &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

Result<PosixFile>
PosixFile::openAppend(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
    if (fd < 0)
        return errnoStatus(("open for append: " + path).c_str(), errno);
    return PosixFile(fd);
}

Result<PosixFile>
PosixFile::createTruncate(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
    if (fd < 0)
        return errnoStatus(("create: " + path).c_str(), errno);
    return PosixFile(fd);
}

Status
PosixFile::writeAll(const void *data, std::size_t size)
{
    const auto *p = static_cast<const char *>(data);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd_, p + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("write", errno);
        }
        done += static_cast<std::size_t>(n);
    }
    return Status::ok();
}

Status
PosixFile::sync()
{
    if (::fsync(fd_) != 0)
        return errnoStatus("fsync", errno);
    return Status::ok();
}

Status
PosixFile::truncate(std::uint64_t size)
{
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
        return errnoStatus("ftruncate", errno);
    if (::lseek(fd_, 0, SEEK_END) < 0)
        return errnoStatus("lseek", errno);
    return Status::ok();
}

Result<std::uint64_t>
PosixFile::size() const
{
    struct stat sb = {};
    if (::fstat(fd_, &sb) != 0)
        return errnoStatus("fstat", errno);
    return static_cast<std::uint64_t>(sb.st_size);
}

Status
PosixFile::close()
{
    if (fd_ < 0)
        return Status::ok();
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0)
        return errnoStatus("close", errno);
    return Status::ok();
}

Status
renameFile(const std::string &from, const std::string &to)
{
    if (::rename(from.c_str(), to.c_str()) != 0)
        return errnoStatus(("rename " + from + " -> " + to).c_str(),
                           errno);
    return Status::ok();
}

Status
removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
        return errnoStatus(("unlink " + path).c_str(), errno);
    return Status::ok();
}

Status
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return errnoStatus(("open dir: " + dir).c_str(), errno);
    Status st = Status::ok();
    if (::fsync(fd) != 0)
        st = errnoStatus(("fsync dir: " + dir).c_str(), errno);
    ::close(fd);
    return st;
}

Result<std::string>
readFileBytes(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return errnoStatus(("open: " + path).c_str(), errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const Status st = errnoStatus(("read: " + path).c_str(),
                                          errno);
            ::close(fd);
            return st;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

} // namespace amdahl::durability
