/**
 * @file
 * Deterministic transient-IO fault injection.
 *
 * The durability layer wraps every disk operation (record append,
 * snapshot write, rename, fsync) in a bounded retry loop. This module
 * decides — purely as a function of (seed, operation id, attempt) —
 * whether a given attempt suffers an injected transient failure, and
 * how many *virtual* backoff units the retry waits.
 *
 * Virtual means counted, never slept: wall clock is forbidden in src/
 * (DET-clock), and a retry schedule that depended on real time would
 * break byte-identical replay. The injected-fault realization uses the
 * counter-based substreams from common/random.hh, so it is identical
 * across schedules, thread counts, and recovery replays — the same
 * property PR 5 established for bid-loss faults.
 *
 * When retries are exhausted the durable store surfaces an IoError
 * Status; the online runtime then degrades exactly like any other
 * resource failure — the FallbackPolicy ladder keeps serving
 * allocations while durability is reported as lost for the epoch.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_IO_FAULTS_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_IO_FAULTS_HH

#include <cstdint>

#include "common/status.hh"

namespace amdahl::durability {

/** Knobs for transient-IO fault injection. */
struct IoFaultOptions
{
    /** Master switch; false = no faults, zero overhead. */
    bool enabled = false;
    /** Substream seed; independent of the simulation seed so fault
     *  realizations do not perturb market draws. */
    std::uint64_t seed = 0x10fa0175ULL;
    /** Per-attempt failure probability in [0, 1). */
    double failureRate = 0.0;
    /** Attempts per operation before giving up (>= 1). */
    int maxRetries = 4;
};

/** @return DomainError when a knob is outside its documented range. */
Status validateIoFaultOptions(const IoFaultOptions &opts);

/**
 * Pure-function fault oracle over (opId, attempt) coordinates.
 *
 * Operation ids are handed out by nextOpId() in issue order; because
 * the durable pipeline performs operations in a deterministic order,
 * the (opId, attempt) coordinates — and therefore the entire fault
 * realization — are reproducible from the seed alone.
 */
class IoFaultInjector
{
  public:
    explicit IoFaultInjector(IoFaultOptions opts) : opts_(opts) {}

    /** @return true when attempt @p attempt (0-based) of operation
     *  @p opId should fail with an injected transient fault. */
    bool injectFailure(std::uint64_t opId, std::uint64_t attempt) const;

    /**
     * @return Virtual backoff units before retrying: exponential base
     * (1 << attempt) plus deterministic jitter in [0, 2^attempt) drawn
     * from the (opId, attempt) substream. Never consults a clock.
     */
    std::uint64_t backoffUnits(std::uint64_t opId,
                               std::uint64_t attempt) const;

    /** @return A fresh operation id (monotonic from 0). */
    std::uint64_t nextOpId() { return nextOp++; }

    /** @return The configured knobs. */
    const IoFaultOptions &options() const { return opts_; }

  private:
    IoFaultOptions opts_;
    std::uint64_t nextOp = 0;
};

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_IO_FAULTS_HH
