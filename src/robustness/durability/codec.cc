#include "robustness/durability/codec.hh"

#include <cstring>

namespace amdahl::durability {

namespace {

void
appendLe(std::string &buf, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

} // namespace

void
ByteWriter::putU32(std::uint32_t v)
{
    appendLe(buf, v, 4);
}

void
ByteWriter::putU64(std::uint64_t v)
{
    appendLe(buf, v, 8);
}

void
ByteWriter::putF64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    putU64(bits);
}

void
ByteWriter::putString(std::string_view s)
{
    putU64(s.size());
    buf.append(s.data(), s.size());
}

void
ByteWriter::putF64Vector(const std::vector<double> &v)
{
    putU64(v.size());
    for (double x : v)
        putF64(x);
}

void
ByteWriter::putU64Vector(const std::vector<std::uint64_t> &v)
{
    putU64(v.size());
    for (std::uint64_t x : v)
        putU64(x);
}

bool
ByteReader::need(std::size_t n, const char *what)
{
    if (!st.isOk())
        return false;
    if (in.size() - pos < n) {
        st = Status::error(ErrorKind::ParseError, 0, "truncated record: ",
                           what, " needs ", n, " bytes, ",
                           in.size() - pos, " remain at offset ", pos);
        return false;
    }
    return true;
}

std::uint32_t
ByteReader::readU32()
{
    if (!need(4, "u32"))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
ByteReader::readU64()
{
    if (!need(8, "u64"))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 8;
    return v;
}

double
ByteReader::readF64()
{
    const std::uint64_t bits = readU64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return st.isOk() ? v : 0.0;
}

std::string
ByteReader::readString()
{
    const std::uint64_t len = readU64();
    // The length prefix is untrusted: cap it by the bytes actually
    // present before allocating.
    if (st.isOk() && len > in.size() - pos) {
        st = Status::error(ErrorKind::ParseError, 0, "string length ",
                           len, " exceeds the ", in.size() - pos,
                           " bytes remaining at offset ", pos);
    }
    if (!need(static_cast<std::size_t>(len), "string body"))
        return {};
    std::string s(in.substr(pos, static_cast<std::size_t>(len)));
    pos += static_cast<std::size_t>(len);
    return s;
}

std::vector<double>
ByteReader::readF64Vector()
{
    const std::uint64_t count = readU64();
    if (st.isOk() && count > (in.size() - pos) / 8) {
        st = Status::error(ErrorKind::ParseError, 0, "vector count ",
                           count, " exceeds the ", (in.size() - pos) / 8,
                           " doubles remaining at offset ", pos);
    }
    std::vector<double> v;
    if (!st.isOk())
        return v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && st.isOk(); ++i)
        v.push_back(readF64());
    return v;
}

std::vector<std::uint64_t>
ByteReader::readU64Vector()
{
    const std::uint64_t count = readU64();
    if (st.isOk() && count > (in.size() - pos) / 8) {
        st = Status::error(ErrorKind::ParseError, 0, "vector count ",
                           count, " exceeds the ", (in.size() - pos) / 8,
                           " words remaining at offset ", pos);
    }
    std::vector<std::uint64_t> v;
    if (!st.isOk())
        return v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && st.isOk(); ++i)
        v.push_back(readU64());
    return v;
}

void
ByteReader::expectEnd()
{
    if (st.isOk() && pos != in.size()) {
        st = Status::error(ErrorKind::ParseError, 0, remaining(),
                           " unexpected trailing bytes after a "
                           "complete record");
    }
}

} // namespace amdahl::durability
