#include "robustness/durability/journal.hh"

#include <cerrno>
#include <filesystem>

#include "common/crc32.hh"
#include "robustness/durability/codec.hh"
#include "robustness/durability/kill_points.hh"

namespace amdahl::durability {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'J', 'L'};

std::string
encodeHeader()
{
    ByteWriter w;
    w.putU32(static_cast<std::uint32_t>(kMagic[0]) |
             static_cast<std::uint32_t>(kMagic[1]) << 8 |
             static_cast<std::uint32_t>(kMagic[2]) << 16 |
             static_cast<std::uint32_t>(kMagic[3]) << 24);
    w.putU32(Journal::kVersion);
    return w.take();
}

} // namespace

JournalScan
Journal::scan(const std::string &path)
{
    JournalScan out;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return out; // Fresh start: nothing to report.

    auto bytes = readFileBytes(path);
    if (!bytes.ok()) {
        out.notes.push_back("journal unreadable: " +
                            bytes.status().toString());
        return out;
    }
    const std::string data = bytes.take();
    if (data.empty()) {
        out.notes.emplace_back(
            "journal is zero-length (no header); treating as unusable");
        return out;
    }
    if (data.size() < kHeaderBytes ||
        data.compare(0, 4, kMagic, 4) != 0) {
        out.notes.emplace_back(
            "journal header is missing or has the wrong magic; "
            "treating the whole file as unusable");
        return out;
    }
    ByteReader hdr(std::string_view(data).substr(4, 4));
    const std::uint32_t version = hdr.readU32();
    if (version != kVersion) {
        out.notes.push_back(
            "journal version " + std::to_string(version) +
            " does not match supported version " +
            std::to_string(kVersion) + "; treating as unusable");
        return out;
    }

    out.usable = true;
    out.validBytes = kHeaderBytes;
    std::uint64_t pos = kHeaderBytes;
    while (pos < data.size()) {
        if (data.size() - pos < 8) {
            out.tornTail = true;
            out.notes.push_back("torn record frame at offset " +
                                std::to_string(pos) + ": only " +
                                std::to_string(data.size() - pos) +
                                " bytes of an 8-byte prefix");
            break;
        }
        ByteReader frame(std::string_view(data).substr(pos, 8));
        const std::uint32_t len = frame.readU32();
        const std::uint32_t want = frame.readU32();
        if (len > kMaxRecordBytes) {
            out.tornTail = true;
            out.notes.push_back(
                "implausible record length " + std::to_string(len) +
                " at offset " + std::to_string(pos) +
                "; treating the rest of the journal as corrupt");
            break;
        }
        if (data.size() - pos - 8 < len) {
            out.tornTail = true;
            out.notes.push_back(
                "torn record at offset " + std::to_string(pos) +
                ": payload needs " + std::to_string(len) + " bytes, " +
                std::to_string(data.size() - pos - 8) + " present");
            break;
        }
        const std::string_view payload =
            std::string_view(data).substr(pos + 8, len);
        const std::uint32_t got = crc32(payload);
        if (got != want) {
            out.tornTail = true;
            out.notes.push_back(
                "checksum mismatch at offset " + std::to_string(pos) +
                "; treating the rest of the journal as corrupt");
            break;
        }
        pos += 8 + len;
        out.records.push_back(
            ScannedRecord{std::string(payload), pos});
        out.validBytes = pos;
    }
    return out;
}

Result<Journal>
Journal::create(const std::string &path, IoContext &io)
{
    const std::string header = encodeHeader();
    PosixFile file;
    const Status st = io.run("journal create", [&]() -> Status {
        auto opened = PosixFile::createTruncate(path);
        if (!opened.ok())
            return opened.status();
        file = opened.take();
        if (Status w = file.writeAll(header.data(), header.size());
            !w.isOk())
            return w;
        return file.sync();
    });
    if (!st.isOk())
        return st;
    return Journal(std::move(file), kHeaderBytes);
}

Result<Journal>
Journal::openResume(const std::string &path, std::uint64_t validBytes,
                    IoContext &io)
{
    if (validBytes < kHeaderBytes)
        return Status::error(ErrorKind::SemanticError, 0,
                             "cannot resume a journal without a usable "
                             "header; start fresh instead");
    PosixFile file;
    const Status st = io.run("journal resume", [&]() -> Status {
        auto opened = PosixFile::openAppend(path);
        if (!opened.ok())
            return opened.status();
        file = opened.take();
        // Discard the torn tail so the next append starts at the end
        // of the verified prefix.
        if (Status t = file.truncate(validBytes); !t.isOk())
            return t;
        return file.sync();
    });
    if (!st.isOk())
        return st;
    return Journal(std::move(file), validBytes);
}

Status
Journal::append(std::string_view payload, IoContext &io)
{
    ByteWriter frame;
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putU32(crc32(payload));
    std::string record = frame.take();
    record.append(payload.data(), payload.size());

    killPoint("journal.pre_append");
    const std::uint64_t before = size_;
    const Status st = io.run("journal append", [&]() -> Status {
        // A failed earlier attempt may have left partial bytes; put
        // the file back to the verified size before writing again.
        auto sized = file_.size();
        if (!sized.ok())
            return sized.status();
        if (sized.value() != before) {
            if (Status t = file_.truncate(before); !t.isOk())
                return t;
        }
        const std::size_t half = record.size() / 2;
        if (Status w = file_.writeAll(record.data(), half); !w.isOk())
            return w;
        // Torn-write crash site: the first half of the record is in
        // the OS buffer (and possibly on disk), the rest never lands.
        killPoint("journal.mid_append");
        if (Status w = file_.writeAll(record.data() + half,
                                      record.size() - half);
            !w.isOk())
            return w;
        return file_.sync();
    });
    if (!st.isOk())
        return st;
    size_ = before + record.size();
    killPoint("journal.post_append");
    return Status::ok();
}

Status
Journal::reset(IoContext &io)
{
    killPoint("journal.pre_reset");
    const Status st = io.run("journal reset", [&]() -> Status {
        if (Status t = file_.truncate(kHeaderBytes); !t.isOk())
            return t;
        return file_.sync();
    });
    if (!st.isOk())
        return st;
    size_ = kHeaderBytes;
    killPoint("journal.post_reset");
    return Status::ok();
}

} // namespace amdahl::durability
