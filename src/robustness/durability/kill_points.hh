/**
 * @file
 * Deterministic crash injection for the durability commit path.
 *
 * A kill point is a named site inside the epoch persistence pipeline
 * (see the catalog below). Arming one makes the process hard-exit with
 * kKillExitCode the Nth time execution reaches that site — simulating
 * a crash at exactly that point in the commit protocol, including
 * mid-write sites that leave a torn record on disk.
 *
 * Arming is a programmatic API: the amdahl_market CLI translates its
 * --kill-point flag (or the AMDAHL_KILL_POINT environment variable)
 * into armKillPoint() in tools/, keeping environment probes out of
 * src/ per the DET-exec contract. The chaos harness
 * (tools/chaos_recovery.py) drives the full site × occurrence matrix
 * and asserts recovery equivalence after every kill.
 *
 * The exit is std::_Exit: no atexit handlers, no stream flushes, no
 * destructors — the closest portable approximation of SIGKILL, and it
 * keeps LeakSanitizer from reporting the deliberately abandoned heap.
 */

#ifndef AMDAHL_ROBUSTNESS_DURABILITY_KILL_POINTS_HH
#define AMDAHL_ROBUSTNESS_DURABILITY_KILL_POINTS_HH

#include <string_view>
#include <vector>

#include "common/status.hh"

namespace amdahl::durability {

/** Exit code of a process that died at an armed kill point. */
constexpr int kKillExitCode = 86;

/**
 * Every registered crash site, in pipeline order. A site string is
 * stable API: tests and the chaos harness iterate this catalog.
 */
const std::vector<std::string_view> &killPointCatalog();

/**
 * Arm one kill point.
 *
 * @param spec "site" (first hit kills) or "site:N" (the Nth hit kills,
 *             1-based). Arming replaces any previously armed point and
 *             resets hit counting.
 * @return DomainError for an unknown site or an unparsable/zero N.
 */
Status armKillPoint(std::string_view spec);

/** Disarm and reset hit counting (used between in-process tests). */
void disarmKillPoints();

/**
 * Crash site marker. No-op unless @p site is armed and this is the
 * armed occurrence; then the process exits immediately with
 * kKillExitCode.
 */
void killPoint(std::string_view site);

} // namespace amdahl::durability

#endif // AMDAHL_ROBUSTNESS_DURABILITY_KILL_POINTS_HH
