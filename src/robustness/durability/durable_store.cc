#include "robustness/durability/durable_store.hh"

#include <filesystem>

#include "robustness/durability/codec.hh"
#include "robustness/durability/kill_points.hh"

namespace amdahl::durability {

Status
validateDurabilityOptions(const DurabilityOptions &opts)
{
    if (opts.stateDir.empty())
        return Status::error(ErrorKind::DomainError, 0,
                             "state directory must not be empty");
    if (opts.snapshotEvery < 0)
        return Status::error(ErrorKind::DomainError, 0,
                             "snapshot cadence must be >= 0 (0 = final "
                             "snapshot only), got ",
                             opts.snapshotEvery);
    if (opts.keepSnapshots < 1)
        return Status::error(ErrorKind::DomainError, 0,
                             "kept snapshot generations must be >= 1, "
                             "got ",
                             opts.keepSnapshots);
    return validateIoFaultOptions(opts.ioFaults);
}

std::string
encodeSnapshotEnvelope(const OnlineSnapshotEnvelope &env)
{
    ByteWriter w;
    w.putU32(env.completed ? 1 : 0);
    w.putU64(env.traceBytes);
    w.putU64(env.traceSeq);
    w.putString(env.state);
    return w.take();
}

Result<OnlineSnapshotEnvelope>
decodeSnapshotEnvelope(std::string_view payload)
{
    ByteReader r(payload);
    OnlineSnapshotEnvelope env;
    const std::uint32_t completed = r.readU32();
    env.traceBytes = r.readU64();
    env.traceSeq = r.readU64();
    env.state = r.readString();
    r.expectEnd();
    if (!r.ok())
        return r.status();
    if (completed > 1)
        return Status::error(ErrorKind::SemanticError, 0,
                             "snapshot envelope completed flag is ",
                             completed, "; expected 0 or 1");
    env.completed = completed == 1;
    return env;
}

std::string
DurableStateStore::encodeEntry(const JournalEntry &entry)
{
    ByteWriter w;
    w.putU64(entry.epoch);
    w.putU32(entry.eventCrc);
    w.putU64(entry.traceBytes);
    w.putU64(entry.traceSeq);
    return w.take();
}

Result<JournalEntry>
DurableStateStore::decodeEntry(std::string_view payload)
{
    ByteReader r(payload);
    JournalEntry entry;
    entry.epoch = r.readU64();
    entry.eventCrc = r.readU32();
    entry.traceBytes = r.readU64();
    entry.traceSeq = r.readU64();
    r.expectEnd();
    if (!r.ok())
        return r.status();
    if (entry.epoch == 0)
        return Status::error(ErrorKind::SemanticError, 0,
                             "journal entry has epoch 0; committed "
                             "epochs are 1-based");
    return entry;
}

Result<DurableStateStore>
DurableStateStore::open(DurabilityOptions opts)
{
    if (Status st = validateDurabilityOptions(opts); !st.isOk())
        return st;
    std::error_code ec;
    std::filesystem::create_directories(opts.stateDir, ec);
    if (ec)
        return Status::error(ErrorKind::IoError, 0,
                             "cannot create state directory ",
                             opts.stateDir, ": ", ec.message());
    return DurableStateStore(std::move(opts));
}

RecoveredState
DurableStateStore::recover() const
{
    RecoveredState rec;

    const SnapshotLoad snap = snapshots_.loadLatest();
    for (const std::string &note : snap.rejected)
        rec.notes.push_back("snapshot rejected: " + note);
    if (snap.snapshot) {
        rec.hasSnapshot = true;
        rec.snapshotEpoch = snap.snapshot->epoch;
        rec.snapshotPayload = snap.snapshot->payload;
    }

    const JournalScan scan = Journal::scan(journalPath());
    for (const std::string &note : scan.notes)
        rec.notes.push_back("journal: " + note);
    rec.journalUsable = scan.usable;
    rec.tornTail = scan.tornTail;
    rec.journalValidBytes =
        scan.usable ? scan.validBytes : Journal::kHeaderBytes;

    // Decode the verified records into entries, keeping only the
    // strictly contiguous run that continues the snapshot. Records at
    // or before the snapshot epoch are the normal residue of a crash
    // between a snapshot and its journal reset — skipped, but still
    // part of the valid prefix. Anything out of order (gap, duplicate,
    // undecodable payload) ends the usable prefix with a note, and the
    // journal is truncated there on resume.
    std::uint64_t lastAccepted = rec.snapshotEpoch;
    std::uint64_t acceptedValidBytes = Journal::kHeaderBytes;
    bool sawStale = false;
    for (const ScannedRecord &record : scan.records) {
        auto decoded = decodeEntry(record.payload);
        if (!decoded.ok()) {
            rec.notes.push_back("journal: undecodable record before "
                                "offset " +
                                std::to_string(record.endOffset) + ": " +
                                decoded.status().message());
            rec.tornTail = true;
            break;
        }
        const JournalEntry entry = decoded.take();
        if (entry.epoch <= rec.snapshotEpoch) {
            sawStale = true;
            acceptedValidBytes = record.endOffset;
            continue;
        }
        if (entry.epoch != lastAccepted + 1) {
            rec.notes.push_back(
                "journal: record for epoch " +
                std::to_string(entry.epoch) + " breaks contiguity "
                "(expected epoch " +
                std::to_string(lastAccepted + 1) +
                "); discarding it and the rest of the journal");
            rec.tornTail = true;
            break;
        }
        rec.entries.push_back(entry);
        lastAccepted = entry.epoch;
        acceptedValidBytes = record.endOffset;
    }
    rec.journalValidBytes =
        scan.usable ? acceptedValidBytes : Journal::kHeaderBytes;
    if (sawStale)
        rec.notes.emplace_back(
            "journal: skipped records at or before the snapshot epoch "
            "(crash between snapshot and journal reset)");
    return rec;
}

Status
DurableStateStore::beginFresh()
{
    // Drop every artifact this store owns; unrelated files in the
    // directory are left alone.
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opts_.stateDir, ec)) {
        const std::string name = entry.path().filename().string();
        const bool ours =
            name == "journal.amjl" ||
            (name.starts_with("snapshot-") &&
             (name.ends_with(".amss") || name.ends_with(".amss.tmp")));
        if (ours) {
            if (Status st = removeFile(entry.path().string());
                !st.isOk())
                return st;
        }
    }
    auto journal = Journal::create(journalPath(), io_);
    if (!journal.ok())
        return journal.status();
    journal_ = journal.take();
    lastSnapshotEpoch_ = 0;
    return Status::ok();
}

Status
DurableStateStore::beginResume(const RecoveredState &rec)
{
    if (rec.journalUsable) {
        auto journal =
            Journal::openResume(journalPath(), rec.journalValidBytes,
                                io_);
        if (!journal.ok())
            return journal.status();
        journal_ = journal.take();
    } else {
        // The journal file itself was unusable (zero-length, bad
        // magic, version skew): its epochs are lost, but the snapshot
        // is intact — re-create the journal and continue from there.
        auto journal = Journal::create(journalPath(), io_);
        if (!journal.ok())
            return journal.status();
        journal_ = journal.take();
    }
    lastSnapshotEpoch_ = rec.snapshotEpoch;
    return Status::ok();
}

Status
DurableStateStore::takeSnapshot(
    std::uint64_t epoch, const std::function<std::string()> &encodeState)
{
    const std::string payload = encodeState();
    if (Status st = snapshots_.write(epoch, payload, io_); !st.isOk())
        return st;
    ++counters_->snapshotsWritten;
    if (Status st = journal_->reset(io_); !st.isOk())
        return st;
    ++counters_->journalResets;
    lastSnapshotEpoch_ = epoch;
    return Status::ok();
}

Status
DurableStateStore::commitEpoch(
    const JournalEntry &entry,
    const std::function<std::string()> &encodeState)
{
    if (!journal_)
        return Status::error(ErrorKind::SemanticError, 0,
                             "commitEpoch before beginFresh/"
                             "beginResume");
    killPoint("epoch.pre_commit");
    if (Status st = journal_->append(encodeEntry(entry), io_);
        !st.isOk())
        return st;
    ++counters_->journalAppends;
    if (opts_.snapshotEvery > 0 &&
        entry.epoch >= lastSnapshotEpoch_ +
                           static_cast<std::uint64_t>(opts_.snapshotEvery)) {
        if (Status st = takeSnapshot(entry.epoch, encodeState);
            !st.isOk())
            return st;
    }
    killPoint("epoch.post_commit");
    return Status::ok();
}

Status
DurableStateStore::finishRun(
    std::uint64_t epoch, const std::function<std::string()> &encodeState)
{
    if (!journal_)
        return Status::error(ErrorKind::SemanticError, 0,
                             "finishRun before beginFresh/beginResume");
    // Always rewrite the final snapshot, even when the cadence already
    // anchored at this epoch: the finishing envelope differs (its
    // completed flag and trace frontier cover the run_end event).
    return takeSnapshot(epoch, encodeState);
}

} // namespace amdahl::durability
