#include "robustness/durability/kill_points.hh"

#include <cstdint>
#include <cstdlib>
#include <string>

namespace amdahl::durability {

namespace {

/** Armed-point state; function-local so lint's CONC-global scope
 *  (namespace-level mutables) stays clean. The durability pipeline is
 *  driven from the simulator thread only. */
struct Armed
{
    std::string site;          //!< Empty = disarmed.
    std::uint64_t occurrence = 1;
    std::uint64_t hits = 0;
};

Armed &
armed()
{
    static Armed a;
    return a;
}

} // namespace

const std::vector<std::string_view> &
killPointCatalog()
{
    // Pipeline order: the commit protocol in DESIGN.md §13 walks these
    // top to bottom each epoch.
    static const std::vector<std::string_view> catalog{
        "epoch.pre_commit",     // before any durable work this epoch
        "journal.pre_append",   // record encoded, nothing written
        "journal.mid_append",   // half the record bytes on disk (torn)
        "journal.post_append",  // record written + fsynced
        "snapshot.pre_write",   // snapshot encoded, temp not created
        "snapshot.mid_write",   // half the temp file on disk (torn)
        "snapshot.pre_rename",  // temp complete + fsynced, not renamed
        "snapshot.post_rename", // renamed, directory not yet fsynced
        "journal.pre_reset",    // snapshot durable, journal still full
        "journal.post_reset",   // journal truncated to a fresh header
        "epoch.post_commit",    // everything durable for this epoch
    };
    return catalog;
}

Status
armKillPoint(std::string_view spec)
{
    std::string_view site = spec;
    std::uint64_t occurrence = 1;
    if (const auto colon = spec.rfind(':');
        colon != std::string_view::npos) {
        site = spec.substr(0, colon);
        const std::string_view n = spec.substr(colon + 1);
        occurrence = 0;
        for (const char c : n) {
            if (c < '0' || c > '9')
                return Status::error(ErrorKind::DomainError, 0,
                                     "kill-point occurrence `", n,
                                     "` is not a positive integer");
            occurrence = occurrence * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (n.empty() || occurrence == 0)
            return Status::error(ErrorKind::DomainError, 0,
                                 "kill-point occurrence `", n,
                                 "` is not a positive integer");
    }
    const auto &catalog = killPointCatalog();
    bool known = false;
    for (const std::string_view s : catalog)
        known = known || s == site;
    if (!known)
        return Status::error(ErrorKind::DomainError, 0,
                             "unknown kill point `", site,
                             "`; see --list-kill-points");
    armed() = Armed{std::string(site), occurrence, 0};
    return Status::ok();
}

void
disarmKillPoints()
{
    armed() = Armed{};
}

void
killPoint(std::string_view site)
{
    Armed &a = armed();
    if (a.site.empty() || a.site != site)
        return;
    if (++a.hits == a.occurrence) {
        // Hard exit: no flushes, no destructors — a simulated crash.
        std::_Exit(kKillExitCode);
    }
}

} // namespace amdahl::durability
