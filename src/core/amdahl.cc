#include "amdahl.hh"

#include <limits>

#include "common/logging.hh"

namespace amdahl::core {

namespace {

void
checkFraction(double f)
{
    if (f < 0.0 || f > 1.0)
        fatal("parallel fraction ", f, " outside [0, 1]");
}

} // namespace

double
amdahlSpeedup(double f, double x)
{
    checkFraction(f);
    if (x < 0.0)
        fatal("core allocation must be non-negative, got ", x);
    const double denom = f + (1.0 - f) * x;
    if (denom == 0.0)
        return 0.0; // f == 0, x == 0.
    return x / denom;
}

double
amdahlSpeedupDerivative(double f, double x)
{
    checkFraction(f);
    if (x < 0.0)
        fatal("core allocation must be non-negative, got ", x);
    const double denom = f + (1.0 - f) * x;
    if (denom == 0.0)
        fatal("speedup derivative undefined at f == 0, x == 0");
    return f / (denom * denom);
}

double
amdahlSpeedupLimit(double f)
{
    checkFraction(f);
    if (f == 1.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (1.0 - f);
}

double
karpFlatt(double speedup, double x)
{
    if (speedup <= 0.0)
        fatal("speedup must be positive, got ", speedup);
    if (x <= 1.0)
        fatal("Karp-Flatt needs more than one core, got ", x);
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / x);
}

double
coresForSpeedup(double f, double target)
{
    checkFraction(f);
    if (f == 0.0)
        fatal("a serial workload cannot be sped up");
    if (target < 0.0)
        fatal("target speedup must be non-negative, got ", target);
    if (target >= amdahlSpeedupLimit(f)) {
        fatal("target speedup ", target, " unreachable; limit is ",
              amdahlSpeedupLimit(f));
    }
    // Solve s = x / (f + (1-f) x) for x: x = s f / (1 - s (1-f)).
    return target * f / (1.0 - target * (1.0 - f));
}

} // namespace amdahl::core
