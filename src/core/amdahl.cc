#include "amdahl.hh"

#include <limits>

#include "common/check.hh"
#include "common/logging.hh"

namespace amdahl::core {

namespace {

void
checkFraction(double f)
{
    if (f < 0.0 || f > 1.0)
        fatal("parallel fraction ", f, " outside [0, 1]");
}

} // namespace

double
amdahlSpeedup(double f, double x)
{
    checkFraction(f);
    if (x < 0.0)
        fatal("core allocation must be non-negative, got ", x);
    const double denom = f + (1.0 - f) * x;
    if (denom == 0.0)
        return 0.0; // f == 0, x == 0.
    AMDAHL_CHECK_FINITE(x / denom);
    return x / denom;
}

double
amdahlSpeedupDerivative(double f, double x)
{
    checkFraction(f);
    if (x < 0.0)
        fatal("core allocation must be non-negative, got ", x);
    const double denom = f + (1.0 - f) * x;
    if (denom == 0.0) {
        // f == 0, x == 0: a serial workload's speedup is the constant
        // 1, so its derivative extends continuously to 0.
        return 0.0;
    }
    return f / (denom * denom);
}

double
amdahlSpeedupLimit(double f)
{
    checkFraction(f);
    if (f == 1.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (1.0 - f);
}

double
karpFlatt(double speedup, double x)
{
    if (speedup <= 0.0)
        fatal("speedup must be positive, got ", speedup);
    if (x < 1.0)
        fatal("Karp-Flatt needs at least one core, got ", x);
    if (x == 1.0) {
        // The metric is 0/0 at a single core: no parallelism is
        // observable. Return the clamped one-sided limit instead of
        // dividing by zero — fully serial when no speedup was
        // measured, fully parallel for (nonsensical) superlinear
        // single-core speedups.
        return speedup > 1.0 ? 1.0 : 0.0;
    }
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / x);
}

double
coresForSpeedup(double f, double target)
{
    checkFraction(f);
    if (f == 0.0)
        fatal("a serial workload cannot be sped up");
    if (target < 0.0)
        fatal("target speedup must be non-negative, got ", target);
    if (target >= amdahlSpeedupLimit(f)) {
        fatal("target speedup ", target, " unreachable; limit is ",
              amdahlSpeedupLimit(f));
    }
    // Solve s = x / (f + (1-f) x) for x: x = s f / (1 - s (1-f)).
    AMDAHL_CHECK_FINITE(target * f / (1.0 - target * (1.0 - f)));
    return target * f / (1.0 - target * (1.0 - f));
}

} // namespace amdahl::core
