#include "entitlement.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace amdahl::core {

std::vector<double>
entitledCoresPerUser(const FisherMarket &market)
{
    std::vector<double> entitled(market.userCount());
    for (std::size_t i = 0; i < market.userCount(); ++i)
        entitled[i] = market.entitledCores(i);
    return entitled;
}

namespace {

template <typename Matrix>
std::vector<double>
sumPerUser(const FisherMarket &market, const Matrix &allocation)
{
    if (allocation.size() != market.userCount())
        fatal("allocation has wrong user count");
    std::vector<double> totals(market.userCount(), 0.0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        if (allocation[i].size() != market.user(i).jobs.size())
            fatal("allocation for user ", i, " has wrong job count");
        for (const auto x : allocation[i])
            totals[i] += static_cast<double>(x);
    }
    return totals;
}

} // namespace

std::vector<double>
allocatedCoresPerUser(const FisherMarket &market,
                      const JobMatrix &allocation)
{
    return sumPerUser(market, allocation);
}

std::vector<double>
allocatedCoresPerUser(const FisherMarket &market,
                      const std::vector<std::vector<int>> &allocation)
{
    return sumPerUser(market, allocation);
}

double
entitlementMape(const FisherMarket &market, const JobMatrix &allocation)
{
    return meanAbsolutePercentageError(
        allocatedCoresPerUser(market, allocation),
        entitledCoresPerUser(market));
}

} // namespace amdahl::core
