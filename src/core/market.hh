/**
 * @file
 * The Fisher market for processor cores (Section V-B/C).
 *
 * The system has n users and m servers; server j holds C_j cores. Each
 * user runs one or more jobs, each assigned to a server and characterized
 * by a parallel fraction f and work rate w. Users receive budgets
 * proportional to their datacenter-wide entitlements and bid budget on
 * the servers that run their jobs.
 *
 * A price vector p and allocation x form a *market equilibrium* when
 * (1) every server clears — sum_i x_ij = C_j — and (2) every user's
 * allocation maximizes her Amdahl utility subject to her budget. This
 * header defines the market description, outcomes, and an equilibrium
 * verifier; the Amdahl Bidding procedure that finds the equilibrium
 * lives in bidding.hh.
 */

#ifndef AMDAHL_CORE_MARKET_HH
#define AMDAHL_CORE_MARKET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/utility.hh"

namespace amdahl::core {

/** One job: a workload instance pinned to a server. */
struct JobSpec
{
    std::size_t server = 0;        //!< Index of the hosting server.
    double parallelFraction = 0.5; //!< f_ij (estimated via Karp-Flatt).
    double weight = 1.0;           //!< w_ij, work rate at one core.
};

/** One market participant. */
struct MarketUser
{
    std::string name;          //!< Diagnostic label.
    double budget = 1.0;       //!< b_i, proportional to entitlement.
    std::vector<JobSpec> jobs; //!< At least one.
};

/**
 * Immutable description of one allocation problem.
 */
class FisherMarket
{
  public:
    /** @param capacities C_j per server, each positive. */
    explicit FisherMarket(std::vector<double> capacities);

    /** Add a participant. @return Her index. */
    std::size_t addUser(MarketUser user);

    /** @return Number of users n. */
    std::size_t userCount() const { return users_.size(); }

    /** @return Number of servers m. */
    std::size_t serverCount() const { return capacities_.size(); }

    /** @return User i. */
    const MarketUser &user(std::size_t i) const;

    /** @return Capacity vector. */
    const std::vector<double> &capacities() const { return capacities_; }

    /** @return C_j. */
    double capacity(std::size_t j) const;

    /** @return Sum of user budgets B. */
    double totalBudget() const { return budgetSum; }

    /** @return Sum of server capacities. */
    double totalCores() const;

    /**
     * Check solvability: at least one user, every user has a job and a
     * positive budget, and every server hosts at least one job (a
     * bidder-less server cannot clear).
     *
     * @throws FatalError when the market is degenerate.
     */
    void validate() const;

    /** @return b_i / B, user i's entitlement share. */
    double entitlementShare(std::size_t i) const;

    /**
     * @return User i's datacenter-wide entitled cores,
     * (b_i / B) * sum_j C_j.
     */
    double entitledCores(std::size_t i) const;

    /**
     * @return User i's per-server entitlement on server j,
     * x_ent_ij = (b_i / B) * C_j.
     */
    double entitledCoresOnServer(std::size_t i, std::size_t j) const;

    /** @return User i's Amdahl utility function (one term per job). */
    AmdahlUtility utilityOf(std::size_t i) const;

  private:
    std::vector<double> capacities_;
    std::vector<MarketUser> users_;
    double budgetSum = 0.0;
};

/**
 * Per-user, per-job matrices (bids or allocations); outer index is the
 * user, inner index matches MarketUser::jobs order.
 */
using JobMatrix = std::vector<std::vector<double>>;

/**
 * Network-facing diagnostics of a sharded clearing solve (src/net/).
 * All-zero for in-process solves, so the struct is free to carry on
 * every outcome. The fallback ladder reads these to attribute *why* a
 * serve was degraded (deadline_expired / partition / quorum_floor).
 */
struct NetOutcomeStats
{
    /** Rounds cleared on a partial quorum with stale aggregates. */
    std::uint64_t degradedRounds = 0;
    /** Shard-rounds where a silent shard's last bids stood in. */
    std::uint64_t staleBidRounds = 0;
    /** Bid-aggregate retransmissions across the solve. */
    std::uint64_t retransmits = 0;
    /** Shards re-admitted with damped warm-start re-entry. */
    std::uint64_t healedReentries = 0;
    /** Smallest usable-shard quorum seen in any round. */
    std::uint64_t minQuorum = 0;
    /** At least one degraded round overlapped a scheduled partition. */
    bool partitionDegraded = false;
    /** The usable quorum fell below the configured floor and the
     *  solve aborted (always non-converged). */
    bool quorumCollapsed = false;

    /**
     * Virtual-time critical-path attribution, in ticks. Every round's
     * latency (price broadcast to barrier close) is charged exactly
     * once: fresh rounds split between message transit (delayTicks)
     * and retransmit backoff (retransmitTicks) along the closing
     * chain; degraded or collapsed rounds charge the whole barrier
     * window to partitionWaitTicks (a scheduled partition silenced a
     * missing shard) or quorumWaitTicks (loss/delay starved the
     * barrier). The invariant `delayTicks + retransmitTicks +
     * partitionWaitTicks + quorumWaitTicks == latencyTicks` holds by
     * construction; compute is instantaneous in virtual time, so a
     * zero-tick round is attributed 100% to compute. bench_ablation_-
     * network asserts the invariant per fault mix, and the round
     * `span` trace events carry the same per-round breakdown.
     */
    std::uint64_t latencyTicks = 0;
    std::uint64_t delayTicks = 0;
    std::uint64_t retransmitTicks = 0;
    std::uint64_t partitionWaitTicks = 0;
    std::uint64_t quorumWaitTicks = 0;
};

/** Result of running a market mechanism. */
struct MarketOutcome
{
    std::vector<double> prices; //!< p_j per server.
    JobMatrix allocation;       //!< x_ij fractional cores per job.
    JobMatrix bids;             //!< b_ij spend per job.
    int iterations = 0;         //!< Bidding rounds executed.
    bool converged = false;     //!< Price-change threshold reached.

    /** An anytime deadline fired before convergence; prices/bids are
     *  the best budget-feasible state reached, not an equilibrium. */
    bool deadlineExpired = false;

    /** Wall-clock seconds spent in the solve loop. Only measured when
     *  a wall-clock deadline is armed (the clock is never read
     *  otherwise, keeping deadline-free runs bit-identical). */
    double elapsedSeconds = 0.0;

    /** Sharded-transport diagnostics; all-zero for in-process solves. */
    NetOutcomeStats net;

    /** @return Total cores user i holds across all her jobs. */
    double userCores(std::size_t i) const;

    /** @return Sum of allocations on server j under the given market. */
    double serverLoad(const FisherMarket &market, std::size_t j) const;
};

/** Residuals of the two equilibrium conditions. */
struct EquilibriumCheck
{
    /** max_j |sum_i x_ij - C_j| / C_j — the market-clearing residual. */
    double maxClearingResidual = 0.0;

    /** max_i |sum_j b_ij - b_i| / b_i — budget exhaustion residual. */
    double maxBudgetResidual = 0.0;

    /**
     * max_i relative gap between the user's achieved utility and her
     * optimal price-taking utility at the outcome's prices (computed by
     * the closed-form water-filling solver).
     */
    double maxOptimalityGap = 0.0;

    /** @return true when all residuals are within tol. */
    bool pass(double tol = 1e-4) const;
};

/**
 * Verify that an outcome is (approximately) a market equilibrium.
 *
 * @param market  The market description.
 * @param outcome Prices/allocations/bids to check.
 */
EquilibriumCheck verifyEquilibrium(const FisherMarket &market,
                                   const MarketOutcome &outcome);

} // namespace amdahl::core

#endif // AMDAHL_CORE_MARKET_HH
