#include "market.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "solver/water_filling.hh"

namespace amdahl::core {

FisherMarket::FisherMarket(std::vector<double> capacities)
    : capacities_(std::move(capacities))
{
    if (capacities_.empty())
        fatal("market needs at least one server");
    for (std::size_t j = 0; j < capacities_.size(); ++j) {
        if (!std::isfinite(capacities_[j]) || capacities_[j] <= 0.0)
            fatal("server ", j, " has non-positive capacity ",
                  capacities_[j]);
    }
}

std::size_t
FisherMarket::addUser(MarketUser user)
{
    // The < / > range tests below are false for NaN, so non-finiteness
    // must be rejected explicitly — a NaN budget or fraction would
    // otherwise poison budgetSum and every price downstream.
    if (!std::isfinite(user.budget) || user.budget <= 0.0)
        fatal("user '", user.name, "' has non-positive budget ",
              user.budget);
    if (user.jobs.empty())
        fatal("user '", user.name, "' has no jobs");
    for (const auto &job : user.jobs) {
        if (job.server >= capacities_.size()) {
            fatal("user '", user.name, "' has a job on server ",
                  job.server, " but there are only ", capacities_.size(),
                  " servers");
        }
        if (!std::isfinite(job.parallelFraction) ||
            job.parallelFraction < 0.0 || job.parallelFraction > 1.0) {
            fatal("user '", user.name, "' job has parallel fraction ",
                  job.parallelFraction, " outside [0, 1]");
        }
        if (!std::isfinite(job.weight) || job.weight <= 0.0) {
            fatal("user '", user.name, "' job has non-positive weight ",
                  job.weight);
        }
    }
    budgetSum += user.budget;
    users_.push_back(std::move(user));
    return users_.size() - 1;
}

const MarketUser &
FisherMarket::user(std::size_t i) const
{
    if (i >= users_.size())
        fatal("user index ", i, " out of range (", users_.size(), ")");
    return users_[i];
}

double
FisherMarket::capacity(std::size_t j) const
{
    if (j >= capacities_.size()) {
        fatal("server index ", j, " out of range (", capacities_.size(),
              ")");
    }
    return capacities_[j];
}

double
FisherMarket::totalCores() const
{
    double total = 0.0;
    for (double c : capacities_)
        total += c;
    return total;
}

void
FisherMarket::validate() const
{
    if (users_.empty())
        fatal("market has no users");
    std::vector<bool> has_job(capacities_.size(), false);
    for (const auto &user : users_)
        for (const auto &job : user.jobs)
            has_job[job.server] = true;
    for (std::size_t j = 0; j < capacities_.size(); ++j) {
        if (!has_job[j]) {
            fatal("server ", j,
                  " hosts no jobs; it cannot clear in a market");
        }
    }
}

double
FisherMarket::entitlementShare(std::size_t i) const
{
    return user(i).budget / budgetSum;
}

double
FisherMarket::entitledCores(std::size_t i) const
{
    return entitlementShare(i) * totalCores();
}

double
FisherMarket::entitledCoresOnServer(std::size_t i, std::size_t j) const
{
    return entitlementShare(i) * capacity(j);
}

AmdahlUtility
FisherMarket::utilityOf(std::size_t i) const
{
    const auto &u = user(i);
    std::vector<UtilityTerm> terms;
    terms.reserve(u.jobs.size());
    for (const auto &job : u.jobs)
        terms.push_back({job.parallelFraction, job.weight});
    return AmdahlUtility(std::move(terms));
}

double
MarketOutcome::userCores(std::size_t i) const
{
    if (i >= allocation.size())
        fatal("user index ", i, " out of range in outcome");
    double total = 0.0;
    for (double x : allocation[i])
        total += x;
    return total;
}

double
MarketOutcome::serverLoad(const FisherMarket &market, std::size_t j) const
{
    double load = 0.0;
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            if (jobs[k].server == j)
                load += allocation[i][k];
        }
    }
    return load;
}

bool
EquilibriumCheck::pass(double tol) const
{
    return maxClearingResidual <= tol && maxBudgetResidual <= tol &&
           maxOptimalityGap <= tol;
}

EquilibriumCheck
verifyEquilibrium(const FisherMarket &market, const MarketOutcome &outcome)
{
    if (outcome.prices.size() != market.serverCount())
        fatal("outcome has wrong price vector size");
    if (outcome.allocation.size() != market.userCount() ||
        outcome.bids.size() != market.userCount()) {
        fatal("outcome has wrong user count");
    }

    obs::ScopedTimer verify_timer(
        obs::timeHistogram("time.market.verify_us"));
    obs::metrics().counter("market.equilibrium_verifications").add();

    EquilibriumCheck check;

    // Contract: an outcome under verification has positive, finite
    // prices and non-negative, finite bids — otherwise the residuals
    // below are meaningless.
    if constexpr (checkedBuild) {
        invariants::CheckMarketState(outcome.prices, outcome.bids,
                                     "verifyEquilibrium");
    }

    // Condition 1: every server clears.
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        const double load = outcome.serverLoad(market, j);
        const double residual =
            std::abs(load - market.capacity(j)) / market.capacity(j);
        AMDAHL_CHECK_FINITE(residual);
        check.maxClearingResidual =
            std::max(check.maxClearingResidual, residual);
    }

    // Condition 2: each user's allocation solves her budget-constrained
    // utility maximization at the posted prices. The closed-form
    // water-filling solver gives the optimum to compare against.
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &user = market.user(i);
        double spent = 0.0;
        for (double b : outcome.bids[i])
            spent += b;
        check.maxBudgetResidual =
            std::max(check.maxBudgetResidual,
                     std::abs(spent - user.budget) / user.budget);

        std::vector<solver::WaterFillItem> items;
        items.reserve(user.jobs.size());
        for (const auto &job : user.jobs) {
            items.push_back({job.weight, job.parallelFraction,
                             outcome.prices[job.server]});
        }
        const auto best = solver::waterFill(items, user.budget);

        double actual = 0.0;
        for (std::size_t k = 0; k < user.jobs.size(); ++k) {
            actual += user.jobs[k].weight *
                      amdahlSpeedup(user.jobs[k].parallelFraction,
                                    outcome.allocation[i][k]);
        }
        if (best.utility > 0.0) {
            const double gap = (best.utility - actual) / best.utility;
            AMDAHL_CHECK_FINITE(gap);
            check.maxOptimalityGap =
                std::max(check.maxOptimalityGap, gap);
        }
    }
    // Published so an operator can watch certificate quality drift
    // without parsing bench output.
    auto &reg = obs::metrics();
    reg.gauge("market.last_clearing_residual")
        .set(check.maxClearingResidual);
    reg.gauge("market.last_budget_residual")
        .set(check.maxBudgetResidual);
    reg.gauge("market.last_optimality_gap").set(check.maxOptimalityGap);
    return check;
}

} // namespace amdahl::core
