/**
 * @file
 * Entitlement accounting (Sections II-A and VI-D).
 *
 * Entitlements specify each user's minimum share of the datacenter.
 * Budgets are set proportional to entitlements, so a user's entitled
 * cores are (b_i / B) * sum_j C_j datacenter-wide and (b_i / B) * C_j on
 * each server. Figure 11 evaluates policies by the Mean Absolute
 * Percentage Error between allocated and entitled cores; these helpers
 * compute both sides.
 */

#ifndef AMDAHL_CORE_ENTITLEMENT_HH
#define AMDAHL_CORE_ENTITLEMENT_HH

#include <vector>

#include "core/market.hh"

namespace amdahl::core {

/** @return Entitled datacenter-wide cores per user, (b_i/B) * sum C_j. */
std::vector<double> entitledCoresPerUser(const FisherMarket &market);

/** @return Total allocated cores per user under the given allocation. */
std::vector<double> allocatedCoresPerUser(const FisherMarket &market,
                                          const JobMatrix &allocation);

/** Integer-allocation overload. */
std::vector<double>
allocatedCoresPerUser(const FisherMarket &market,
                      const std::vector<std::vector<int>> &allocation);

/**
 * MAPE of datacenter-wide allocations against entitlements (Figure 11).
 *
 * @return 100/n * sum_i |alloc_i - ent_i| / ent_i.
 */
double entitlementMape(const FisherMarket &market,
                       const JobMatrix &allocation);

} // namespace amdahl::core

#endif // AMDAHL_CORE_ENTITLEMENT_HH
