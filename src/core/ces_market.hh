/**
 * @file
 * CES utilities and the classical proportional-response market.
 *
 * Section V-D of the paper situates Amdahl Bidding against prior
 * theory: proportional response dynamics (PRD) was known to converge
 * for *constant elasticity of substitution* utilities,
 *
 *     u_i(x_i) = sum_j (w_ij x_ij)^rho_i,   rho_i in (0, 1),
 *
 * but Amdahl utility is not CES, which is why the paper derives a new
 * bidding rule. This module implements the CES side of that contrast:
 * the utility, its closed-form price-taking demand, and the classical
 * PRD solver (bids proportional to utility contributions). It powers
 * the ablation that fits a CES surrogate to an Amdahl speedup curve
 * and measures what the approximation costs (bench_ablation_ces).
 */

#ifndef AMDAHL_CORE_CES_MARKET_HH
#define AMDAHL_CORE_CES_MARKET_HH

#include <cstddef>
#include <string>
#include <vector>

namespace amdahl::core {

/** One CES job: a weighted term on one server. */
struct CesJob
{
    std::size_t server = 0;
    double weight = 1.0; //!< w_ij > 0.
};

/** One CES market participant. */
struct CesUser
{
    std::string name;
    double budget = 1.0;
    double rho = 0.5; //!< Elasticity parameter in (0, 1).
    std::vector<CesJob> jobs;
};

/** CES utility u(x) = sum_j (w_j x_j)^rho. */
class CesUtility
{
  public:
    /**
     * @param weights Per-job weights (positive).
     * @param rho     Elasticity in (0, 1].
     */
    CesUtility(std::vector<double> weights, double rho);

    /** @return Number of jobs. */
    std::size_t size() const { return weights_.size(); }

    /** @return The elasticity parameter. */
    double rho() const { return rho_; }

    /** @return u(x). */
    double value(const std::vector<double> &x) const;

    /** @return One job's contribution (w_j x_j)^rho. */
    double jobValue(std::size_t j, double x) const;

    /** @return du/dx_j. */
    double jobMarginal(std::size_t j, double x) const;

    /**
     * Closed-form price-taking demand: the utility-maximizing bundle
     * under prices p and the given budget (spends the whole budget).
     *
     * @param prices Positive price per job (already mapped from its
     *               server).
     * @param budget Total budget (> 0).
     * @return Optimal x_j per job.
     */
    std::vector<double> demand(const std::vector<double> &prices,
                               double budget) const;

  private:
    std::vector<double> weights_;
    double rho_;
};

/** A Fisher market with CES participants. */
class CesMarket
{
  public:
    explicit CesMarket(std::vector<double> capacities);

    /** Add a participant. @return Her index. */
    std::size_t addUser(CesUser user);

    std::size_t userCount() const { return users_.size(); }
    std::size_t serverCount() const { return capacities_.size(); }
    const CesUser &user(std::size_t i) const;
    double capacity(std::size_t j) const;

    /** @throws FatalError when a server has no bidders. */
    void validate() const;

  private:
    std::vector<double> capacities_;
    std::vector<CesUser> users_;
};

/** Result of the CES proportional-response solver. */
struct CesResult
{
    std::vector<double> prices;
    std::vector<std::vector<double>> allocation; //!< [user][job].
    std::vector<std::vector<double>> bids;
    int iterations = 0;
    bool converged = false;
};

/** Options for the CES PRD solver. */
struct CesOptions
{
    double priceTolerance = 1e-8;
    int maxIterations = 100000;
};

/**
 * Classical proportional response for CES utilities: each user bids
 * her budget in proportion to per-job utility contributions,
 *
 *     b_ij(t+1) = b_i * (w_ij x_ij(t))^rho_i / sum_k (w_ik x_ik(t))^rho_i
 *
 * which converges to the Fisher equilibrium for rho in (0, 1)
 * (Zhang; Birnbaum, Devanur, Xiao).
 */
CesResult solveCesMarket(const CesMarket &market,
                         const CesOptions &opts = {});

/**
 * Least-squares fit of a single-job CES term c * x^rho to an Amdahl
 * speedup curve s(x) = x / (f + (1-f) x) over x in [1, max_cores]
 * (log-log regression). Used by the CES-surrogate ablation.
 *
 * @param parallel_fraction The Amdahl f in (0, 1).
 * @param max_cores         Fit domain upper end (>= 2).
 * @param[out] scale        Fitted c.
 * @param[out] rho          Fitted exponent, clamped into (0, 1).
 * @return RMS relative fitting error over the sampled domain.
 */
double fitCesToAmdahl(double parallel_fraction, int max_cores,
                      double &scale, double &rho);

} // namespace amdahl::core

#endif // AMDAHL_CORE_CES_MARKET_HH
