/**
 * @file
 * The vectorized bid-update kernel and its runtime mode switch.
 *
 * DESIGN.md §16 carries the full contract; the short form:
 *
 * The Synchronous bid update is embarrassingly parallel over users and
 * elementwise over jobs, and every operation in the propensity
 * U = sqrt(f w) * sqrt(p) * s(x) — divide, sqrt, multiply, add,
 * compare — is correctly rounded under IEEE 754. A vector lane that
 * evaluates the *same expression tree* as the scalar kernel therefore
 * produces the *same bits*; vectorization only changes how many lanes
 * evaluate it at once. The AVX2 kernel in bidding_simd.cc exploits
 * exactly that: per-job work runs four lanes wide, while everything
 * whose order matters — the per-user propensity total, the blocked
 * canonical price fold — stays serial in the scalar order. The SIMD
 * translation unit is the only file compiled with AVX2 codegen (a
 * per-function target attribute, never a global -mavx2, and never
 * FMA, whose contraction *would* change results), so enabling
 * AMDAHL_SIMD cannot perturb any other translation unit.
 *
 * Scalar remains the always-available reference: builds without
 * AMDAHL_SIMD, machines without AVX2, and explicit overrides
 * (`--kernel scalar`, AMDAHL_KERNEL=scalar) all run it, and
 * tests/core pin the two kernels bit-equal on the same inputs.
 */

#ifndef AMDAHL_CORE_BIDDING_SIMD_HH
#define AMDAHL_CORE_BIDDING_SIMD_HH

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/bidding_kernel.hh"
#include "exec/parallelism.hh"

namespace amdahl::core::detail {

/** Which bid-update kernel the Synchronous fan-out runs. */
enum class BidKernelMode
{
    /** Resolve at first use: AMDAHL_KERNEL if set, else the SIMD
     *  kernel when compiled in and supported by this CPU. */
    Auto = 0,
    Scalar = 1,
    Simd = 2,
};

#if defined(AMDAHL_SIMD)
/** @return true when this CPU runs the compiled AVX2 kernel. */
bool simdKernelSupported();

/** The AVX2 bid update for users [ulo, uhi): bit-identical to calling
 *  updateOneUser on each (tests/core/test_bidding_simd.cc pins it). */
void updateUsersRangeSimd(BidKernel &kernel, std::size_t ulo,
                          std::size_t uhi,
                          const std::vector<double> &posted,
                          double damping);

inline constexpr bool kSimdKernelCompiled = true;
#else
inline bool
simdKernelSupported()
{
    return false;
}

inline void
updateUsersRangeSimd(BidKernel &, std::size_t, std::size_t,
                     const std::vector<double> &, double)
{
    fatal("SIMD bid kernel selected but not compiled in "
          "(configure with -DAMDAHL_SIMD=ON)");
}

inline constexpr bool kSimdKernelCompiled = false;
#endif

/** Explicit mode override; Auto until someone sets it. */
inline std::atomic<int> bidKernelModeState{0};

/**
 * Set the bid-update kernel (CLI `--kernel`, benches, tests).
 * Selecting Simd when the kernel is unavailable is a configuration
 * error (fatal), not a silent fallback: the caller asked for a
 * specific code path and must learn it does not exist here.
 * @return The previous setting.
 */
inline BidKernelMode
setBidKernelMode(BidKernelMode mode)
{
    if (mode == BidKernelMode::Simd && !simdKernelSupported()) {
        fatal("SIMD bid kernel unavailable: ",
              kSimdKernelCompiled
                  ? "this CPU lacks AVX2"
                  : "binary built without -DAMDAHL_SIMD=ON");
    }
    return static_cast<BidKernelMode>(
        bidKernelModeState.exchange(static_cast<int>(mode),
                                    std::memory_order_relaxed));
}

/**
 * The effective kernel mode (never Auto): explicit setting first,
 * then the AMDAHL_KERNEL environment override (resolved through
 * exec/, the designated environment owner), then SIMD when available.
 * An environment request for an unavailable SIMD kernel downgrades to
 * Scalar with a warning — the environment configures a whole fleet
 * and must not hard-fail the binaries built without the option.
 */
inline BidKernelMode
bidKernelMode()
{
    const int configured =
        bidKernelModeState.load(std::memory_order_relaxed);
    if (configured != static_cast<int>(BidKernelMode::Auto))
        return static_cast<BidKernelMode>(configured);
    const int env = exec::bidKernelOverride();
    if (env == 0)
        return BidKernelMode::Scalar;
    if (env == 1) {
        if (simdKernelSupported())
            return BidKernelMode::Simd;
        warn("AMDAHL_KERNEL=simd but the SIMD kernel is unavailable ",
             kSimdKernelCompiled ? "(no AVX2 on this CPU)"
                                 : "(built without -DAMDAHL_SIMD=ON)",
             "; running the scalar kernel");
        return BidKernelMode::Scalar;
    }
    return simdKernelSupported() ? BidKernelMode::Simd
                                 : BidKernelMode::Scalar;
}

/**
 * The Synchronous bid update for users [ulo, uhi) against the same
 * posted prices — the one dispatch point between the scalar and SIMD
 * kernels, shared by the in-process and sharded solvers. Both sides
 * are bit-identical, so the mode is a performance knob in the same
 * sense as the thread count.
 */
inline void
updateUsersRange(BidKernel &kernel, std::size_t ulo, std::size_t uhi,
                 const std::vector<double> &posted, double damping)
{
    if (bidKernelMode() == BidKernelMode::Simd) {
        updateUsersRangeSimd(kernel, ulo, uhi, posted, damping);
        return;
    }
    for (std::size_t i = ulo; i < uhi; ++i)
        updateOneUser(kernel, i, posted, damping);
}

/** Parse a `--kernel` style value: "scalar", "simd", or "auto".
 *  @throws FatalError on anything else. */
inline BidKernelMode
parseBidKernelMode(const std::string &text)
{
    if (text == "auto")
        return BidKernelMode::Auto;
    if (text == "scalar")
        return BidKernelMode::Scalar;
    if (text == "simd")
        return BidKernelMode::Simd;
    fatal("invalid kernel mode '", text,
          "' (want scalar, simd, or auto)");
}

} // namespace amdahl::core::detail

namespace amdahl::core {
// The mode switch is caller-facing (CLI --kernel, benches, tests);
// the kernels themselves stay in detail.
using detail::BidKernelMode;
using detail::bidKernelMode;
using detail::kSimdKernelCompiled;
using detail::parseBidKernelMode;
using detail::setBidKernelMode;
using detail::simdKernelSupported;
} // namespace amdahl::core

#endif // AMDAHL_CORE_BIDDING_SIMD_HH
