/**
 * @file
 * The Amdahl utility function (Section V-A, Eq. 4).
 *
 * User i runs jobs on several servers; job j has parallel fraction f_ij
 * and completes w_ij units of work per unit time on one core. Utility is
 * work-weighted normalized progress:
 *
 *     u_i(x_i) = sum_j w_ij s_ij(x_ij) / sum_j w_ij
 *
 * Utility is 1 when every job holds exactly one core, strictly
 * increasing, concave, and continuous — the properties that guarantee a
 * Fisher-market equilibrium exists (the paper cites Arrow-Debreu via
 * [36]).
 */

#ifndef AMDAHL_CORE_UTILITY_HH
#define AMDAHL_CORE_UTILITY_HH

#include <cstddef>
#include <vector>

namespace amdahl::core {

/** One job's term of an Amdahl utility function. */
struct UtilityTerm
{
    double parallelFraction = 0.5; //!< f_ij in [0, 1].
    double weight = 1.0;           //!< w_ij > 0, work rate at one core.
};

/**
 * Amdahl utility over a user's jobs.
 *
 * The job order here defines the coordinate order of allocation vectors
 * passed to value()/gradient().
 */
class AmdahlUtility
{
  public:
    /** Construct from per-job terms (at least one). */
    explicit AmdahlUtility(std::vector<UtilityTerm> terms);

    /** @return Number of jobs. */
    std::size_t size() const { return terms_.size(); }

    /** @return Term of job j. */
    const UtilityTerm &term(std::size_t j) const;

    /** @return Sum of job weights (the normalizer in Eq. 4). */
    double totalWeight() const { return weightSum; }

    /** @return u(x) for allocation x (one entry per job, each >= 0). */
    double value(const std::vector<double> &x) const;

    /**
     * Un-normalized utility of a single job: w_j s_j(x).
     */
    double jobUtility(std::size_t j, double x) const;

    /** @return du/dx_j at allocation x_j (un-normalized by weight sum). */
    double jobMarginal(std::size_t j, double x) const;

    /** @return Gradient of u at x. */
    std::vector<double> gradient(const std::vector<double> &x) const;

    /**
     * Utility of the "one core per job" allocation — always exactly 1
     * (the paper's normalization property).
     */
    double unitAllocationValue() const;

  private:
    std::vector<UtilityTerm> terms_;
    double weightSum = 0.0;
};

} // namespace amdahl::core

#endif // AMDAHL_CORE_UTILITY_HH
