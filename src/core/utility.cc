#include "utility.hh"

#include "common/logging.hh"
#include "core/amdahl.hh"

namespace amdahl::core {

AmdahlUtility::AmdahlUtility(std::vector<UtilityTerm> terms)
    : terms_(std::move(terms))
{
    if (terms_.empty())
        fatal("Amdahl utility needs at least one job");
    for (std::size_t j = 0; j < terms_.size(); ++j) {
        const auto &term = terms_[j];
        if (term.parallelFraction < 0.0 || term.parallelFraction > 1.0) {
            fatal("job ", j, ": parallel fraction ", term.parallelFraction,
                  " outside [0, 1]");
        }
        if (term.weight <= 0.0)
            fatal("job ", j, ": weight must be positive, got ",
                  term.weight);
        weightSum += term.weight;
    }
}

const UtilityTerm &
AmdahlUtility::term(std::size_t j) const
{
    if (j >= terms_.size())
        fatal("job index ", j, " out of range (", terms_.size(), ")");
    return terms_[j];
}

double
AmdahlUtility::value(const std::vector<double> &x) const
{
    if (x.size() != terms_.size()) {
        fatal("allocation has ", x.size(), " entries, expected ",
              terms_.size());
    }
    double total = 0.0;
    for (std::size_t j = 0; j < terms_.size(); ++j)
        total += jobUtility(j, x[j]);
    return total / weightSum;
}

double
AmdahlUtility::jobUtility(std::size_t j, double x) const
{
    const auto &t = term(j);
    return t.weight * amdahlSpeedup(t.parallelFraction, x);
}

double
AmdahlUtility::jobMarginal(std::size_t j, double x) const
{
    const auto &t = term(j);
    return t.weight * amdahlSpeedupDerivative(t.parallelFraction, x);
}

std::vector<double>
AmdahlUtility::gradient(const std::vector<double> &x) const
{
    if (x.size() != terms_.size()) {
        fatal("allocation has ", x.size(), " entries, expected ",
              terms_.size());
    }
    std::vector<double> grad(terms_.size());
    for (std::size_t j = 0; j < terms_.size(); ++j)
        grad[j] = jobMarginal(j, x[j]) / weightSum;
    return grad;
}

double
AmdahlUtility::unitAllocationValue() const
{
    return value(std::vector<double>(terms_.size(), 1.0));
}

} // namespace amdahl::core
