/**
 * @file
 * Hamilton's method for rounding fractional core allocations
 * (Section VI, "Rounding Allocations").
 *
 * Fair policies produce fractional allocations; physical cores are
 * integral. Hamilton's (largest-remainder) method first grants each job
 * the floor of its fractional share, then hands out the remaining cores
 * one at a time in descending order of fractional part. It preserves the
 * server capacity exactly and never moves any job by a full core.
 */

#ifndef AMDAHL_CORE_ROUNDING_HH
#define AMDAHL_CORE_ROUNDING_HH

#include <vector>

#include "core/market.hh"

namespace amdahl::core {

/**
 * Round one server's fractional allocations to integers summing to the
 * server capacity.
 *
 * @param fractional Non-negative fractional core shares. Their sum must
 *                   not exceed @p capacity, and the shortfall
 *                   capacity - sum must be < 1 + the number of entries
 *                   (i.e., the fractional allocation must already
 *                   (nearly) exhaust the server, as market clearing
 *                   guarantees).
 * @param capacity   Integral core count to distribute.
 * @return One integer per entry; sum equals min(capacity, achievable),
 *         each entry in {floor(x), floor(x)+1}.
 */
std::vector<int> hamiltonRound(const std::vector<double> &fractional,
                               int capacity);

/**
 * Round a whole market outcome server by server.
 *
 * @param market  The market (supplies job->server placement and
 *                capacities).
 * @param outcome A fractional outcome whose servers clear.
 * @return Integer allocation matrix with the same [user][job] shape.
 */
std::vector<std::vector<int>> roundOutcome(const FisherMarket &market,
                                           const MarketOutcome &outcome);

} // namespace amdahl::core

#endif // AMDAHL_CORE_ROUNDING_HH
