/**
 * @file
 * Plain-text serialization of Fisher markets.
 *
 * A small line-oriented format so markets can be described in files,
 * shipped to the CLI tool, and round-tripped in tests:
 *
 *     # Comments start with '#'; blank lines are ignored.
 *     servers 10 10            # capacities C_j, one market per file
 *     user Alice budget 1
 *     job server 0 fraction 0.53 weight 1
 *     job server 1 fraction 0.93          # weight defaults to 1
 *     user Bob budget 1
 *     job server 0 fraction 0.96
 *     job server 1 fraction 0.68
 *
 * `job` lines attach to the most recent `user`. Keywords may appear
 * in any order within a line's key/value pairs.
 */

#ifndef AMDAHL_CORE_MARKET_IO_HH
#define AMDAHL_CORE_MARKET_IO_HH

#include <iosfwd>
#include <string>

#include "core/market.hh"

namespace amdahl::core {

/**
 * Parse a market description.
 *
 * @param in Input stream with the format above.
 * @return The market (validated: at least one user; server indices in
 *         range).
 * @throws FatalError with a line number on malformed input.
 */
FisherMarket parseMarket(std::istream &in);

/** Convenience: parse from a string. */
FisherMarket parseMarketString(const std::string &text);

/**
 * Write a market in the same format (round-trips through
 * parseMarket).
 */
void writeMarket(std::ostream &out, const FisherMarket &market);

} // namespace amdahl::core

#endif // AMDAHL_CORE_MARKET_IO_HH
