/**
 * @file
 * Plain-text serialization of Fisher markets.
 *
 * A small line-oriented format so markets can be described in files,
 * shipped to the CLI tool, and round-tripped in tests:
 *
 *     # Comments start with '#'; blank lines are ignored.
 *     servers 10 10            # capacities C_j, one market per file
 *     user Alice budget 1
 *     job server 0 fraction 0.53 weight 1
 *     job server 1 fraction 0.93          # weight defaults to 1
 *     user Bob budget 1
 *     job server 0 fraction 0.96
 *     job server 1 fraction 0.68
 *
 * `job` lines attach to the most recent `user`. Keywords may appear
 * in any order within a line's key/value pairs.
 */

#ifndef AMDAHL_CORE_MARKET_IO_HH
#define AMDAHL_CORE_MARKET_IO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "core/market.hh"

namespace amdahl::core {

/** Strictness knobs for market-file ingestion. */
struct MarketParseOptions
{
    /**
     * Reject a user listing the same server twice (semantic error).
     * Two `job` lines on one server are almost always a tenant
     * copy-paste bug or a deliberate bid-splitting probe, so the
     * trust boundary refuses them by default. Markets *generated*
     * in-process may legitimately give one user several jobs on one
     * server; round-tripping those through writeMarket requires
     * turning this off.
     */
    bool rejectDuplicateServerJobs = true;
};

/**
 * Parse an untrusted market description with structured errors.
 *
 * Market files arrive from tenants, so this is a trust boundary
 * (common/status.hh): every malformed byte sequence maps to a
 * classified, line-numbered Status — parse errors for bad tokens,
 * domain errors for non-finite or out-of-range values (NaN budgets,
 * fractions outside [0, 1], negative capacities), semantic errors for
 * inconsistent documents (duplicate `job server` entries for one user,
 * job server indices past the capacity list, markets with no users).
 * Never throws on malformed input.
 *
 * @param in   Input stream with the format above.
 * @param opts Strictness knobs.
 * @return The market, or the first error encountered.
 */
Result<FisherMarket> tryParseMarket(std::istream &in,
                                    const MarketParseOptions &opts = {});

/** Convenience: structured parse from a string. */
Result<FisherMarket>
tryParseMarketString(const std::string &text,
                     const MarketParseOptions &opts = {});

/**
 * Open and parse a market file.
 *
 * @param path Filesystem path.
 * @param opts Strictness knobs.
 * @return The market, an IoError when the file cannot be opened, or
 *         the first parse/domain/semantic error.
 */
Result<FisherMarket> loadMarket(const std::string &path,
                                const MarketParseOptions &opts = {});

/**
 * Parse a market description (throwing wrapper over tryParseMarket).
 *
 * @param in Input stream with the format above.
 * @return The market (validated: at least one user; server indices in
 *         range).
 * @throws FatalError with the classified, line-numbered diagnostic on
 *         malformed input.
 */
FisherMarket parseMarket(std::istream &in);

/** Convenience: parse from a string. */
FisherMarket parseMarketString(const std::string &text);

/**
 * Write a market in the same format (round-trips through
 * parseMarket; markets giving one user several jobs on one server
 * need MarketParseOptions::rejectDuplicateServerJobs = false to
 * re-parse).
 */
void writeMarket(std::ostream &out, const FisherMarket &market);

} // namespace amdahl::core

#endif // AMDAHL_CORE_MARKET_IO_HH
