/**
 * @file
 * AVX2 implementation of the Synchronous bid update.
 *
 * Bit-identity argument (DESIGN.md §16): every per-job operation in
 * the propensity and normalization passes — divide, sqrt, multiply,
 * add, subtract, compare — is correctly rounded under IEEE 754, so
 * evaluating the scalar kernel's exact expression tree four lanes at
 * a time produces the same bits lane by lane. The two places where
 * *order* affects the result stay serial in the scalar order: the
 * per-user propensity total (a strict left fold over the row) and
 * the price fold (untouched; gatherPrices is shared). FMA is
 * deliberately absent from the target attribute — contraction of
 * a*b+c into one rounding *would* change results — and no other
 * translation unit sees AVX2 codegen, so an AMDAHL_SIMD build differs
 * from the default build only inside this file.
 *
 * Shape of the kernel: two passes per chunk, not one fused per-user
 * loop. The propensity pass is purely elementwise, so it spans user
 * boundaries — one long vector loop over the whole parallelFor chunk
 * keeps dozens of independent divide/sqrt chains in flight, where a
 * per-user loop (typical rows are a handful of jobs) would serialize
 * on each row's gather-divide-sqrt-fold dependency chain and waste
 * the out-of-order window. The fold+normalize pass then walks users
 * over the propensity rows the first pass left behind. Those rows
 * live in a chunk-sized stack buffer, not kernel.scratch: the round
 * loop is memory-bound once the market outgrows the cache
 * (bench_scaling_users' roofline table), and a per-job scratch array
 * would stream another 16 bytes per job per round through memory
 * (write-allocate plus writeback) for values that are dead
 * microseconds later. The stack buffer is L1-resident between the
 * passes at any realistic chunk grain; oversized chunks spill to
 * kernel.scratch and stay correct.
 *
 * This is the one translation unit allowed to use vector intrinsics
 * (amdahl_lint DET-simd pins the boundary).
 */

#include "core/bidding_simd.hh"

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/check.hh"

namespace amdahl::core::detail {

static_assert(sizeof(std::uint32_t) == 4,
              "the gather index load assumes 32-bit server ids");

bool
simdKernelSupported()
{
    static const bool supported = __builtin_cpu_supports("avx2") != 0;
    return supported;
}

namespace {

/**
 * Vectorized propensity for jobs [e, e+4): the unnormalized
 * U = sqrt(f w) * sqrt(p) * s(x), x = b / p, exactly as updateOneUser
 * computes it. Lanes where p <= 0 or b <= 0 (and the s(x) lanes whose
 * denominator is zero) are masked to +0.0, matching the scalar
 * branches.
 */
__attribute__((target("avx2"))) inline __m256d
propensity4(const BidKernel &kernel, std::size_t e, const double *posted)
{
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    // Four scalar loads from the posted-price table, not a hardware
    // gather: the table is small enough to sit in L1 (one double per
    // server), and vgatherdpd is microcoded slowly enough on common
    // server parts — virtualized ones especially — that plain loads
    // beat it by almost 2x on this kernel.
    const std::uint32_t *srv = kernel.server.data() + e;
    const __m256d p = _mm256_setr_pd(posted[srv[0]], posted[srv[1]],
                                     posted[srv[2]], posted[srv[3]]);
    const __m256d b = _mm256_loadu_pd(kernel.bids.data() + e);
    const __m256d active =
        _mm256_and_pd(_mm256_cmp_pd(p, zero, _CMP_GT_OQ),
                      _mm256_cmp_pd(b, zero, _CMP_GT_OQ));
    const __m256d x = _mm256_div_pd(b, p);
    const __m256d f = _mm256_loadu_pd(kernel.fraction.data() + e);
    // s(x) = x / (f + (1 - f) x) — amdahlSpeedup's expression, with
    // its zero-denominator guard as an andnot mask.
    const __m256d denom =
        _mm256_add_pd(f, _mm256_mul_pd(_mm256_sub_pd(one, f), x));
    const __m256d speedup =
        _mm256_andnot_pd(_mm256_cmp_pd(denom, zero, _CMP_EQ_OQ),
                         _mm256_div_pd(x, denom));
    const __m256d sqrtFw = _mm256_loadu_pd(kernel.sqrtFw.data() + e);
    return _mm256_and_pd(
        active,
        _mm256_mul_pd(_mm256_mul_pd(sqrtFw, _mm256_sqrt_pd(p)),
                      speedup));
}

/** The scalar tail of the propensity pass, for rows not a multiple
 *  of the vector width — the same expression, one job at a time. */
inline double
propensity1(const BidKernel &kernel, std::size_t e, const double *posted)
{
    const double p = posted[kernel.server[e]];
    if (!(p > 0.0 && kernel.bids[e] > 0.0))
        return 0.0;
    const double x = kernel.bids[e] / p;
    const double fr = kernel.fraction[e];
    const double denom = fr + (1.0 - fr) * x;
    const double speedup = denom == 0.0 ? 0.0 : x / denom;
    return kernel.sqrtFw[e] * std::sqrt(p) * speedup;
}

} // namespace

__attribute__((target("avx2"))) void
updateUsersRangeSimd(BidKernel &kernel, std::size_t ulo,
                     std::size_t uhi,
                     const std::vector<double> &posted, double damping)
{
    const double *post = posted.data();
    const bool damped = damping < 1.0;
    const __m256d keep = _mm256_set1_pd(1.0 - damping);
    const __m256d move = _mm256_set1_pd(damping);

    // The chunk's propensity rows: stack-resident unless the chunk is
    // oversized (a grain override beyond any realistic setting).
    const std::size_t jlo = kernel.userOffset[ulo];
    const std::size_t jhi = kernel.userOffset[uhi];
    constexpr std::size_t kChunkBuffer = 2048;
    alignas(32) double stackRows[kChunkBuffer];
    double *rows = (jhi - jlo) <= kChunkBuffer
                       ? stackRows
                       : kernel.scratch.data() + jlo;

    // Pass 1: chunk-wide elementwise propensities (see the file
    // header for why this spans user boundaries).
    {
        std::size_t e = jlo;
        for (; e + 4 <= jhi; e += 4)
            _mm256_storeu_pd(rows + (e - jlo),
                             propensity4(kernel, e, post));
        for (; e < jhi; ++e)
            rows[e - jlo] = propensity1(kernel, e, post);
    }

    // Pass 2: per-user fold and normalization over the rows.
    for (std::size_t i = ulo; i < uhi; ++i) {
        const std::size_t lo = kernel.userOffset[i];
        const std::size_t hi = kernel.userOffset[i + 1];
        const double *row = rows + (lo - jlo);

        // The strict left fold updateOneUser performs, over the same
        // values in the same order — the one reduction in this kernel
        // whose order is semantic.
        double total = 0.0;
        for (std::size_t e = lo; e < hi; ++e)
            total += row[e - lo];

        if (total <= 0.0) {
            // Same fallback branch as updateOneUser: all propensities
            // vanished, split the budget evenly.
            const double even =
                kernel.budget[i] / static_cast<double>(hi - lo);
            for (std::size_t e = lo; e < hi; ++e) {
                kernel.bids[e] =
                    damped ? (1.0 - damping) * kernel.bids[e] +
                                 damping * even
                           : even;
            }
            continue;
        }
        AMDAHL_CHECK_FINITE(total);

        // Normalization: the damped blend of budget * U / total into
        // the bids, elementwise.
        const __m256d bud = _mm256_set1_pd(kernel.budget[i]);
        const __m256d tot = _mm256_set1_pd(total);
        std::size_t e = lo;
        for (; e + 4 <= hi; e += 4) {
            const __m256d s = _mm256_loadu_pd(row + (e - lo));
            const __m256d proposal =
                _mm256_div_pd(_mm256_mul_pd(bud, s), tot);
            __m256d next = proposal;
            if (damped) {
                const __m256d prev =
                    _mm256_loadu_pd(kernel.bids.data() + e);
                next = _mm256_add_pd(_mm256_mul_pd(keep, prev),
                                     _mm256_mul_pd(move, proposal));
            }
            _mm256_storeu_pd(kernel.bids.data() + e, next);
        }
        for (; e < hi; ++e) {
            const double proposal =
                kernel.budget[i] * row[e - lo] / total;
            kernel.bids[e] =
                damped ? (1.0 - damping) * kernel.bids[e] +
                             damping * proposal
                       : proposal;
        }

        // The scalar kernel checks each proposal inline; the vector
        // kernel verifies the finished row so checked builds keep the
        // same contract without serializing the lanes.
        if constexpr (checkedBuild) {
            for (e = lo; e < hi; ++e) {
                AMDAHL_CHECK_FINITE(kernel.bids[e]);
                AMDAHL_ASSERT(kernel.bids[e] >= 0.0,
                              "SIMD proportional update produced a ",
                              "negative bid for user ", i);
            }
        }
    }
}

} // namespace amdahl::core::detail
