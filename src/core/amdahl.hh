/**
 * @file
 * Amdahl's Law and the Karp-Flatt metric (Sections II-D and IV).
 *
 * These are the two scalar formulas the whole framework rests on:
 *
 *   speedup:    s(x) = x / (f + (1 - f) x)          [paper Eq. 1]
 *   Karp-Flatt: F(x) = (1 - 1/s) / (1 - 1/x)        [paper Eq. 2/3]
 *
 * The speedup form here is the paper's algebraic simplification of
 * T_1 / ((1-F) T_1 + T_1 F / x); it accepts *real* x >= 0 because market
 * allocations are fractional before rounding.
 */

#ifndef AMDAHL_CORE_AMDAHL_HH
#define AMDAHL_CORE_AMDAHL_HH

namespace amdahl::core {

/**
 * Amdahl speedup on x cores.
 *
 * @param f Parallel fraction in [0, 1].
 * @param x Core allocation, x >= 0 (fractional allowed).
 * @return s(x) = x / (f + (1-f) x); s(0) = 0, s(1) = 1.
 */
double amdahlSpeedup(double f, double x);

/**
 * Derivative of the Amdahl speedup with respect to the allocation.
 *
 * @return s'(x) = f / (f + (1-f) x)^2 — positive and decreasing:
 *         diminishing marginal returns.
 */
double amdahlSpeedupDerivative(double f, double x);

/**
 * Asymptotic speedup limit: lim_{x->inf} s(x) = 1 / (1 - f)
 * (infinite for f == 1).
 */
double amdahlSpeedupLimit(double f);

/**
 * The Karp-Flatt metric: the parallel fraction implied by a measured
 * speedup.
 *
 * @param speedup Measured s(x) > 0.
 * @param x       Core count used in the measurement, x > 1.
 * @return F = (1 - 1/s) / (1 - 1/x). Can exceed [0, 1] when the
 *         measurement is super-linear or sub-serial; callers decide how
 *         to treat such estimates.
 */
double karpFlatt(double speedup, double x);

/**
 * Invert the speedup curve: the allocation achieving a target speedup.
 *
 * @param f      Parallel fraction in (0, 1].
 * @param target Desired speedup; must be below amdahlSpeedupLimit(f).
 * @return x with s(x) == target.
 */
double coresForSpeedup(double f, double target);

} // namespace amdahl::core

#endif // AMDAHL_CORE_AMDAHL_HH
