#include "market_io.hh"

#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace amdahl::core {

namespace {

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) {
        if (!token.empty() && token.front() == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

double
parseNumber(const std::string &token, int line_no, const char *what)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
        return value;
    } catch (const std::exception &) {
        fatal("line ", line_no, ": expected a number for ", what,
              ", got '", token, "'");
    }
}

} // namespace

FisherMarket
parseMarket(std::istream &in)
{
    std::optional<FisherMarket> market;
    MarketUser current;
    bool in_user = false;
    int line_no = 0;

    auto flush_user = [&]() {
        if (!in_user)
            return;
        ensure(market.has_value(), "user without servers");
        market->addUser(std::move(current));
        current = MarketUser();
        in_user = false;
    };

    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &keyword = tokens.front();

        if (keyword == "servers") {
            if (market)
                fatal("line ", line_no, ": duplicate 'servers' line");
            if (tokens.size() < 2)
                fatal("line ", line_no,
                      ": 'servers' needs at least one capacity");
            std::vector<double> capacities;
            for (std::size_t t = 1; t < tokens.size(); ++t) {
                capacities.push_back(
                    parseNumber(tokens[t], line_no, "a capacity"));
            }
            market.emplace(std::move(capacities));
        } else if (keyword == "user") {
            if (!market)
                fatal("line ", line_no,
                      ": 'user' before 'servers'");
            flush_user();
            current = MarketUser();
            in_user = true;
            // Accept: user <name> [budget <b>]
            std::size_t t = 1;
            if (t < tokens.size() && tokens[t] != "budget")
                current.name = tokens[t++];
            if (t < tokens.size()) {
                if (tokens[t] != "budget" || t + 1 >= tokens.size())
                    fatal("line ", line_no,
                          ": expected 'budget <value>'");
                current.budget =
                    parseNumber(tokens[t + 1], line_no, "a budget");
                t += 2;
            }
            if (t != tokens.size())
                fatal("line ", line_no, ": trailing tokens on 'user'");
        } else if (keyword == "job") {
            if (!in_user)
                fatal("line ", line_no, ": 'job' before any 'user'");
            JobSpec job;
            bool have_server = false, have_fraction = false;
            for (std::size_t t = 1; t + 1 < tokens.size(); t += 2) {
                const std::string &key = tokens[t];
                const std::string &value = tokens[t + 1];
                if (key == "server") {
                    job.server = static_cast<std::size_t>(
                        parseNumber(value, line_no, "a server index"));
                    have_server = true;
                } else if (key == "fraction") {
                    job.parallelFraction =
                        parseNumber(value, line_no, "a fraction");
                    have_fraction = true;
                } else if (key == "weight") {
                    job.weight =
                        parseNumber(value, line_no, "a weight");
                } else {
                    fatal("line ", line_no, ": unknown job key '", key,
                          "'");
                }
            }
            if ((tokens.size() - 1) % 2 != 0)
                fatal("line ", line_no,
                      ": job keys and values must pair up");
            if (!have_server || !have_fraction)
                fatal("line ", line_no,
                      ": job needs 'server' and 'fraction'");
            current.jobs.push_back(job);
        } else {
            fatal("line ", line_no, ": unknown keyword '", keyword,
                  "'");
        }
    }

    if (!market)
        fatal("market file has no 'servers' line");
    flush_user();
    if (market->userCount() == 0)
        fatal("market file has no users");
    return std::move(*market);
}

FisherMarket
parseMarketString(const std::string &text)
{
    std::istringstream is(text);
    return parseMarket(is);
}

void
writeMarket(std::ostream &out, const FisherMarket &market)
{
    // max_digits10 so parse(write(m)) reproduces every double exactly.
    const auto saved_precision = out.precision(
        std::numeric_limits<double>::max_digits10);
    out << "servers";
    for (double c : market.capacities())
        out << ' ' << c;
    out << '\n';
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &user = market.user(i);
        out << "user ";
        if (!user.name.empty())
            out << user.name << ' ';
        out << "budget " << user.budget << '\n';
        for (const auto &job : user.jobs) {
            out << "job server " << job.server << " fraction "
                << job.parallelFraction << " weight " << job.weight
                << '\n';
        }
    }
    out.precision(saved_precision);
}

} // namespace amdahl::core
