#include "market_io.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace amdahl::core {

namespace {

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) {
        if (!token.empty() && token.front() == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

/**
 * Parse one numeric token without exceptions. A token that is not
 * entirely a number is a parse error; a number whose value is
 * non-finite or out of double range is a domain error (std::stod used
 * to let "nan" and "inf" budgets straight through — the classic
 * trust-boundary leak this module now exists to stop).
 */
Status
parseNumber(const std::string &token, int line_no, const char *what,
            double &value)
{
    double parsed = 0.0;
    const char *first = token.data();
    const char *last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec == std::errc::result_out_of_range) {
        return Status::error(ErrorKind::DomainError, line_no, what,
                             " '", token, "' is out of range");
    }
    if (ec != std::errc() || ptr != last) {
        return Status::error(ErrorKind::ParseError, line_no,
                             "expected a number for ", what, ", got '",
                             token, "'");
    }
    if (!std::isfinite(parsed)) {
        return Status::error(ErrorKind::DomainError, line_no, what,
                             " must be finite, got '", token, "'");
    }
    value = parsed;
    return Status::ok();
}

/** Parse a non-negative integer token (server indices). */
Status
parseIndex(const std::string &token, int line_no, const char *what,
           std::size_t &value)
{
    std::size_t parsed = 0;
    const char *first = token.data();
    const char *last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec == std::errc::result_out_of_range) {
        return Status::error(ErrorKind::DomainError, line_no, what,
                             " '", token, "' is out of range");
    }
    if (ec != std::errc() || ptr != last) {
        return Status::error(ErrorKind::ParseError, line_no,
                             "expected a non-negative integer for ",
                             what, ", got '", token, "'");
    }
    value = parsed;
    return Status::ok();
}

/**
 * Recursive-descent-per-line market parser. All validation that
 * FisherMarket::addUser would enforce by throwing is performed here
 * first, with the line number of the offending input, so construction
 * below never throws on untrusted bytes.
 */
struct MarketParser
{
    MarketParseOptions opts;
    std::optional<FisherMarket> market;
    MarketUser current;
    std::unordered_set<std::size_t> currentServers;
    bool inUser = false;
    int userLine = 0;

    Status
    flushUser()
    {
        if (!inUser)
            return Status::ok();
        if (current.jobs.empty()) {
            return Status::error(ErrorKind::SemanticError, userLine,
                                 "user '", current.name,
                                 "' has no jobs");
        }
        market->addUser(std::move(current));
        current = MarketUser();
        currentServers.clear();
        inUser = false;
        return Status::ok();
    }

    Status
    serversLine(const std::vector<std::string> &tokens, int line_no)
    {
        if (market) {
            return Status::error(ErrorKind::SemanticError, line_no,
                                 "duplicate 'servers' line");
        }
        if (tokens.size() < 2) {
            return Status::error(ErrorKind::ParseError, line_no,
                                 "'servers' needs at least one capacity");
        }
        std::vector<double> capacities;
        for (std::size_t t = 1; t < tokens.size(); ++t) {
            double c = 0.0;
            if (auto st = parseNumber(tokens[t], line_no, "a capacity",
                                      c);
                !st.isOk()) {
                return st;
            }
            if (c <= 0.0) {
                return Status::error(ErrorKind::DomainError, line_no,
                                     "capacity must be positive, got ",
                                     c);
            }
            capacities.push_back(c);
        }
        market.emplace(std::move(capacities));
        return Status::ok();
    }

    Status
    userLineKeyword(const std::vector<std::string> &tokens, int line_no)
    {
        if (!market) {
            return Status::error(ErrorKind::SemanticError, line_no,
                                 "'user' before 'servers'");
        }
        if (auto st = flushUser(); !st.isOk())
            return st;
        current = MarketUser();
        inUser = true;
        userLine = line_no;
        // Accept: user <name> [budget <b>]
        std::size_t t = 1;
        if (t < tokens.size() && tokens[t] != "budget")
            current.name = tokens[t++];
        if (t < tokens.size()) {
            if (tokens[t] != "budget" || t + 1 >= tokens.size()) {
                return Status::error(ErrorKind::ParseError, line_no,
                                     "expected 'budget <value>'");
            }
            if (auto st = parseNumber(tokens[t + 1], line_no,
                                      "a budget", current.budget);
                !st.isOk()) {
                return st;
            }
            if (current.budget <= 0.0) {
                return Status::error(ErrorKind::DomainError, line_no,
                                     "budget must be positive, got ",
                                     current.budget);
            }
            t += 2;
        }
        if (t != tokens.size()) {
            return Status::error(ErrorKind::ParseError, line_no,
                                 "trailing tokens on 'user'");
        }
        return Status::ok();
    }

    Status
    jobLine(const std::vector<std::string> &tokens, int line_no)
    {
        if (!inUser) {
            return Status::error(ErrorKind::SemanticError, line_no,
                                 "'job' before any 'user'");
        }
        if ((tokens.size() - 1) % 2 != 0) {
            return Status::error(ErrorKind::ParseError, line_no,
                                 "job keys and values must pair up");
        }
        JobSpec job;
        bool have_server = false, have_fraction = false;
        for (std::size_t t = 1; t + 1 < tokens.size(); t += 2) {
            const std::string &key = tokens[t];
            const std::string &value = tokens[t + 1];
            if (key == "server") {
                if (auto st = parseIndex(value, line_no,
                                         "a server index", job.server);
                    !st.isOk()) {
                    return st;
                }
                have_server = true;
            } else if (key == "fraction") {
                if (auto st = parseNumber(value, line_no, "a fraction",
                                          job.parallelFraction);
                    !st.isOk()) {
                    return st;
                }
                if (job.parallelFraction < 0.0 ||
                    job.parallelFraction > 1.0) {
                    return Status::error(
                        ErrorKind::DomainError, line_no,
                        "fraction must be in [0, 1], got ",
                        job.parallelFraction);
                }
                have_fraction = true;
            } else if (key == "weight") {
                if (auto st = parseNumber(value, line_no, "a weight",
                                          job.weight);
                    !st.isOk()) {
                    return st;
                }
                if (job.weight <= 0.0) {
                    return Status::error(
                        ErrorKind::DomainError, line_no,
                        "weight must be positive, got ", job.weight);
                }
            } else {
                return Status::error(ErrorKind::ParseError, line_no,
                                     "unknown job key '", key, "'");
            }
        }
        if (!have_server || !have_fraction) {
            return Status::error(ErrorKind::SemanticError, line_no,
                                 "job needs 'server' and 'fraction'");
        }
        if (job.server >= market->serverCount()) {
            return Status::error(
                ErrorKind::SemanticError, line_no, "job is on server ",
                job.server, " but there are only ",
                market->serverCount(), " servers");
        }
        if (opts.rejectDuplicateServerJobs &&
            !currentServers.insert(job.server).second) {
            return Status::error(
                ErrorKind::SemanticError, line_no, "user '",
                current.name, "' already has a job on server ",
                job.server,
                "; one job per (user, server) pair — merge the work "
                "or raise the weight");
        }
        current.jobs.push_back(job);
        return Status::ok();
    }
};

} // namespace

Result<FisherMarket>
tryParseMarket(std::istream &in, const MarketParseOptions &opts)
{
    if (!in) {
        return Status::error(ErrorKind::IoError, 0,
                             "cannot read market input");
    }

    MarketParser parser;
    parser.opts = opts;
    int line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &keyword = tokens.front();

        Status st = Status::ok();
        if (keyword == "servers")
            st = parser.serversLine(tokens, line_no);
        else if (keyword == "user")
            st = parser.userLineKeyword(tokens, line_no);
        else if (keyword == "job")
            st = parser.jobLine(tokens, line_no);
        else
            st = Status::error(ErrorKind::ParseError, line_no,
                               "unknown keyword '", keyword, "'");
        if (!st.isOk())
            return st;
    }

    if (!parser.market) {
        return Status::error(ErrorKind::SemanticError, line_no,
                             "market file has no 'servers' line");
    }
    if (auto st = parser.flushUser(); !st.isOk())
        return st;
    if (parser.market->userCount() == 0) {
        return Status::error(ErrorKind::SemanticError, line_no,
                             "market file has no users");
    }
    return std::move(*parser.market);
}

Result<FisherMarket>
tryParseMarketString(const std::string &text,
                     const MarketParseOptions &opts)
{
    std::istringstream is(text);
    return tryParseMarket(is, opts);
}

Result<FisherMarket>
loadMarket(const std::string &path, const MarketParseOptions &opts)
{
    std::ifstream in(path);
    if (!in) {
        return Status::error(ErrorKind::IoError, 0, "cannot open '",
                             path, "'");
    }
    return tryParseMarket(in, opts);
}

FisherMarket
parseMarket(std::istream &in)
{
    return tryParseMarket(in).orFatal();
}

FisherMarket
parseMarketString(const std::string &text)
{
    return tryParseMarketString(text).orFatal();
}

void
writeMarket(std::ostream &out, const FisherMarket &market)
{
    // max_digits10 so parse(write(m)) reproduces every double exactly.
    const auto saved_precision = out.precision(
        std::numeric_limits<double>::max_digits10);
    out << "servers";
    for (double c : market.capacities())
        out << ' ' << c;
    out << '\n';
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &user = market.user(i);
        out << "user ";
        if (!user.name.empty())
            out << user.name << ' ';
        out << "budget " << user.budget << '\n';
        for (const auto &job : user.jobs) {
            out << "job server " << job.server << " fraction "
                << job.parallelFraction << " weight " << job.weight
                << '\n';
        }
    }
    out.precision(saved_precision);
}

} // namespace amdahl::core
