#include "bidding.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/amdahl.hh"
#include "core/bidding_kernel.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::core {

void
updateUserBids(const MarketUser &user, const std::vector<double> &prices,
               std::vector<double> &bids)
{
    if (bids.size() != user.jobs.size())
        fatal("bid vector size mismatch for user '", user.name, "'");

    // U_ij = sqrt(f w) * sqrt(p) * s(x) with x = b / p. The factored
    // form (rather than sqrt(f w p)) lets callers hoist sqrt(f w) out
    // of the iteration; the SoA kernel relies on the two forms being
    // the *same* expression so its bids match this function bitwise.
    double total = 0.0;
    for (std::size_t k = 0; k < user.jobs.size(); ++k) {
        const auto &job = user.jobs[k];
        if (job.server >= prices.size()) {
            fatal("user '", user.name, "' bids on server ", job.server,
                  " but only ", prices.size(), " prices were posted");
        }
        const double p = prices[job.server];
        double propensity = 0.0;
        if (p > 0.0 && bids[k] > 0.0) {
            const double x = bids[k] / p;
            propensity =
                std::sqrt(job.parallelFraction * job.weight) *
                std::sqrt(p) * amdahlSpeedup(job.parallelFraction, x);
        }
        bids[k] = propensity; // Reuse storage for the unnormalized U.
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall back
        // to an even split so the budget is still exhausted.
        const double even = user.budget / static_cast<double>(bids.size());
        std::fill(bids.begin(), bids.end(), even);
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (double &b : bids) {
        b = user.budget * b / total;
        AMDAHL_CHECK_FINITE(b);
        AMDAHL_ASSERT(b >= 0.0, "proportional update produced a ",
                      "negative bid for user '", user.name, "'");
    }
}

BiddingResult
solveAmdahlBidding(const FisherMarket &market, const BiddingOptions &opts)
{
    detail::validateBiddingCommon(market, opts);

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.bidding.solve_us"));
    // Per-phase timers, looked up once per solve (map lookups do not
    // belong inside the round loop); nullptr while timing is off.
    obs::Histogram *update_hist =
        obs::timeHistogram("time.bidding.update_us");
    obs::Histogram *prices_hist =
        obs::timeHistogram("time.bidding.prices_us");
    detail::traceBiddingStart(n, m, opts);

    BiddingResult result;
    result.prices.assign(m, 0.0);
    detail::initializeBids(market, opts, result.bids);

    detail::BidKernel kernel = detail::buildKernel(market);
    detail::flattenBids(result.bids, kernel);
    detail::gatherPrices(kernel, result.prices);

    // Anytime bookkeeping. The best-so-far snapshot is seeded with the
    // initial state: on a validated market every server hosts a job and
    // every initial bid is positive, so initial prices are all
    // positive and the snapshot is feasible no matter how early the
    // deadline fires. A round's state only replaces it when its price
    // update moved less *and* its prices stayed strictly positive.
    const bool anytime = opts.deadline.enabled();
    // Baselined DET-clock finding (tools/lint/amdahl_lint.baseline):
    // the wall-clock deadline exists to bound real latency under
    // overload, and the clock is never read unless a deadline is set.
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_time;
    if (opts.deadline.wallClockSeconds > 0.0)
        start_time = Clock::now();
    std::vector<double> best_bids;
    std::vector<double> best_prices;
    double best_delta = std::numeric_limits<double>::infinity();
    if (anytime) {
        best_bids = kernel.bids;
        best_prices = result.prices;
    }

    // Lossy transport: each (user, round) loss decision comes from its
    // own counter-based substream — a pure function of (seed, user,
    // round) — so realizations are identical under either schedule and
    // at any thread count. The mask is materialized serially before the
    // round's fan-out; with a sound transport (the default) nothing is
    // ever drawn.
    const bool lossy = opts.transport.lossRate > 0.0;
    std::vector<unsigned char> lost;
    if (lossy)
        lost.assign(n, 0);
    std::uint64_t lost_messages = 0;

    std::vector<double> new_prices(m);
    std::vector<double> live_prices;
    for (int it = 0; it < opts.maxIterations; ++it) {
        bool round_lost_message = false;
        if (lossy) {
            for (std::size_t i = 0; i < n; ++i) {
                lost[i] = counterBernoulli(
                              opts.transport.seed, i,
                              static_cast<std::uint64_t>(it),
                              opts.transport.lossRate)
                              ? 1
                              : 0;
                if (lost[i]) {
                    // This user's update message is lost: her previous
                    // bids stand for the round (they still sum to her
                    // budget, so no invariant moves).
                    round_lost_message = true;
                    ++lost_messages;
                }
            }
        }

        {
            obs::ScopedTimer update_timer(update_hist);
            if (opts.schedule == UpdateSchedule::GaussSeidel) {
                // Inherently sequential: each user responds to prices
                // that already reflect earlier users' new bids.
                live_prices = result.prices;
                for (std::size_t i = 0; i < n; ++i) {
                    if (lossy && lost[i])
                        continue;
                    const std::size_t lo = kernel.userOffset[i];
                    const std::size_t hi = kernel.userOffset[i + 1];
                    // Fold the bid change into prices immediately so
                    // later users in this round see it.
                    std::vector<double> previous(
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(lo),
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(hi));
                    detail::updateOneUser(kernel, i, live_prices,
                                          opts.damping);
                    for (std::size_t e = lo; e < hi; ++e) {
                        const std::size_t j = kernel.server[e];
                        live_prices[j] +=
                            (kernel.bids[e] - previous[e - lo]) /
                            kernel.capacity[j];
                    }
                }
            } else {
                // Synchronous: every user responds to the same posted
                // prices and writes only her own bid slots — disjoint
                // per chunk, so the fan-out commutes bitwise.
                exec::parallelFor(
                    0, n, detail::kUserGrain,
                    [&](std::size_t ulo, std::size_t uhi) {
                        for (std::size_t i = ulo; i < uhi; ++i) {
                            if (lossy && lost[i])
                                continue;
                            detail::updateOneUser(kernel, i,
                                                  result.prices,
                                                  opts.damping);
                        }
                    });
            }
        }

        {
            obs::ScopedTimer prices_timer(prices_hist);
            detail::gatherPrices(kernel, new_prices);
        }

        detail::checkRoundInvariants(market, kernel, new_prices,
                                     result.bids);

        const double max_delta =
            detail::maxPriceDelta(result.prices, new_prices, m);
        result.prices = new_prices;
        result.iterations = it + 1;
        if (opts.trackHistory)
            result.priceDeltaHistory.push_back(max_delta);
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "bidding_iter")
                .field("iter", it + 1)
                .field("max_delta", max_delta)
                .field("lost_messages", round_lost_message);
        }
        // A round with lost messages can leave prices spuriously
        // still (nobody moved), so it never counts as convergence.
        if (max_delta < opts.priceTolerance && !round_lost_message) {
            result.converged = true;
            break;
        }

        if (anytime) {
            bool positive = true;
            for (double p : new_prices) {
                if (!(p > 0.0)) {
                    positive = false;
                    break;
                }
            }
            if (positive && max_delta < best_delta) {
                best_delta = max_delta;
                best_bids = kernel.bids;
                best_prices = new_prices;
            }
            bool expired = opts.deadline.iterationBudget > 0 &&
                           it + 1 >= opts.deadline.iterationBudget;
            if (opts.deadline.wallClockSeconds > 0.0) {
                result.elapsedSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  start_time)
                        .count();
                expired = expired || result.elapsedSeconds >=
                                         opts.deadline.wallClockSeconds;
            }
            if (expired) {
                kernel.bids = std::move(best_bids);
                result.prices = std::move(best_prices);
                result.deadlineExpired = true;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "deadline_expired")
                        .field("iter", it + 1)
                        .field("best_delta", best_delta);
                }
                break;
            }
        }
    }
    if (opts.deadline.wallClockSeconds > 0.0 &&
        !result.deadlineExpired) {
        result.elapsedSeconds =
            std::chrono::duration<double>(Clock::now() - start_time)
                .count();
    }

    detail::recordSolveEnd(result, lost_messages);
    detail::unflattenBids(kernel, result.bids);
    detail::finalizeAllocation(market, result, true);
    return result;
}

} // namespace amdahl::core
