#include "bidding.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/amdahl.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::core {

namespace {

/** Recompute prices from bids: p_j = sum b_ij / C_j. */
void
computePrices(const FisherMarket &market, const JobMatrix &bids,
              std::vector<double> &prices)
{
    std::fill(prices.begin(), prices.end(), 0.0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            prices[jobs[k].server] += bids[i][k];
    }
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        prices[j] /= market.capacity(j);
}

} // namespace

void
updateUserBids(const MarketUser &user, const std::vector<double> &prices,
               std::vector<double> &bids)
{
    if (bids.size() != user.jobs.size())
        fatal("bid vector size mismatch for user '", user.name, "'");

    // U_ij = sqrt(f w p) * s(x) with x = b / p.
    double total = 0.0;
    for (std::size_t k = 0; k < user.jobs.size(); ++k) {
        const auto &job = user.jobs[k];
        if (job.server >= prices.size()) {
            fatal("user '", user.name, "' bids on server ", job.server,
                  " but only ", prices.size(), " prices were posted");
        }
        const double p = prices[job.server];
        double propensity = 0.0;
        if (p > 0.0 && bids[k] > 0.0) {
            const double x = bids[k] / p;
            propensity =
                std::sqrt(job.parallelFraction * job.weight * p) *
                amdahlSpeedup(job.parallelFraction, x);
        }
        bids[k] = propensity; // Reuse storage for the unnormalized U.
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall back
        // to an even split so the budget is still exhausted.
        const double even = user.budget / static_cast<double>(bids.size());
        std::fill(bids.begin(), bids.end(), even);
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (double &b : bids) {
        b = user.budget * b / total;
        AMDAHL_CHECK_FINITE(b);
        AMDAHL_ASSERT(b >= 0.0, "proportional update produced a ",
                      "negative bid for user '", user.name, "'");
    }
}

BiddingResult
solveAmdahlBidding(const FisherMarket &market, const BiddingOptions &opts)
{
    market.validate();
    if (opts.priceTolerance <= 0.0)
        fatal("price tolerance must be positive");
    if (opts.maxIterations < 1)
        fatal("need at least one iteration");
    if (opts.damping <= 0.0 || opts.damping > 1.0)
        fatal("damping must be in (0, 1], got ", opts.damping);
    if (opts.transport.lossRate < 0.0 || opts.transport.lossRate > 1.0)
        fatal("bid loss rate must be in [0, 1], got ",
              opts.transport.lossRate);
    if (opts.deadline.wallClockSeconds < 0.0 ||
        !std::isfinite(opts.deadline.wallClockSeconds)) {
        fatal("wall-clock deadline must be finite and non-negative, "
              "got ", opts.deadline.wallClockSeconds);
    }
    if (opts.deadline.iterationBudget < 0) {
        fatal("iteration budget must be non-negative, got ",
              opts.deadline.iterationBudget);
    }

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.bidding.solve_us"));
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_start")
            .field("users", n)
            .field("servers", m)
            .field("schedule",
                   opts.schedule == UpdateSchedule::GaussSeidel
                       ? "gauss_seidel"
                       : "synchronous")
            .field("damping", opts.damping)
            .field("warm_start", !opts.initialBids.empty())
            .field("deadline_armed", opts.deadline.enabled());
    }

    BiddingResult result;
    result.bids.resize(n);
    result.prices.assign(m, 0.0);

    // Initial bids: warm start when provided, else an even split of
    // each budget.
    if (!opts.initialBids.empty() &&
        opts.initialBids.size() != n) {
        fatal("warm-start bids have ", opts.initialBids.size(),
              " users, expected ", n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        const double even =
            user.budget / static_cast<double>(user.jobs.size());
        result.bids[i].assign(user.jobs.size(), even);
        if (opts.initialBids.empty())
            continue;
        const auto &seed = opts.initialBids[i];
        if (seed.size() != user.jobs.size()) {
            fatal("warm-start bids for user ", i, " have ",
                  seed.size(), " jobs, expected ", user.jobs.size());
        }
        double total = 0.0;
        bool usable = true;
        for (double b : seed) {
            if (b < 0.0 || !std::isfinite(b))
                usable = false;
            total += b;
        }
        if (!usable || total <= 0.0)
            continue; // Fall back to the even split.
        for (std::size_t k = 0; k < seed.size(); ++k) {
            // Keep strictly positive bids so the proportional update
            // can move every coordinate.
            result.bids[i][k] = std::max(1e-12 * user.budget,
                                         user.budget * seed[k] / total);
            AMDAHL_CHECK_FINITE(result.bids[i][k]);
            AMDAHL_ASSERT(result.bids[i][k] > 0.0,
                          "warm start produced a non-positive bid ",
                          "for user '", user.name, "' job ", k);
        }
        // Contract: renormalization restores budget exhaustion (Eq.
        // 10) no matter how stale or rescaled the seed bids were; the
        // positivity floor can only inflate the sum by jobs * 1e-12.
        if constexpr (checkedBuild) {
            double renormalized = 0.0;
            for (double b : result.bids[i])
                renormalized += b;
            AMDAHL_ASSERT(std::abs(renormalized - user.budget) <=
                              1e-9 * user.budget *
                                  static_cast<double>(seed.size() + 1),
                          "warm start broke budget conservation for ",
                          "user '", user.name, "'");
        }
    }
    computePrices(market, result.bids, result.prices);

    // Anytime bookkeeping. The best-so-far snapshot is seeded with the
    // initial state: on a validated market every server hosts a job and
    // every initial bid is positive, so initial prices are all
    // positive and the snapshot is feasible no matter how early the
    // deadline fires. A round's state only replaces it when its price
    // update moved less *and* its prices stayed strictly positive.
    const bool anytime = opts.deadline.enabled();
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_time;
    if (opts.deadline.wallClockSeconds > 0.0)
        start_time = Clock::now();
    JobMatrix best_bids;
    std::vector<double> best_prices;
    double best_delta = std::numeric_limits<double>::infinity();
    if (anytime) {
        best_bids = result.bids;
        best_prices = result.prices;
    }

    // Lossy transport draws from its own deterministic stream; with a
    // sound transport (the default) no generator is ever touched.
    const bool lossy = opts.transport.lossRate > 0.0;
    Rng loss_rng(opts.transport.seed);
    std::uint64_t lost_messages = 0;

    std::vector<double> new_prices(m);
    std::vector<double> proposal;
    std::vector<double> live_prices;
    for (int it = 0; it < opts.maxIterations; ++it) {
        if (opts.schedule == UpdateSchedule::GaussSeidel)
            live_prices = result.prices;
        bool round_lost_message = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (lossy &&
                loss_rng.bernoulli(opts.transport.lossRate)) {
                // This user's update message was lost: her previous
                // bids stand for the round (they still sum to her
                // budget, so no invariant moves).
                round_lost_message = true;
                ++lost_messages;
                continue;
            }
            const auto &user = market.user(i);
            const auto &posted =
                opts.schedule == UpdateSchedule::GaussSeidel
                    ? live_prices
                    : result.prices;
            proposal = result.bids[i];
            updateUserBids(user, posted, proposal);
            if (opts.damping < 1.0) {
                for (std::size_t k = 0; k < proposal.size(); ++k) {
                    proposal[k] =
                        (1.0 - opts.damping) * result.bids[i][k] +
                        opts.damping * proposal[k];
                }
            }
            if (opts.schedule == UpdateSchedule::GaussSeidel) {
                // Fold the bid change into prices immediately so
                // later users in this round see it.
                for (std::size_t k = 0; k < proposal.size(); ++k) {
                    const auto j = user.jobs[k].server;
                    live_prices[j] +=
                        (proposal[k] - result.bids[i][k]) /
                        market.capacity(j);
                }
            }
            result.bids[i] = proposal;
        }

        computePrices(market, result.bids, new_prices);

        // Contract: after every proportional-response round, prices
        // stay positive and finite, bids stay non-negative, and each
        // user's bids still sum to her budget (paper Eq. 10).
        if constexpr (checkedBuild) {
            invariants::CheckMarketState(new_prices, result.bids,
                                         "bidding round");
            std::vector<double> budgets(n);
            for (std::size_t i = 0; i < n; ++i)
                budgets[i] = market.user(i).budget;
            invariants::CheckBidBudgets(result.bids, budgets, 1e-9,
                                        "bidding round");
        }

        double max_delta = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            const double base = std::max(result.prices[j], 1e-300);
            max_delta = std::max(
                max_delta, std::abs(new_prices[j] - result.prices[j]) /
                               base);
        }
        result.prices = new_prices;
        result.iterations = it + 1;
        if (opts.trackHistory)
            result.priceDeltaHistory.push_back(max_delta);
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "bidding_iter")
                .field("iter", it + 1)
                .field("max_delta", max_delta)
                .field("lost_messages", round_lost_message);
        }
        // A round with lost messages can leave prices spuriously
        // still (nobody moved), so it never counts as convergence.
        if (max_delta < opts.priceTolerance && !round_lost_message) {
            result.converged = true;
            break;
        }

        if (anytime) {
            bool positive = true;
            for (double p : new_prices) {
                if (!(p > 0.0)) {
                    positive = false;
                    break;
                }
            }
            if (positive && max_delta < best_delta) {
                best_delta = max_delta;
                best_bids = result.bids;
                best_prices = new_prices;
            }
            bool expired = opts.deadline.iterationBudget > 0 &&
                           it + 1 >= opts.deadline.iterationBudget;
            if (opts.deadline.wallClockSeconds > 0.0) {
                result.elapsedSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  start_time)
                        .count();
                expired = expired || result.elapsedSeconds >=
                                         opts.deadline.wallClockSeconds;
            }
            if (expired) {
                result.bids = std::move(best_bids);
                result.prices = std::move(best_prices);
                result.deadlineExpired = true;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "deadline_expired")
                        .field("iter", it + 1)
                        .field("best_delta", best_delta);
                }
                break;
            }
        }
    }
    if (opts.deadline.wallClockSeconds > 0.0 &&
        !result.deadlineExpired) {
        result.elapsedSeconds =
            std::chrono::duration<double>(Clock::now() - start_time)
                .count();
    }

    {
        auto &reg = obs::metrics();
        reg.counter("bidding.solves").add();
        reg.counter("bidding.iterations")
            .add(static_cast<std::uint64_t>(result.iterations));
        if (!result.converged)
            reg.counter("bidding.non_converged").add();
        if (result.deadlineExpired)
            reg.counter("bidding.deadline_expired").add();
        if (lost_messages > 0)
            reg.counter("bidding.lost_messages").add(lost_messages);
    }
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_end")
            .field("iterations", result.iterations)
            .field("converged", result.converged)
            .field("deadline_expired", result.deadlineExpired);
    }

    // Final allocations: x_ij = b_ij / p_j.
    result.allocation.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        result.allocation[i].resize(jobs.size());
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            const double p = result.prices[jobs[k].server];
            ensure(p > 0.0, "zero equilibrium price on server ",
                   jobs[k].server);
            result.allocation[i][k] = result.bids[i][k] / p;
        }
    }

    // Contract: x = b / p clears every server exactly up to rounding,
    // and never over-subscribes capacity.
    if constexpr (checkedBuild) {
        std::vector<double> loads(m, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &jobs = market.user(i).jobs;
            for (std::size_t k = 0; k < jobs.size(); ++k)
                loads[jobs[k].server] += result.allocation[i][k];
        }
        invariants::CheckAllocationFeasible(loads, market.capacities(),
                                            1e-6, "bidding allocation");
    }
    return result;
}

} // namespace amdahl::core
