#include "bidding.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/amdahl.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::core {

namespace {

/** Users per parallelFor chunk in the Synchronous bid-update kernel.
 *  Fixed (never derived from the thread count) so the chunk layout —
 *  and with it exec.tasks and every reduction tree — is identical at
 *  any thread count. */
constexpr std::size_t kUserGrain = 32;

/** Servers per chunk in the price gather and the delta reduction. */
constexpr std::size_t kServerGrain = 8;

/**
 * Structure-of-arrays view of one clearing problem.
 *
 * The per-user AoS layout (MarketUser::jobs, JobMatrix) is the right
 * API shape but the wrong iteration shape: the proportional-response
 * inner loop touches three doubles per job and pays a pointer chase
 * per user per field. The kernel flattens every job to one index e in
 * user-major order and keeps each field contiguous. The loop-invariant
 * factor sqrt(f_ij * w_ij) of the propensity U_ij = sqrt(f w p) s(x)
 * is hoisted here, once per clearing — the per-round kernel multiplies
 * it by sqrt(p_j), which is exactly the factorization updateUserBids
 * uses, so kernel bids match the reference function bit for bit.
 *
 * Prices are gathered server-major through a CSR index
 * (serverJobOffset/serverJobIds). Flat job ids are user-major, so each
 * server's id list is increasing in (user, job) order — summing it
 * front to back performs the *same sequence of additions* into the
 * accumulator as the legacy user-major scatter loop did per server.
 * That is the determinism argument (DESIGN.md §11): per-server sums
 * associate identically at every thread count, including 1.
 */
struct BidKernel
{
    std::size_t userCount = 0;
    std::size_t serverCount = 0;
    std::size_t jobCount = 0;

    std::vector<std::size_t> userOffset; // userCount + 1
    std::vector<double> budget;          // per user

    // Per flat job, user-major.
    std::vector<std::size_t> server;
    std::vector<double> fraction; // f_ij
    std::vector<double> sqrtFw;   // sqrt(f_ij * w_ij), hoisted
    std::vector<double> bids;     // b_ij, the iterated state
    std::vector<double> scratch;  // unnormalized propensities

    // Server-major CSR over flat job ids (increasing within a server).
    std::vector<std::size_t> serverJobOffset; // serverCount + 1
    std::vector<std::size_t> serverJobIds;

    std::vector<double> capacity; // per server
};

BidKernel
buildKernel(const FisherMarket &market)
{
    BidKernel kernel;
    kernel.userCount = market.userCount();
    kernel.serverCount = market.serverCount();

    kernel.userOffset.reserve(kernel.userCount + 1);
    kernel.userOffset.push_back(0);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        kernel.userOffset.push_back(kernel.userOffset.back() +
                                    market.user(i).jobs.size());
    }
    kernel.jobCount = kernel.userOffset.back();

    kernel.budget.resize(kernel.userCount);
    kernel.server.resize(kernel.jobCount);
    kernel.fraction.resize(kernel.jobCount);
    kernel.sqrtFw.resize(kernel.jobCount);
    kernel.bids.assign(kernel.jobCount, 0.0);
    kernel.scratch.assign(kernel.jobCount, 0.0);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const auto &user = market.user(i);
        kernel.budget[i] = user.budget;
        std::size_t e = kernel.userOffset[i];
        for (const auto &job : user.jobs) {
            kernel.server[e] = job.server;
            kernel.fraction[e] = job.parallelFraction;
            kernel.sqrtFw[e] =
                std::sqrt(job.parallelFraction * job.weight);
            ++e;
        }
    }

    kernel.capacity.resize(kernel.serverCount);
    for (std::size_t j = 0; j < kernel.serverCount; ++j)
        kernel.capacity[j] = market.capacity(j);

    // CSR: counting sort of flat job ids by server. Ids come out
    // increasing per server because the fill scans them in order.
    kernel.serverJobOffset.assign(kernel.serverCount + 1, 0);
    for (std::size_t e = 0; e < kernel.jobCount; ++e)
        ++kernel.serverJobOffset[kernel.server[e] + 1];
    for (std::size_t j = 0; j < kernel.serverCount; ++j)
        kernel.serverJobOffset[j + 1] += kernel.serverJobOffset[j];
    kernel.serverJobIds.resize(kernel.jobCount);
    std::vector<std::size_t> cursor(
        kernel.serverJobOffset.begin(),
        kernel.serverJobOffset.end() - 1);
    for (std::size_t e = 0; e < kernel.jobCount; ++e)
        kernel.serverJobIds[cursor[kernel.server[e]]++] = e;

    return kernel;
}

void
flattenBids(const JobMatrix &bids, BidKernel &kernel)
{
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        std::copy(bids[i].begin(), bids[i].end(),
                  kernel.bids.begin() +
                      static_cast<std::ptrdiff_t>(kernel.userOffset[i]));
    }
}

void
unflattenBids(const BidKernel &kernel, JobMatrix &bids)
{
    bids.resize(kernel.userCount);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const std::size_t lo = kernel.userOffset[i];
        const std::size_t hi = kernel.userOffset[i + 1];
        bids[i].assign(kernel.bids.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       kernel.bids.begin() +
                           static_cast<std::ptrdiff_t>(hi));
    }
}

/**
 * Recompute prices from the flat bids: p_j = sum b_ij / C_j.
 *
 * Parallel over servers; each server's sum runs over its CSR id list
 * front to back, reproducing the legacy user-major accumulation order
 * exactly (see BidKernel), so the result is bit-identical at any
 * thread count.
 */
void
gatherPrices(const BidKernel &kernel, std::vector<double> &prices)
{
    exec::parallelFor(
        0, kernel.serverCount, kServerGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t j = lo; j < hi; ++j) {
                double sum = 0.0;
                const std::size_t jb = kernel.serverJobOffset[j];
                const std::size_t je = kernel.serverJobOffset[j + 1];
                for (std::size_t s = jb; s < je; ++s)
                    sum += kernel.bids[kernel.serverJobIds[s]];
                prices[j] = sum / kernel.capacity[j];
            }
        });
}

/**
 * One proportional-response update for user @p i against @p posted
 * prices, writing the (damped) next bids in place. Bitwise identical
 * to updateUserBids + the solver's damping blend; shared by both
 * schedules so they cannot drift apart.
 */
inline void
updateOneUser(BidKernel &kernel, std::size_t i,
              const std::vector<double> &posted, double damping)
{
    const std::size_t lo = kernel.userOffset[i];
    const std::size_t hi = kernel.userOffset[i + 1];
    double total = 0.0;
    for (std::size_t e = lo; e < hi; ++e) {
        const double p = posted[kernel.server[e]];
        double propensity = 0.0;
        if (p > 0.0 && kernel.bids[e] > 0.0) {
            const double x = kernel.bids[e] / p;
            propensity = kernel.sqrtFw[e] * std::sqrt(p) *
                         amdahlSpeedup(kernel.fraction[e], x);
        }
        kernel.scratch[e] = propensity;
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall
        // back to an even split so the budget is still exhausted.
        const double even =
            kernel.budget[i] / static_cast<double>(hi - lo);
        for (std::size_t e = lo; e < hi; ++e) {
            kernel.bids[e] =
                damping < 1.0
                    ? (1.0 - damping) * kernel.bids[e] + damping * even
                    : even;
        }
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (std::size_t e = lo; e < hi; ++e) {
        const double proposal =
            kernel.budget[i] * kernel.scratch[e] / total;
        AMDAHL_CHECK_FINITE(proposal);
        AMDAHL_ASSERT(proposal >= 0.0,
                      "proportional update produced a negative bid ",
                      "for user ", i);
        kernel.bids[e] =
            damping < 1.0
                ? (1.0 - damping) * kernel.bids[e] + damping * proposal
                : proposal;
    }
}

} // namespace

void
updateUserBids(const MarketUser &user, const std::vector<double> &prices,
               std::vector<double> &bids)
{
    if (bids.size() != user.jobs.size())
        fatal("bid vector size mismatch for user '", user.name, "'");

    // U_ij = sqrt(f w) * sqrt(p) * s(x) with x = b / p. The factored
    // form (rather than sqrt(f w p)) lets callers hoist sqrt(f w) out
    // of the iteration; the SoA kernel relies on the two forms being
    // the *same* expression so its bids match this function bitwise.
    double total = 0.0;
    for (std::size_t k = 0; k < user.jobs.size(); ++k) {
        const auto &job = user.jobs[k];
        if (job.server >= prices.size()) {
            fatal("user '", user.name, "' bids on server ", job.server,
                  " but only ", prices.size(), " prices were posted");
        }
        const double p = prices[job.server];
        double propensity = 0.0;
        if (p > 0.0 && bids[k] > 0.0) {
            const double x = bids[k] / p;
            propensity =
                std::sqrt(job.parallelFraction * job.weight) *
                std::sqrt(p) * amdahlSpeedup(job.parallelFraction, x);
        }
        bids[k] = propensity; // Reuse storage for the unnormalized U.
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall back
        // to an even split so the budget is still exhausted.
        const double even = user.budget / static_cast<double>(bids.size());
        std::fill(bids.begin(), bids.end(), even);
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (double &b : bids) {
        b = user.budget * b / total;
        AMDAHL_CHECK_FINITE(b);
        AMDAHL_ASSERT(b >= 0.0, "proportional update produced a ",
                      "negative bid for user '", user.name, "'");
    }
}

BiddingResult
solveAmdahlBidding(const FisherMarket &market, const BiddingOptions &opts)
{
    market.validate();
    if (opts.priceTolerance <= 0.0)
        fatal("price tolerance must be positive");
    if (opts.maxIterations < 1)
        fatal("need at least one iteration");
    if (opts.damping <= 0.0 || opts.damping > 1.0)
        fatal("damping must be in (0, 1], got ", opts.damping);
    if (opts.transport.lossRate < 0.0 || opts.transport.lossRate > 1.0)
        fatal("bid loss rate must be in [0, 1], got ",
              opts.transport.lossRate);
    if (opts.deadline.wallClockSeconds < 0.0 ||
        !std::isfinite(opts.deadline.wallClockSeconds)) {
        fatal("wall-clock deadline must be finite and non-negative, "
              "got ", opts.deadline.wallClockSeconds);
    }
    if (opts.deadline.iterationBudget < 0) {
        fatal("iteration budget must be non-negative, got ",
              opts.deadline.iterationBudget);
    }

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.bidding.solve_us"));
    // Per-phase timers, looked up once per solve (map lookups do not
    // belong inside the round loop); nullptr while timing is off.
    obs::Histogram *update_hist =
        obs::timeHistogram("time.bidding.update_us");
    obs::Histogram *prices_hist =
        obs::timeHistogram("time.bidding.prices_us");
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_start")
            .field("users", n)
            .field("servers", m)
            .field("schedule",
                   opts.schedule == UpdateSchedule::GaussSeidel
                       ? "gauss_seidel"
                       : "synchronous")
            .field("damping", opts.damping)
            .field("warm_start", !opts.initialBids.empty())
            .field("deadline_armed", opts.deadline.enabled());
    }

    BiddingResult result;
    result.bids.resize(n);
    result.prices.assign(m, 0.0);

    // Initial bids: warm start when provided, else an even split of
    // each budget.
    if (!opts.initialBids.empty() &&
        opts.initialBids.size() != n) {
        fatal("warm-start bids have ", opts.initialBids.size(),
              " users, expected ", n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        const double even =
            user.budget / static_cast<double>(user.jobs.size());
        result.bids[i].assign(user.jobs.size(), even);
        if (opts.initialBids.empty())
            continue;
        const auto &seed = opts.initialBids[i];
        if (seed.size() != user.jobs.size()) {
            fatal("warm-start bids for user ", i, " have ",
                  seed.size(), " jobs, expected ", user.jobs.size());
        }
        double total = 0.0;
        bool usable = true;
        for (double b : seed) {
            if (b < 0.0 || !std::isfinite(b))
                usable = false;
            total += b;
        }
        if (!usable || total <= 0.0)
            continue; // Fall back to the even split.
        for (std::size_t k = 0; k < seed.size(); ++k) {
            // Keep strictly positive bids so the proportional update
            // can move every coordinate.
            result.bids[i][k] = std::max(1e-12 * user.budget,
                                         user.budget * seed[k] / total);
            AMDAHL_CHECK_FINITE(result.bids[i][k]);
            AMDAHL_ASSERT(result.bids[i][k] > 0.0,
                          "warm start produced a non-positive bid ",
                          "for user '", user.name, "' job ", k);
        }
        // Contract: renormalization restores budget exhaustion (Eq.
        // 10) no matter how stale or rescaled the seed bids were; the
        // positivity floor can only inflate the sum by jobs * 1e-12.
        if constexpr (checkedBuild) {
            double renormalized = 0.0;
            for (double b : result.bids[i])
                renormalized += b;
            AMDAHL_ASSERT(std::abs(renormalized - user.budget) <=
                              1e-9 * user.budget *
                                  static_cast<double>(seed.size() + 1),
                          "warm start broke budget conservation for ",
                          "user '", user.name, "'");
        }
    }

    BidKernel kernel = buildKernel(market);
    flattenBids(result.bids, kernel);
    gatherPrices(kernel, result.prices);

    // Anytime bookkeeping. The best-so-far snapshot is seeded with the
    // initial state: on a validated market every server hosts a job and
    // every initial bid is positive, so initial prices are all
    // positive and the snapshot is feasible no matter how early the
    // deadline fires. A round's state only replaces it when its price
    // update moved less *and* its prices stayed strictly positive.
    const bool anytime = opts.deadline.enabled();
    // Baselined DET-clock finding (tools/lint/amdahl_lint.baseline):
    // the wall-clock deadline exists to bound real latency under
    // overload, and the clock is never read unless a deadline is set.
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_time;
    if (opts.deadline.wallClockSeconds > 0.0)
        start_time = Clock::now();
    std::vector<double> best_bids;
    std::vector<double> best_prices;
    double best_delta = std::numeric_limits<double>::infinity();
    if (anytime) {
        best_bids = kernel.bids;
        best_prices = result.prices;
    }

    // Lossy transport: each (user, round) loss decision comes from its
    // own counter-based substream — a pure function of (seed, user,
    // round) — so realizations are identical under either schedule and
    // at any thread count. The mask is materialized serially before the
    // round's fan-out; with a sound transport (the default) nothing is
    // ever drawn.
    const bool lossy = opts.transport.lossRate > 0.0;
    std::vector<unsigned char> lost;
    if (lossy)
        lost.assign(n, 0);
    std::uint64_t lost_messages = 0;

    std::vector<double> new_prices(m);
    std::vector<double> live_prices;
    for (int it = 0; it < opts.maxIterations; ++it) {
        bool round_lost_message = false;
        if (lossy) {
            for (std::size_t i = 0; i < n; ++i) {
                lost[i] = counterBernoulli(
                              opts.transport.seed, i,
                              static_cast<std::uint64_t>(it),
                              opts.transport.lossRate)
                              ? 1
                              : 0;
                if (lost[i]) {
                    // This user's update message is lost: her previous
                    // bids stand for the round (they still sum to her
                    // budget, so no invariant moves).
                    round_lost_message = true;
                    ++lost_messages;
                }
            }
        }

        {
            obs::ScopedTimer update_timer(update_hist);
            if (opts.schedule == UpdateSchedule::GaussSeidel) {
                // Inherently sequential: each user responds to prices
                // that already reflect earlier users' new bids.
                live_prices = result.prices;
                for (std::size_t i = 0; i < n; ++i) {
                    if (lossy && lost[i])
                        continue;
                    const std::size_t lo = kernel.userOffset[i];
                    const std::size_t hi = kernel.userOffset[i + 1];
                    // Fold the bid change into prices immediately so
                    // later users in this round see it.
                    std::vector<double> previous(
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(lo),
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(hi));
                    updateOneUser(kernel, i, live_prices,
                                  opts.damping);
                    for (std::size_t e = lo; e < hi; ++e) {
                        const std::size_t j = kernel.server[e];
                        live_prices[j] +=
                            (kernel.bids[e] - previous[e - lo]) /
                            kernel.capacity[j];
                    }
                }
            } else {
                // Synchronous: every user responds to the same posted
                // prices and writes only her own bid slots — disjoint
                // per chunk, so the fan-out commutes bitwise.
                exec::parallelFor(
                    0, n, kUserGrain,
                    [&](std::size_t ulo, std::size_t uhi) {
                        for (std::size_t i = ulo; i < uhi; ++i) {
                            if (lossy && lost[i])
                                continue;
                            updateOneUser(kernel, i, result.prices,
                                          opts.damping);
                        }
                    });
            }
        }

        {
            obs::ScopedTimer prices_timer(prices_hist);
            gatherPrices(kernel, new_prices);
        }

        // Contract: after every proportional-response round, prices
        // stay positive and finite, bids stay non-negative, and each
        // user's bids still sum to her budget (paper Eq. 10).
        if constexpr (checkedBuild) {
            unflattenBids(kernel, result.bids);
            invariants::CheckMarketState(new_prices, result.bids,
                                         "bidding round");
            std::vector<double> budgets(n);
            for (std::size_t i = 0; i < n; ++i)
                budgets[i] = market.user(i).budget;
            invariants::CheckBidBudgets(result.bids, budgets, 1e-9,
                                        "bidding round");
        }

        // max over chunks is exact (no rounding), so the tree fold is
        // trivially order-independent; the reduce keeps the scan off
        // the critical path at high thread counts.
        const double max_delta = exec::parallelReduce(
            std::size_t{0}, m, kServerGrain, 0.0,
            [&](std::size_t lo, std::size_t hi) {
                double chunk_max = 0.0;
                for (std::size_t j = lo; j < hi; ++j) {
                    const double base =
                        std::max(result.prices[j], 1e-300);
                    chunk_max = std::max(
                        chunk_max,
                        std::abs(new_prices[j] - result.prices[j]) /
                            base);
                }
                return chunk_max;
            },
            [](double a, double b) { return std::max(a, b); });
        result.prices = new_prices;
        result.iterations = it + 1;
        if (opts.trackHistory)
            result.priceDeltaHistory.push_back(max_delta);
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "bidding_iter")
                .field("iter", it + 1)
                .field("max_delta", max_delta)
                .field("lost_messages", round_lost_message);
        }
        // A round with lost messages can leave prices spuriously
        // still (nobody moved), so it never counts as convergence.
        if (max_delta < opts.priceTolerance && !round_lost_message) {
            result.converged = true;
            break;
        }

        if (anytime) {
            bool positive = true;
            for (double p : new_prices) {
                if (!(p > 0.0)) {
                    positive = false;
                    break;
                }
            }
            if (positive && max_delta < best_delta) {
                best_delta = max_delta;
                best_bids = kernel.bids;
                best_prices = new_prices;
            }
            bool expired = opts.deadline.iterationBudget > 0 &&
                           it + 1 >= opts.deadline.iterationBudget;
            if (opts.deadline.wallClockSeconds > 0.0) {
                result.elapsedSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  start_time)
                        .count();
                expired = expired || result.elapsedSeconds >=
                                         opts.deadline.wallClockSeconds;
            }
            if (expired) {
                kernel.bids = std::move(best_bids);
                result.prices = std::move(best_prices);
                result.deadlineExpired = true;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "deadline_expired")
                        .field("iter", it + 1)
                        .field("best_delta", best_delta);
                }
                break;
            }
        }
    }
    if (opts.deadline.wallClockSeconds > 0.0 &&
        !result.deadlineExpired) {
        result.elapsedSeconds =
            std::chrono::duration<double>(Clock::now() - start_time)
                .count();
    }

    {
        auto &reg = obs::metrics();
        reg.counter("bidding.solves").add();
        reg.counter("bidding.iterations")
            .add(static_cast<std::uint64_t>(result.iterations));
        if (!result.converged)
            reg.counter("bidding.non_converged").add();
        if (result.deadlineExpired)
            reg.counter("bidding.deadline_expired").add();
        if (lost_messages > 0)
            reg.counter("bidding.lost_messages").add(lost_messages);
    }
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_end")
            .field("iterations", result.iterations)
            .field("converged", result.converged)
            .field("deadline_expired", result.deadlineExpired);
    }

    unflattenBids(kernel, result.bids);

    // Final allocations: x_ij = b_ij / p_j.
    result.allocation.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        result.allocation[i].resize(jobs.size());
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            const double p = result.prices[jobs[k].server];
            ensure(p > 0.0, "zero equilibrium price on server ",
                   jobs[k].server);
            result.allocation[i][k] = result.bids[i][k] / p;
        }
    }

    // Contract: x = b / p clears every server exactly up to rounding,
    // and never over-subscribes capacity.
    if constexpr (checkedBuild) {
        std::vector<double> loads(m, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &jobs = market.user(i).jobs;
            for (std::size_t k = 0; k < jobs.size(); ++k)
                loads[jobs[k].server] += result.allocation[i][k];
        }
        invariants::CheckAllocationFeasible(loads, market.capacities(),
                                            1e-6, "bidding allocation");
    }
    return result;
}

} // namespace amdahl::core
