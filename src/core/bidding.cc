#include "bidding.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/amdahl.hh"
#include "core/bidding_kernel.hh"
#include "core/bidding_simd.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::core {

namespace {

/**
 * Anderson acceleration state over the proportional-response map
 * (DESIGN.md §16). Keeps up to depth+1 (iterate, update) pairs with
 * their residuals f = g(x) - x and the residual Gram matrix
 * G[a][b] = <f_a, f_b>, maintained incrementally so each round costs
 * one new row of dot products. All reductions are strict serial left
 * folds — the accelerated trajectory is as reproducible as the plain
 * one.
 */
struct AndersonState
{
    int depth;
    double ridge;
    double maxMixWeight;
    std::deque<std::vector<double>> xs;
    std::deque<std::vector<double>> gs;
    std::deque<std::vector<double>> fs; // residuals g - x
    std::deque<std::vector<double>> gram;

    void
    clear()
    {
        xs.clear();
        gs.clear();
        fs.clear();
        gram.clear();
    }

    void
    push(std::vector<double> x, const std::vector<double> &g)
    {
        const std::size_t jobs = x.size();
        std::vector<double> f(jobs);
        for (std::size_t e = 0; e < jobs; ++e)
            f[e] = g[e] - x[e];

        // New Gram row: <f_new, f_a> for every kept residual + self.
        std::vector<double> row(fs.size() + 1, 0.0);
        for (std::size_t a = 0; a < fs.size(); ++a) {
            double dot = 0.0;
            const std::vector<double> &fa = fs[a];
            for (std::size_t e = 0; e < jobs; ++e)
                dot += f[e] * fa[e];
            row[a] = dot;
            gram[a].push_back(dot);
        }
        double self = 0.0;
        for (std::size_t e = 0; e < jobs; ++e)
            self += f[e] * f[e];
        row.back() = self;
        gram.push_back(std::move(row));

        xs.push_back(std::move(x));
        gs.push_back(g);
        fs.push_back(std::move(f));

        const std::size_t cap = static_cast<std::size_t>(depth) + 1;
        if (xs.size() > cap) {
            xs.pop_front();
            gs.pop_front();
            fs.pop_front();
            gram.pop_front();
            for (auto &r : gram)
                r.erase(r.begin());
        }
    }

    /**
     * The least-squares mixing proposal: minimize
     * ||f_last + sum_i gamma_i (f_i - f_last)|| over the window,
     * Tikhonov-regularized, solved by partially pivoted Gaussian
     * elimination on the (at most depth x depth) normal equations.
     * @return false when the window is too short or the system is
     * numerically degenerate — the caller then serves the plain step.
     */
    bool
    proposal(std::vector<double> &out) const
    {
        const std::size_t k = fs.size();
        if (k < 2)
            return false;
        const std::size_t mm = k - 1;
        const std::size_t last = k - 1;
        const double gll = gram[last][last];

        // A gamma = rhs over differences d_i = f_i - f_last.
        std::vector<double> A(mm * mm);
        std::vector<double> rhs(mm);
        double trace = 0.0;
        for (std::size_t a = 0; a < mm; ++a) {
            for (std::size_t b = 0; b < mm; ++b) {
                A[a * mm + b] = gram[a][b] - gram[a][last] -
                                gram[last][b] + gll;
            }
            trace += A[a * mm + a];
            rhs[a] = gll - gram[a][last];
        }
        if (!(trace > 0.0) || !std::isfinite(trace))
            return false;
        const double reg = ridge * trace;
        for (std::size_t a = 0; a < mm; ++a)
            A[a * mm + a] += reg;

        // Gaussian elimination with partial pivoting (mm <= 8).
        std::vector<std::size_t> perm(mm);
        for (std::size_t a = 0; a < mm; ++a)
            perm[a] = a;
        for (std::size_t col = 0; col < mm; ++col) {
            std::size_t pivot = col;
            double best = std::abs(A[perm[col] * mm + col]);
            for (std::size_t r = col + 1; r < mm; ++r) {
                const double cand = std::abs(A[perm[r] * mm + col]);
                if (cand > best) {
                    best = cand;
                    pivot = r;
                }
            }
            if (!(best > 1e-14 * trace))
                return false;
            std::swap(perm[col], perm[pivot]);
            const double diag = A[perm[col] * mm + col];
            for (std::size_t r = col + 1; r < mm; ++r) {
                const double factor = A[perm[r] * mm + col] / diag;
                if (factor == 0.0)
                    continue;
                for (std::size_t c = col; c < mm; ++c)
                    A[perm[r] * mm + c] -= factor * A[perm[col] * mm + c];
                rhs[perm[r]] -= factor * rhs[perm[col]];
            }
        }
        std::vector<double> gamma(mm);
        for (std::size_t col = mm; col-- > 0;) {
            double v = rhs[perm[col]];
            for (std::size_t c = col + 1; c < mm; ++c)
                v -= A[perm[col] * mm + c] * gamma[c];
            gamma[col] = v / A[perm[col] * mm + col];
            if (!std::isfinite(gamma[col]))
                return false;
        }

        // Bounded extrapolation: an ill-conditioned window asks for
        // an enormous jump that overshoots the locally-linear region
        // and gets rejected; a capped jump in the same direction is
        // accepted and compounds (AccelOptions::maxMixWeight).
        double gsum = 0.0;
        for (std::size_t a = 0; a < mm; ++a)
            gsum += std::abs(gamma[a]);
        if (gsum > maxMixWeight) {
            for (auto &g : gamma)
                g *= maxMixWeight / gsum;
        }

        // out = g_last + sum_i gamma_i (g_i - g_last).
        out = gs[last];
        for (std::size_t a = 0; a < mm; ++a) {
            const double ga = gamma[a];
            if (ga == 0.0)
                continue;
            const std::vector<double> &gi = gs[a];
            const std::vector<double> &gl = gs[last];
            for (std::size_t e = 0; e < out.size(); ++e)
                out[e] += ga * (gi[e] - gl[e]);
        }
        return true;
    }
};

/**
 * Project mixed bids back to the feasible set: per user, clamp to the
 * strict-positivity floor initializeBids uses and rescale to restore
 * budget conservation (Eq. 10). The affine mixing can leave a
 * coordinate negative; the projection is what makes the accelerated
 * iterate a legal bid state.
 */
void
projectBids(const detail::BidKernel &kernel, std::vector<double> &bids)
{
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const std::size_t lo = kernel.userOffset[i];
        const std::size_t hi = kernel.userOffset[i + 1];
        const double floor = 1e-12 * kernel.budget[i];
        double sum = 0.0;
        for (std::size_t e = lo; e < hi; ++e) {
            const double v = bids[e];
            const double clamped =
                (std::isfinite(v) && v > floor) ? v : floor;
            bids[e] = clamped;
            sum += clamped;
        }
        const double scale = kernel.budget[i] / sum;
        for (std::size_t e = lo; e < hi; ++e)
            bids[e] *= scale;
    }
}

} // namespace

void
updateUserBids(const MarketUser &user, const std::vector<double> &prices,
               std::vector<double> &bids)
{
    if (bids.size() != user.jobs.size())
        fatal("bid vector size mismatch for user '", user.name, "'");

    // U_ij = sqrt(f w) * sqrt(p) * s(x) with x = b / p. The factored
    // form (rather than sqrt(f w p)) lets callers hoist sqrt(f w) out
    // of the iteration; the SoA kernel relies on the two forms being
    // the *same* expression so its bids match this function bitwise.
    double total = 0.0;
    for (std::size_t k = 0; k < user.jobs.size(); ++k) {
        const auto &job = user.jobs[k];
        if (job.server >= prices.size()) {
            fatal("user '", user.name, "' bids on server ", job.server,
                  " but only ", prices.size(), " prices were posted");
        }
        const double p = prices[job.server];
        double propensity = 0.0;
        if (p > 0.0 && bids[k] > 0.0) {
            const double x = bids[k] / p;
            propensity =
                std::sqrt(job.parallelFraction * job.weight) *
                std::sqrt(p) * amdahlSpeedup(job.parallelFraction, x);
        }
        bids[k] = propensity; // Reuse storage for the unnormalized U.
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall back
        // to an even split so the budget is still exhausted.
        const double even = user.budget / static_cast<double>(bids.size());
        std::fill(bids.begin(), bids.end(), even);
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (double &b : bids) {
        b = user.budget * b / total;
        AMDAHL_CHECK_FINITE(b);
        AMDAHL_ASSERT(b >= 0.0, "proportional update produced a ",
                      "negative bid for user '", user.name, "'");
    }
}

JobMatrix
meanFieldSeedBids(const FisherMarket &market)
{
    market.validate();
    const std::size_t n = market.userCount();
    double totalBudget = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        totalBudget += market.user(i).budget;
    double totalCapacity = 0.0;
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        totalCapacity += market.capacity(j);
    const double pbar = totalBudget / totalCapacity;

    JobMatrix bids(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        const std::size_t jobs = user.jobs.size();
        bids[i].resize(jobs);
        // Fair-share cores per job at the uniform price, then one
        // analytic proportional-response step against it.
        const double xbar =
            user.budget / (static_cast<double>(jobs) * pbar);
        double total = 0.0;
        for (std::size_t k = 0; k < jobs; ++k) {
            const auto &job = user.jobs[k];
            const double propensity =
                std::sqrt(job.parallelFraction * job.weight) *
                std::sqrt(pbar) *
                amdahlSpeedup(job.parallelFraction, xbar);
            bids[i][k] = propensity;
            total += propensity;
        }
        if (total <= 0.0) {
            const double even =
                user.budget / static_cast<double>(jobs);
            std::fill(bids[i].begin(), bids[i].end(), even);
            continue;
        }
        for (double &b : bids[i])
            b = user.budget * b / total;
    }
    return bids;
}

BiddingResult
solveAmdahlBidding(const FisherMarket &market, const BiddingOptions &opts)
{
    detail::validateBiddingCommon(market, opts);
    if (opts.accel.enabled) {
        if (opts.schedule == UpdateSchedule::GaussSeidel)
            fatal("Anderson acceleration requires the Synchronous "
                  "schedule (the accelerated iterate must respond to "
                  "one posted price vector)");
        if (opts.transport.lossRate > 0.0)
            fatal("Anderson acceleration requires a sound transport; "
                  "under message loss the fixed-point map changes "
                  "every round");
        if (opts.accel.depth < 1 || opts.accel.depth > 8)
            fatal("acceleration depth must be in [1, 8], got ",
                  opts.accel.depth);
        if (!(opts.accel.ridge >= 0.0) ||
            !std::isfinite(opts.accel.ridge))
            fatal("acceleration ridge must be finite and non-negative, "
                  "got ", opts.accel.ridge);
        if (!(opts.accel.maxMixWeight > 0.0) ||
            !std::isfinite(opts.accel.maxMixWeight))
            fatal("acceleration mix-weight cap must be finite and "
                  "positive, got ", opts.accel.maxMixWeight);
    }

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.bidding.solve_us"));
    // Per-phase timers, looked up once per solve (map lookups do not
    // belong inside the round loop); nullptr while timing is off.
    obs::Histogram *update_hist =
        obs::timeHistogram("time.bidding.update_us");
    obs::Histogram *prices_hist =
        obs::timeHistogram("time.bidding.prices_us");
    detail::traceBiddingStart(n, m, opts);

    BiddingResult result;
    result.prices.assign(m, 0.0);
    detail::initializeBids(market, opts, result.bids);

    detail::BidKernel localKernel;
    detail::BidKernel &kernel =
        detail::acquireKernel(market, opts.kernelCache, localKernel);
    detail::flattenBids(result.bids, kernel);
    detail::gatherPrices(kernel, result.prices);

    // Anytime bookkeeping. The best-so-far snapshot is seeded with the
    // initial state: on a validated market every server hosts a job and
    // every initial bid is positive, so initial prices are all
    // positive and the snapshot is feasible no matter how early the
    // deadline fires. A round's state only replaces it when its price
    // update moved less *and* its prices stayed strictly positive.
    const bool anytime = opts.deadline.enabled();
    // Baselined DET-clock finding (tools/lint/amdahl_lint.baseline):
    // the wall-clock deadline exists to bound real latency under
    // overload, and the clock is never read unless a deadline is set.
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_time;
    if (opts.deadline.wallClockSeconds > 0.0)
        start_time = Clock::now();
    std::vector<double> best_bids;
    std::vector<double> best_prices;
    double best_delta = std::numeric_limits<double>::infinity();
    if (anytime) {
        best_bids = kernel.bids;
        best_prices = result.prices;
    }

    // Lossy transport: each (user, round) loss decision comes from its
    // own counter-based substream — a pure function of (seed, user,
    // round) — so realizations are identical under either schedule and
    // at any thread count. The mask is materialized serially before the
    // round's fan-out; with a sound transport (the default) nothing is
    // ever drawn.
    const bool lossy = opts.transport.lossRate > 0.0;
    std::vector<unsigned char> lost;
    if (lossy)
        lost.assign(n, 0);
    std::uint64_t lost_messages = 0;

    // The user grain is a config/env knob (bench sweeps it); the
    // price-block size is not, so the canonical fold — and with it
    // every result byte — is identical at any grain.
    const std::size_t userGrain =
        exec::bidUpdateGrain(detail::kUserGrain);

    const bool accel = opts.accel.enabled;
    AndersonState anderson{opts.accel.depth, opts.accel.ridge,
                           opts.accel.maxMixWeight, {}, {}, {}, {}};
    std::vector<double> accel_prev;
    std::vector<double> accel_mix;
    std::vector<double> accel_candidate;
    std::vector<double> accel_prices;
    std::vector<double> accel_next_prices;
    if (accel) {
        accel_prices.resize(m);
        accel_next_prices.resize(m);
    }

    std::vector<double> new_prices(m);
    std::vector<double> live_prices;
    for (int it = 0; it < opts.maxIterations; ++it) {
        bool round_lost_message = false;
        if (lossy) {
            for (std::size_t i = 0; i < n; ++i) {
                lost[i] = counterBernoulli(
                              opts.transport.seed, i,
                              static_cast<std::uint64_t>(it),
                              opts.transport.lossRate)
                              ? 1
                              : 0;
                if (lost[i]) {
                    // This user's update message is lost: her previous
                    // bids stand for the round (they still sum to her
                    // budget, so no invariant moves).
                    round_lost_message = true;
                    ++lost_messages;
                }
            }
        }

        {
            obs::ScopedTimer update_timer(update_hist);
            if (opts.schedule == UpdateSchedule::GaussSeidel) {
                // Inherently sequential: each user responds to prices
                // that already reflect earlier users' new bids.
                live_prices = result.prices;
                for (std::size_t i = 0; i < n; ++i) {
                    if (lossy && lost[i])
                        continue;
                    const std::size_t lo = kernel.userOffset[i];
                    const std::size_t hi = kernel.userOffset[i + 1];
                    // Fold the bid change into prices immediately so
                    // later users in this round see it.
                    std::vector<double> previous(
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(lo),
                        kernel.bids.begin() +
                            static_cast<std::ptrdiff_t>(hi));
                    detail::updateOneUser(kernel, i, live_prices,
                                          opts.damping);
                    for (std::size_t e = lo; e < hi; ++e) {
                        const std::size_t j = kernel.server[e];
                        live_prices[j] +=
                            (kernel.bids[e] - previous[e - lo]) /
                            kernel.capacity[j];
                    }
                }
            } else {
                // Synchronous: every user responds to the same posted
                // prices and writes only her own bid slots — disjoint
                // per chunk, so the fan-out commutes bitwise. The
                // accelerator needs the pre-update iterate to form the
                // residual g(x) - x.
                if (accel)
                    accel_prev = kernel.bids;
                exec::parallelFor(
                    0, n, userGrain,
                    [&](std::size_t ulo, std::size_t uhi) {
                        if (!lossy) {
                            detail::updateUsersRange(kernel, ulo, uhi,
                                                     result.prices,
                                                     opts.damping);
                            return;
                        }
                        for (std::size_t i = ulo; i < uhi; ++i) {
                            if (lost[i])
                                continue;
                            detail::updateOneUser(kernel, i,
                                                  result.prices,
                                                  opts.damping);
                        }
                    });
            }
        }

        {
            obs::ScopedTimer prices_timer(prices_hist);
            detail::gatherPrices(kernel, new_prices);
        }

        double max_delta =
            detail::maxPriceDelta(result.prices, new_prices, m);

        if (accel) {
            // The plain PRD step is already in kernel.bids/new_prices
            // and is the guaranteed fallback. Try to do better: mix
            // the history window into a candidate iterate, project it
            // to feasibility, and *evaluate* it — one proportional-
            // response pass at the candidate measures its true
            // fixed-point residual. Accept only when that residual is
            // strictly below the plain step's; the evaluation pass is
            // never wasted, because on acceptance g(candidate) is
            // exactly the next iterate (and joins the history). On
            // rejection the plain step stands untouched and the
            // window restarts — a poisoned history would keep
            // proposing the same bad direction.
            const double plain_delta = max_delta;
            anderson.push(std::move(accel_prev), kernel.bids);
            double accel_delta = -1.0;
            bool accepted = false;
            if (anderson.proposal(accel_mix)) {
                projectBids(kernel, accel_mix);
                // kernel.bids := candidate; accel_mix keeps the plain
                // step for the rejection path.
                std::swap(kernel.bids, accel_mix);
                detail::gatherPrices(kernel, accel_prices);
                accel_candidate = kernel.bids;
                exec::parallelFor(
                    0, n, userGrain,
                    [&](std::size_t ulo, std::size_t uhi) {
                        detail::updateUsersRange(kernel, ulo, uhi,
                                                 accel_prices,
                                                 opts.damping);
                    });
                detail::gatherPrices(kernel, accel_next_prices);
                accel_delta = detail::maxPriceDelta(
                    accel_prices, accel_next_prices, m);
                if (accel_delta < plain_delta) {
                    accepted = true;
                    anderson.push(std::move(accel_candidate),
                                  kernel.bids);
                    std::swap(new_prices, accel_next_prices);
                    max_delta = accel_delta;
                    ++result.accelAccepted;
                } else {
                    std::swap(kernel.bids, accel_mix);
                    ++result.accelRejected;
                }
            }
            if (auto *sink = obs::traceSink()) {
                obs::TraceEvent(*sink, "bidding_accel")
                    .field("iter", it + 1)
                    .field("plain_delta", plain_delta)
                    .field("accel_delta", accel_delta)
                    .field("accepted", accepted);
            }
        }

        detail::checkRoundInvariants(market, kernel, new_prices,
                                     result.bids);
        result.prices = new_prices;
        result.iterations = it + 1;
        if (opts.trackHistory)
            result.priceDeltaHistory.push_back(max_delta);
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "bidding_iter")
                .field("iter", it + 1)
                .field("max_delta", max_delta)
                .field("lost_messages", round_lost_message);
        }
        // A round with lost messages can leave prices spuriously
        // still (nobody moved), so it never counts as convergence.
        if (max_delta < opts.priceTolerance && !round_lost_message) {
            result.converged = true;
            break;
        }

        if (anytime) {
            bool positive = true;
            for (double p : new_prices) {
                if (!(p > 0.0)) {
                    positive = false;
                    break;
                }
            }
            if (positive && max_delta < best_delta) {
                best_delta = max_delta;
                best_bids = kernel.bids;
                best_prices = new_prices;
            }
            bool expired = opts.deadline.iterationBudget > 0 &&
                           it + 1 >= opts.deadline.iterationBudget;
            if (opts.deadline.wallClockSeconds > 0.0) {
                result.elapsedSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  start_time)
                        .count();
                expired = expired || result.elapsedSeconds >=
                                         opts.deadline.wallClockSeconds;
            }
            if (expired) {
                kernel.bids = std::move(best_bids);
                result.prices = std::move(best_prices);
                result.deadlineExpired = true;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "deadline_expired")
                        .field("iter", it + 1)
                        .field("best_delta", best_delta);
                }
                break;
            }
        }
    }
    if (opts.deadline.wallClockSeconds > 0.0 &&
        !result.deadlineExpired) {
        result.elapsedSeconds =
            std::chrono::duration<double>(Clock::now() - start_time)
                .count();
    }

    detail::recordSolveEnd(result, lost_messages);
    detail::unflattenBids(kernel, result.bids);
    detail::finalizeAllocation(market, result, true);
    return result;
}

} // namespace amdahl::core
