/**
 * @file
 * Shared internals of the proportional-response clearing solvers.
 *
 * The in-process solver (bidding.cc) and the sharded epoch-barrier
 * solver (bidding_sharded.cc) must produce byte-identical results in
 * the fault-free case — ISSUE 8's determinism bridge. The only way to
 * keep two round loops bit-compatible is to make them share every
 * numeric kernel, so this header holds the structure-of-arrays view,
 * the bid update, the price accumulation, the delta reduction, and
 * the entry/exit bookkeeping as inline functions in core::detail.
 *
 * ## The blocked canonical price fold
 *
 * Per-server price sums are defined as a left fold over fixed-size
 * *price blocks* of kPriceBlockUsers consecutive users: block b's
 * partial on server j is the front-to-back sum of that block's CSR
 * bid entries, and p_j * C_j = ((0 + part_0) + part_1) + ... in
 * block order. The block size is a constant — never derived from the
 * shard or thread count — so the addition tree is a function of the
 * market alone. A shard owns whole blocks and ships per-(server,
 * block) partials; the coordinator folds a dense block x server
 * table. Zero-valued partials (blocks absent on a server) are
 * bitwise no-ops under IEEE addition (x + 0.0 == x for the
 * non-negative partials bids produce), so the streaming in-process
 * fold over present blocks and the dense table fold over all blocks
 * agree bit for bit — at any shard count, including the legacy
 * single-fold result for markets of at most one block.
 */

#ifndef AMDAHL_CORE_BIDDING_KERNEL_HH
#define AMDAHL_CORE_BIDDING_KERNEL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::core::detail {

/** Users per parallelFor chunk in the Synchronous bid-update kernel.
 *  Fixed (never derived from the thread count) so the chunk layout —
 *  and with it exec.tasks and every reduction tree — is identical at
 *  any thread count. */
constexpr std::size_t kUserGrain = 32;

/** Servers per chunk in the price gather and the delta reduction. */
constexpr std::size_t kServerGrain = 8;

/** Users per canonical price-accumulation block (see file header).
 *  Matches kUserGrain so one update chunk produces one block. */
constexpr std::size_t kPriceBlockUsers = 32;

/** Number of price blocks covering @p userCount users. */
inline std::size_t
priceBlockCount(std::size_t userCount)
{
    return (userCount + kPriceBlockUsers - 1) / kPriceBlockUsers;
}

/**
 * Structure-of-arrays view of one clearing problem.
 *
 * The per-user AoS layout (MarketUser::jobs, JobMatrix) is the right
 * API shape but the wrong iteration shape: the proportional-response
 * inner loop touches three doubles per job and pays a pointer chase
 * per user per field. The kernel flattens every job to one index e in
 * user-major order and keeps each field contiguous. The loop-invariant
 * factor sqrt(f_ij * w_ij) of the propensity U_ij = sqrt(f w p) s(x)
 * is hoisted here, once per clearing — the per-round kernel multiplies
 * it by sqrt(p_j), which is exactly the factorization updateUserBids
 * uses, so kernel bids match the reference function bit for bit.
 *
 * Prices are gathered server-major through a CSR index
 * (serverJobOffset/serverJobIds). Flat job ids are user-major, so each
 * server's id list is increasing in (user, job) order — within a price
 * block, summing it front to back performs the *same sequence of
 * additions* as the legacy user-major scatter did; across blocks the
 * canonical left fold takes over (see the file header for the full
 * determinism argument, DESIGN.md §11/§14).
 *
 * Per-job index arrays (server, jobBlock, serverJobIds) are 32-bit:
 * the round loop is memory-bound once the market outgrows the cache,
 * and every byte streamed per job per round counts. buildKernel
 * rejects markets whose job or server count overflows 32 bits —
 * 4 * 10^9 jobs is three orders of magnitude past the scale this
 * repo targets (bench_scaling_users tops out at 10^6 users).
 */
struct BidKernel
{
    std::size_t userCount = 0;
    std::size_t serverCount = 0;
    std::size_t jobCount = 0;

    std::vector<std::size_t> userOffset; // userCount + 1
    std::vector<double> budget;          // per user

    // Per flat job, user-major.
    std::vector<std::uint32_t> server;
    std::vector<double> fraction;        // f_ij
    std::vector<double> sqrtFw;          // sqrt(f_ij * w_ij), hoisted
    std::vector<double> bids;            // b_ij, the iterated state
    std::vector<double> scratch;         // unnormalized propensities
    std::vector<std::uint32_t> jobBlock; // owning user's price block

    // Server-major CSR over flat job ids (increasing within a server).
    std::vector<std::size_t> serverJobOffset; // serverCount + 1
    std::vector<std::uint32_t> serverJobIds;

    std::vector<double> capacity; // per server
};

inline BidKernel
buildKernel(const FisherMarket &market)
{
    BidKernel kernel;
    kernel.userCount = market.userCount();
    kernel.serverCount = market.serverCount();

    kernel.userOffset.reserve(kernel.userCount + 1);
    kernel.userOffset.push_back(0);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        kernel.userOffset.push_back(kernel.userOffset.back() +
                                    market.user(i).jobs.size());
    }
    kernel.jobCount = kernel.userOffset.back();
    ensure(kernel.jobCount < UINT32_MAX &&
               kernel.serverCount < UINT32_MAX,
           "market exceeds the kernel's 32-bit job/server id range");

    kernel.budget.resize(kernel.userCount);
    kernel.server.resize(kernel.jobCount);
    kernel.fraction.resize(kernel.jobCount);
    kernel.sqrtFw.resize(kernel.jobCount);
    kernel.bids.assign(kernel.jobCount, 0.0);
    kernel.scratch.assign(kernel.jobCount, 0.0);
    kernel.jobBlock.resize(kernel.jobCount);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const auto &user = market.user(i);
        kernel.budget[i] = user.budget;
        std::size_t e = kernel.userOffset[i];
        for (const auto &job : user.jobs) {
            kernel.server[e] = static_cast<std::uint32_t>(job.server);
            kernel.fraction[e] = job.parallelFraction;
            kernel.sqrtFw[e] =
                std::sqrt(job.parallelFraction * job.weight);
            kernel.jobBlock[e] =
                static_cast<std::uint32_t>(i / kPriceBlockUsers);
            ++e;
        }
    }

    kernel.capacity.resize(kernel.serverCount);
    for (std::size_t j = 0; j < kernel.serverCount; ++j)
        kernel.capacity[j] = market.capacity(j);

    // CSR: counting sort of flat job ids by server. Ids come out
    // increasing per server because the fill scans them in order.
    kernel.serverJobOffset.assign(kernel.serverCount + 1, 0);
    for (std::size_t e = 0; e < kernel.jobCount; ++e)
        ++kernel.serverJobOffset[kernel.server[e] + 1];
    for (std::size_t j = 0; j < kernel.serverCount; ++j)
        kernel.serverJobOffset[j + 1] += kernel.serverJobOffset[j];
    kernel.serverJobIds.resize(kernel.jobCount);
    std::vector<std::size_t> cursor(
        kernel.serverJobOffset.begin(),
        kernel.serverJobOffset.end() - 1);
    for (std::size_t e = 0; e < kernel.jobCount; ++e) {
        kernel.serverJobIds[cursor[kernel.server[e]]++] =
            static_cast<std::uint32_t>(e);
    }

    return kernel;
}

inline void
flattenBids(const JobMatrix &bids, BidKernel &kernel)
{
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        std::copy(bids[i].begin(), bids[i].end(),
                  kernel.bids.begin() +
                      static_cast<std::ptrdiff_t>(kernel.userOffset[i]));
    }
}

inline void
unflattenBids(const BidKernel &kernel, JobMatrix &bids)
{
    bids.resize(kernel.userCount);
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const std::size_t lo = kernel.userOffset[i];
        const std::size_t hi = kernel.userOffset[i + 1];
        bids[i].assign(kernel.bids.begin() +
                           static_cast<std::ptrdiff_t>(lo),
                       kernel.bids.begin() +
                           static_cast<std::ptrdiff_t>(hi));
    }
}

/**
 * Recompute prices from the flat bids: p_j = sum b_ij / C_j via the
 * blocked canonical fold (file header). Parallel over servers; each
 * server streams its CSR id list front to back, closing a block
 * partial whenever the owning block changes — block ids are
 * non-decreasing along the list because flat ids are user-major.
 */
inline void
gatherPrices(const BidKernel &kernel, std::vector<double> &prices)
{
    exec::parallelFor(
        0, kernel.serverCount, kServerGrain,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t j = lo; j < hi; ++j) {
                double sum = 0.0;
                double part = 0.0;
                std::uint32_t block = 0;
                const std::size_t jb = kernel.serverJobOffset[j];
                const std::size_t je = kernel.serverJobOffset[j + 1];
                for (std::size_t s = jb; s < je; ++s) {
                    const std::size_t e = kernel.serverJobIds[s];
                    if (kernel.jobBlock[e] != block) {
                        sum += part;
                        part = 0.0;
                        block = kernel.jobBlock[e];
                    }
                    part += kernel.bids[e];
                }
                prices[j] = (sum + part) / kernel.capacity[j];
            }
        });
}

/**
 * Fill rows [blockLo, blockHi) of the dense block x server partial
 * table from the kernel's current bids. Row b holds block b's
 * front-to-back partial per server (zero where the block has no jobs
 * on a server). Serial: callers decide the fan-out.
 */
inline void
accumulateBlockPartials(const BidKernel &kernel, std::size_t blockLo,
                        std::size_t blockHi, std::vector<double> &table)
{
    const std::size_t m = kernel.serverCount;
    for (std::size_t b = blockLo; b < blockHi; ++b) {
        double *row = table.data() + b * m;
        std::fill(row, row + m, 0.0);
        const std::size_t uLo = b * kPriceBlockUsers;
        const std::size_t uHi =
            std::min(kernel.userCount, uLo + kPriceBlockUsers);
        // User-major within the block == the CSR order restricted to
        // the block, so these partials match gatherPrices bitwise.
        for (std::size_t e = kernel.userOffset[uLo];
             e < kernel.userOffset[uHi]; ++e)
            row[kernel.server[e]] += kernel.bids[e];
    }
}

/**
 * Fold the dense partial table into prices: the canonical left fold
 * over all blocks, zeros included. Same parallel shape as
 * gatherPrices, so exec.tasks agrees between the two solvers.
 */
inline void
foldPriceTable(const std::vector<double> &table, std::size_t blockCount,
               const BidKernel &kernel, std::vector<double> &prices)
{
    const std::size_t m = kernel.serverCount;
    exec::parallelFor(
        0, m, kServerGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t j = lo; j < hi; ++j) {
                double sum = 0.0;
                for (std::size_t b = 0; b < blockCount; ++b)
                    sum += table[b * m + j];
                prices[j] = sum / kernel.capacity[j];
            }
        });
}

/**
 * One proportional-response update for user @p i against @p posted
 * prices, writing the (damped) next bids in place. Bitwise identical
 * to updateUserBids + the solver's damping blend; shared by both
 * schedules and both solvers so they cannot drift apart.
 */
inline void
updateOneUser(BidKernel &kernel, std::size_t i,
              const std::vector<double> &posted, double damping)
{
    const std::size_t lo = kernel.userOffset[i];
    const std::size_t hi = kernel.userOffset[i + 1];
    double total = 0.0;
    for (std::size_t e = lo; e < hi; ++e) {
        const double p = posted[kernel.server[e]];
        double propensity = 0.0;
        if (p > 0.0 && kernel.bids[e] > 0.0) {
            const double x = kernel.bids[e] / p;
            propensity = kernel.sqrtFw[e] * std::sqrt(p) *
                         amdahlSpeedup(kernel.fraction[e], x);
        }
        kernel.scratch[e] = propensity;
        total += propensity;
    }

    if (total <= 0.0) {
        // All propensities vanished (e.g. fully serial jobs): fall
        // back to an even split so the budget is still exhausted.
        const double even =
            kernel.budget[i] / static_cast<double>(hi - lo);
        for (std::size_t e = lo; e < hi; ++e) {
            kernel.bids[e] =
                damping < 1.0
                    ? (1.0 - damping) * kernel.bids[e] + damping * even
                    : even;
        }
        return;
    }
    AMDAHL_CHECK_FINITE(total);
    for (std::size_t e = lo; e < hi; ++e) {
        const double proposal =
            kernel.budget[i] * kernel.scratch[e] / total;
        AMDAHL_CHECK_FINITE(proposal);
        AMDAHL_ASSERT(proposal >= 0.0,
                      "proportional update produced a negative bid ",
                      "for user ", i);
        kernel.bids[e] =
            damping < 1.0
                ? (1.0 - damping) * kernel.bids[e] + damping * proposal
                : proposal;
    }
}

/** The option fatals shared by both solvers (plus market.validate()). */
inline void
validateBiddingCommon(const FisherMarket &market,
                      const BiddingOptions &opts)
{
    market.validate();
    if (opts.priceTolerance <= 0.0)
        fatal("price tolerance must be positive");
    if (opts.maxIterations < 1)
        fatal("need at least one iteration");
    if (opts.damping <= 0.0 || opts.damping > 1.0)
        fatal("damping must be in (0, 1], got ", opts.damping);
    if (opts.transport.lossRate < 0.0 || opts.transport.lossRate > 1.0)
        fatal("bid loss rate must be in [0, 1], got ",
              opts.transport.lossRate);
    if (opts.deadline.wallClockSeconds < 0.0 ||
        !std::isfinite(opts.deadline.wallClockSeconds)) {
        fatal("wall-clock deadline must be finite and non-negative, "
              "got ", opts.deadline.wallClockSeconds);
    }
    if (opts.deadline.iterationBudget < 0) {
        fatal("iteration budget must be non-negative, got ",
              opts.deadline.iterationBudget);
    }
}

/** The bidding_start trace event, identical from both solvers. */
inline void
traceBiddingStart(std::size_t n, std::size_t m,
                  const BiddingOptions &opts)
{
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_start")
            .field("users", n)
            .field("servers", m)
            .field("schedule",
                   opts.schedule == UpdateSchedule::GaussSeidel
                       ? "gauss_seidel"
                       : "synchronous")
            .field("damping", opts.damping)
            .field("warm_start", !opts.initialBids.empty())
            .field("deadline_armed", opts.deadline.enabled());
    }
}

/**
 * Initial bids: warm start when provided, else an even split of each
 * budget (with renormalization and a strict-positivity floor for warm
 * starts — see the budget-conservation contract inline).
 */
inline void
initializeBids(const FisherMarket &market, const BiddingOptions &opts,
               JobMatrix &bids)
{
    const std::size_t n = market.userCount();
    if (!opts.initialBids.empty() && opts.initialBids.size() != n) {
        fatal("warm-start bids have ", opts.initialBids.size(),
              " users, expected ", n);
    }
    bids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        const double even =
            user.budget / static_cast<double>(user.jobs.size());
        bids[i].assign(user.jobs.size(), even);
        if (opts.initialBids.empty())
            continue;
        const auto &seed = opts.initialBids[i];
        if (seed.size() != user.jobs.size()) {
            fatal("warm-start bids for user ", i, " have ",
                  seed.size(), " jobs, expected ", user.jobs.size());
        }
        double total = 0.0;
        bool usable = true;
        for (double b : seed) {
            if (b < 0.0 || !std::isfinite(b))
                usable = false;
            total += b;
        }
        if (!usable || total <= 0.0)
            continue; // Fall back to the even split.
        for (std::size_t k = 0; k < seed.size(); ++k) {
            // Keep strictly positive bids so the proportional update
            // can move every coordinate.
            bids[i][k] = std::max(1e-12 * user.budget,
                                  user.budget * seed[k] / total);
            AMDAHL_CHECK_FINITE(bids[i][k]);
            AMDAHL_ASSERT(bids[i][k] > 0.0,
                          "warm start produced a non-positive bid ",
                          "for user '", user.name, "' job ", k);
        }
        // Contract: renormalization restores budget exhaustion (Eq.
        // 10) no matter how stale or rescaled the seed bids were; the
        // positivity floor can only inflate the sum by jobs * 1e-12.
        if constexpr (checkedBuild) {
            double renormalized = 0.0;
            for (double b : bids[i])
                renormalized += b;
            AMDAHL_ASSERT(std::abs(renormalized - user.budget) <=
                              1e-9 * user.budget *
                                  static_cast<double>(seed.size() + 1),
                          "warm start broke budget conservation for ",
                          "user '", user.name, "'");
        }
    }
}

/**
 * Contract: after every proportional-response round, prices stay
 * positive and finite, bids stay non-negative, and each user's bids
 * still sum to her budget (paper Eq. 10). No code in default builds.
 */
inline void
checkRoundInvariants(const FisherMarket &market, const BidKernel &kernel,
                     const std::vector<double> &newPrices,
                     JobMatrix &bidsScratch)
{
    if constexpr (checkedBuild) {
        unflattenBids(kernel, bidsScratch);
        invariants::CheckMarketState(newPrices, bidsScratch,
                                     "bidding round");
        const std::size_t n = market.userCount();
        std::vector<double> budgets(n);
        for (std::size_t i = 0; i < n; ++i)
            budgets[i] = market.user(i).budget;
        invariants::CheckBidBudgets(bidsScratch, budgets, 1e-9,
                                    "bidding round");
    }
}

/**
 * Relative max price movement between rounds. max over chunks is
 * exact (no rounding), so the tree fold is trivially
 * order-independent; the reduce keeps the scan off the critical path
 * at high thread counts.
 */
inline double
maxPriceDelta(const std::vector<double> &oldPrices,
              const std::vector<double> &newPrices, std::size_t m)
{
    return exec::parallelReduce(
        std::size_t{0}, m, kServerGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double chunk_max = 0.0;
            for (std::size_t j = lo; j < hi; ++j) {
                const double base = std::max(oldPrices[j], 1e-300);
                chunk_max = std::max(
                    chunk_max,
                    std::abs(newPrices[j] - oldPrices[j]) / base);
            }
            return chunk_max;
        },
        [](double a, double b) { return std::max(a, b); });
}

/** The bidding.* solve counters + bidding_end event, shared. */
inline void
recordSolveEnd(const BiddingResult &result, std::uint64_t lostMessages)
{
    auto &reg = obs::metrics();
    reg.counter("bidding.solves").add();
    reg.counter("bidding.iterations")
        .add(static_cast<std::uint64_t>(result.iterations));
    if (!result.converged)
        reg.counter("bidding.non_converged").add();
    if (result.deadlineExpired)
        reg.counter("bidding.deadline_expired").add();
    if (lostMessages > 0)
        reg.counter("bidding.lost_messages").add(lostMessages);
    if (result.accelAccepted > 0)
        reg.counter("bidding.accel_accepted")
            .add(static_cast<std::uint64_t>(result.accelAccepted));
    if (result.accelRejected > 0)
        reg.counter("bidding.accel_rejected")
            .add(static_cast<std::uint64_t>(result.accelRejected));
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "bidding_end")
            .field("iterations", result.iterations)
            .field("converged", result.converged)
            .field("deadline_expired", result.deadlineExpired);
    }
}

/**
 * Final allocations x_ij = b_ij / p_j, plus the clearing-feasibility
 * contract in checked builds. @p checkFeasible lets the sharded
 * solver skip the contract when its final round served stale
 * aggregates: shard-local bids and coordinator prices are then
 * legitimately inconsistent (the degraded round is the point), and
 * the non-converged result escalates through the fallback ladder
 * instead.
 */
inline void
finalizeAllocation(const FisherMarket &market, BiddingResult &result,
                   bool checkFeasible)
{
    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();
    result.allocation.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        result.allocation[i].resize(jobs.size());
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            const double p = result.prices[jobs[k].server];
            ensure(p > 0.0, "zero equilibrium price on server ",
                   jobs[k].server);
            result.allocation[i][k] = result.bids[i][k] / p;
        }
    }

    // Contract: x = b / p clears every server exactly up to rounding,
    // and never over-subscribes capacity.
    if constexpr (checkedBuild) {
        if (checkFeasible) {
            std::vector<double> loads(m, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                const auto &jobs = market.user(i).jobs;
                for (std::size_t k = 0; k < jobs.size(); ++k)
                    loads[jobs[k].server] += result.allocation[i][k];
            }
            invariants::CheckAllocationFeasible(
                loads, market.capacities(), 1e-6, "bidding allocation");
        }
    }
}

} // namespace amdahl::core::detail

namespace amdahl::core {

/**
 * Cross-solve kernel cache for incremental delta re-clearing.
 *
 * An epoch-based deployment re-clears a market whose *structure* (who
 * bids on which server, server capacities) rarely changes between
 * epochs even when *values* (budgets from compensation, f/w from
 * re-profiling) drift. The cache keeps the previous solve's BidKernel;
 * when the structure still matches — decided by exact comparison, not
 * hashing, so reuse can never silently serve stale data — the CSR
 * counting sort and all allocations are skipped and only the rows of
 * users whose values changed are re-derived (including the hoisted
 * sqrt(f w), recomputed with the same expression buildKernel uses).
 * Results are therefore byte-identical with or without the cache; it
 * is a pure structural cache, safe to drop at any time (crash
 * recovery simply rebuilds it).
 */
struct KernelCache
{
    bool valid = false;
    detail::BidKernel kernel;
    /** Per flat job, the weight the cached sqrtFw was derived from
     *  (the kernel itself only stores the product sqrt(f w)). */
    std::vector<double> weight;

    // Telemetry, mirrored into bidding.kernel_* counters.
    std::uint64_t rebuilds = 0;
    std::uint64_t reuses = 0;
    std::uint64_t patchedUsers = 0;
};

namespace detail {

/** @return true when @p kernel's structure matches @p market exactly:
 *  same shape, same job→server edges, same capacities. */
inline bool
kernelStructureMatches(const BidKernel &kernel,
                       const FisherMarket &market)
{
    if (kernel.userCount != market.userCount() ||
        kernel.serverCount != market.serverCount())
        return false;
    for (std::size_t j = 0; j < kernel.serverCount; ++j) {
        if (kernel.capacity[j] != market.capacity(j))
            return false;
    }
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const auto &jobs = market.user(i).jobs;
        if (kernel.userOffset[i + 1] - kernel.userOffset[i] !=
            jobs.size())
            return false;
        std::size_t e = kernel.userOffset[i];
        for (const auto &job : jobs) {
            if (kernel.server[e] != job.server)
                return false;
            ++e;
        }
    }
    return true;
}

/**
 * The kernel for this solve: a fresh build into @p local when no cache
 * is supplied, otherwise the cached kernel — rebuilt on structural
 * mismatch, row-patched where only values moved (see KernelCache).
 */
inline BidKernel &
acquireKernel(const FisherMarket &market, KernelCache *cache,
              BidKernel &local)
{
    if (cache == nullptr) {
        local = buildKernel(market);
        return local;
    }
    auto &reg = obs::metrics();
    if (!cache->valid || !kernelStructureMatches(cache->kernel, market)) {
        cache->kernel = buildKernel(market);
        cache->weight.resize(cache->kernel.jobCount);
        for (std::size_t i = 0; i < cache->kernel.userCount; ++i) {
            std::size_t e = cache->kernel.userOffset[i];
            for (const auto &job : market.user(i).jobs)
                cache->weight[e++] = job.weight;
        }
        cache->valid = true;
        ++cache->rebuilds;
        reg.counter("bidding.kernel_rebuilds").add();
        return cache->kernel;
    }

    ++cache->reuses;
    reg.counter("bidding.kernel_reuses").add();
    BidKernel &kernel = cache->kernel;
    for (std::size_t i = 0; i < kernel.userCount; ++i) {
        const auto &user = market.user(i);
        bool changed = kernel.budget[i] != user.budget;
        std::size_t e = kernel.userOffset[i];
        for (const auto &job : user.jobs) {
            changed = changed ||
                      kernel.fraction[e] != job.parallelFraction ||
                      cache->weight[e] != job.weight;
            ++e;
        }
        if (!changed)
            continue;
        kernel.budget[i] = user.budget;
        e = kernel.userOffset[i];
        for (const auto &job : user.jobs) {
            kernel.fraction[e] = job.parallelFraction;
            cache->weight[e] = job.weight;
            kernel.sqrtFw[e] =
                std::sqrt(job.parallelFraction * job.weight);
            ++e;
        }
        ++cache->patchedUsers;
        reg.counter("bidding.kernel_patched_users").add();
    }
    return kernel;
}

} // namespace detail
} // namespace amdahl::core

#endif // AMDAHL_CORE_BIDDING_KERNEL_HH
