/**
 * @file
 * The Amdahl Bidding procedure (Section V-D/E).
 *
 * Proportional response dynamics extended to Amdahl utilities. Each
 * iteration evaluates closed-form equations only — no optimization:
 *
 *     p_j(t)    = sum_i b_ij(t) / C_j
 *     x_ij(t)   = b_ij(t) / p_j(t)
 *     U_ij(t)   = sqrt(f_ij w_ij p_j(t)) * s_ij(x_ij(t))
 *     b_ij(t+1) = b_i * U_ij(t) / sum_k U_ik(t)
 *
 * The update's fixed points satisfy the KKT stationarity condition
 * b_ij^2 proportional to w_ij f_ij s_ij^2 p_j (the paper's Eq. 9), so any
 * fixed point is a market equilibrium and vice versa. The procedure
 * terminates when prices change by less than a small threshold epsilon.
 */

#ifndef AMDAHL_CORE_BIDDING_HH
#define AMDAHL_CORE_BIDDING_HH

#include <cstdint>
#include <vector>

#include "core/market.hh"

namespace amdahl::net {
struct ShardedOptions;
struct NetSession;
} // namespace amdahl::net

namespace amdahl::core {

/** How users' bid updates are interleaved within one iteration. */
enum class UpdateSchedule
{
    /** All users respond to the same posted prices (the paper's
     *  distributed deployment: bids computed in parallel). */
    Synchronous,
    /** Users update one at a time against prices that already reflect
     *  earlier users' new bids (a centralized coordinator's natural
     *  order; typically converges in fewer iterations). */
    GaussSeidel,
};

/**
 * Transport faults of the distributed (Synchronous) deployment: each
 * user's bid update is an independent message to the price coordinator
 * and may be lost. A lost update leaves the user's previous bids
 * standing for that round — exactly the effect of a delayed message —
 * so budget conservation is never violated; only convergence slows
 * (and stalls entirely at lossRate 1, which the fallback ladder in
 * alloc/fallback_policy.hh then absorbs).
 */
struct BidTransportFaults
{
    /** Per-round probability a user's bid update is lost (0 = sound
     *  transport). */
    double lossRate = 0.0;

    /** Seed of the loss realization. Each (user, round) decision is
     *  drawn from its own counter-based substream keyed by
     *  (seed, user, round) — see substreamSeed in common/random.hh —
     *  so the realization is a pure function of those coordinates:
     *  identical under either schedule, at any thread count, and
     *  independent of how many draws other users made. */
    std::uint64_t seed = 0;
};

/**
 * Anytime deadline budget (both limits disabled by default).
 *
 * An epoch-based deployment must post *some* allocation before the
 * epoch boundary even when bidding has not converged. With a deadline
 * armed, the solver tracks the best state seen so far — the bid matrix
 * whose price update moved the least, restricted to states with
 * strictly positive prices — and on expiry returns that state flagged
 * `deadlineExpired` instead of iterating on. The returned state is
 * always budget-feasible: bids are renormalized to budgets every round
 * (Eq. 10) and x = b / p clears each server exactly, so grants never
 * exceed capacity even when the deadline fires on iteration 1 (where
 * the even-split initial state, which has all-positive prices on any
 * validated market, is the guaranteed fallback).
 */
struct DeadlineOptions
{
    /** Wall-clock budget in seconds (0 = no wall-clock deadline).
     *  Checked against std::chrono::steady_clock after each round, so
     *  results under a wall-clock deadline are machine-dependent; use
     *  `iterationBudget` where determinism matters. */
    double wallClockSeconds = 0.0;

    /** Anytime iteration budget (0 = none). Unlike `maxIterations` —
     *  which just stops and reports the *last* state — exhausting this
     *  budget restores the *best* state and flags `deadlineExpired`. */
    int iterationBudget = 0;

    /** @return true when either limit is armed. */
    bool enabled() const
    {
        return wallClockSeconds > 0.0 || iterationBudget > 0;
    }
};

/**
 * Anderson acceleration over the proportional-response fixed-point map
 * (opt-in; `--accel` on the CLI). Each round still evaluates the plain
 * PRD update g(x); the accelerator then proposes an affine combination
 * of the last `depth + 1` (iterate, update) pairs that minimizes the
 * combined residual in least squares, projected back to the feasible
 * set (strictly positive bids, per-user budget conservation).
 *
 * Rejection rule (the guaranteed fallback): the proposal is accepted
 * only when its posted-price residual is strictly smaller than the
 * plain step's. On rejection the round serves the plain PRD step
 * unchanged and the history window is cleared, so the iteration is
 * never worse than undamped proportional response — in the worst case
 * it *is* undamped proportional response.
 *
 * Off (the default) the solve path is bit-identical to a build
 * without this feature. Incompatible with the GaussSeidel schedule,
 * lossy transports, and the sharded solver (fatal).
 */
struct AccelOptions
{
    /** Master switch. */
    bool enabled = false;

    /** History window: past (iterate, update) pairs kept, in [1, 8].
     *  The least-squares system has at most this many unknowns. */
    int depth = 3;

    /** Tikhonov regularization scale for the normal equations,
     *  relative to the Gram matrix trace. */
    double ridge = 1e-10;

    /**
     * Cap on the l1 norm of the mixing weights (gamma is rescaled
     * when it exceeds this). Near the fixed point the residual
     * window becomes nearly collinear and the unconstrained
     * least-squares extrapolation factor grows like 1/(1 - rate) —
     * thousands for a slowly-mixing market — landing the candidate
     * far outside the locally-linear region, where it is rejected
     * every round and the acceleration stalls. Bounding the weights
     * trades one giant (useless) jump for a sequence of large
     * (accepted) ones; empirically tens of times fewer rounds than
     * plain proportional response on contended markets.
     */
    double maxMixWeight = 30.0;
};

struct KernelCache;

/** Termination and stabilization knobs for Amdahl Bidding. */
struct BiddingOptions
{
    /**
     * Relative price-change threshold epsilon: iteration stops when
     * max_j |p_j(t+1) - p_j(t)| / p_j(t) falls below this.
     */
    double priceTolerance = 1e-6;

    /** Hard cap on iterations. */
    int maxIterations = 10000;

    /**
     * Damping factor in (0, 1]: b(t+1) = (1-d) b(t) + d b_prop. The
     * plain proportional update is d = 1 (the paper's form); smaller
     * values trade speed for stability on adversarial inputs.
     */
    double damping = 1.0;

    /** Record the price trajectory (for convergence studies, Fig 13). */
    bool trackHistory = false;

    /** Bid-update interleaving. */
    UpdateSchedule schedule = UpdateSchedule::Synchronous;

    /**
     * Warm start: initial bids from a previous equilibrium (an
     * epoch-based deployment re-clears a barely changed market, so
     * last epoch's bids are nearly right). Shape must match the
     * market ([user][job]); each user's bids are renormalized to her
     * budget, and non-positive entries fall back to an even split.
     * Empty (the default) starts from even splits.
     */
    JobMatrix initialBids;

    /** Bid-message loss model (meaningful under Synchronous; under
     *  GaussSeidel a lost message skips the user's turn). */
    BidTransportFaults transport;

    /** Anytime deadline budget; disabled by default, in which case the
     *  solve path (and its output) is bit-identical to a build without
     *  this feature. */
    DeadlineOptions deadline;

    /** Anderson acceleration; disabled by default (same bit-identity
     *  contract as `deadline`). */
    AccelOptions accel;

    /**
     * Optional cross-solve kernel cache (incremental re-clearing).
     * Non-owning; the caller (eval/online) guarantees it outlives the
     * solve. When the cached CSR structure matches the market exactly
     * the counting sort is skipped and only changed user rows are
     * re-derived — a pure structural cache, so results are byte-
     * identical with or without it. Ignored by the sharded solver.
     */
    KernelCache *kernelCache = nullptr;
};

/** Outcome of the bidding procedure plus convergence diagnostics. */
struct BiddingResult : MarketOutcome
{
    /** Relative price change after each iteration (if tracked). */
    std::vector<double> priceDeltaHistory;

    /** Anderson steps accepted / rejected (zero unless accel is on). */
    int accelAccepted = 0;
    int accelRejected = 0;
};

/**
 * Run Amdahl Bidding to the market equilibrium.
 *
 * @param market The allocation problem (validated internally).
 * @param opts   Termination/damping options.
 * @return Equilibrium prices, bids, and fractional allocations. The
 *         `converged` flag is false if maxIterations was exhausted.
 */
BiddingResult solveAmdahlBidding(const FisherMarket &market,
                                 const BiddingOptions &opts = {});

/**
 * Everything an allocation policy needs to know about *how* to clear:
 * the per-user bid-loss model and, when sharded clearing is enabled,
 * the protocol options and the cross-epoch transport session. Plain
 * pointers — the caller (eval/online) owns both and guarantees they
 * outlive the allocate() call.
 */
struct ClearingContext
{
    BidTransportFaults transport;
    /** Non-null enables sharded clearing over the simulated network. */
    const net::ShardedOptions *sharding = nullptr;
    /** Persistent transport state; may be null for a one-shot solve. */
    net::NetSession *session = nullptr;
    /** Non-null seeds bidding from a previous equilibrium (delta
     *  re-clearing); shape must match the market. */
    const JobMatrix *initialBids = nullptr;
    /** Non-null enables cross-epoch CSR reuse (bitwise invisible). */
    KernelCache *kernelCache = nullptr;
};

/**
 * Mean-field warm-start seed for a cold market: assume the uniform
 * price p̄ = total budget / total capacity every large market
 * converges toward, give each job its user's fair share of cores at
 * that price, and run one analytic proportional-response update. The
 * result is a valid warm start (positive, budget-conserving after
 * initializeBids' renormalization) that typically lands within a few
 * rounds of the equilibrium on populations drawn from a common f/w
 * distribution. Deterministic and serial.
 */
JobMatrix meanFieldSeedBids(const FisherMarket &market);

/**
 * Amdahl Bidding as a distributed epoch-barrier protocol over the
 * deterministic simulated transport (src/net/): users grouped into
 * shards, per-round per-(server, block) bid aggregates, a virtual-time
 * barrier with bounded retransmit + exponential backoff, and
 * partial-quorum degraded rounds under faults (see DESIGN.md §14).
 *
 * Determinism bridge: with every fault rate zero and no scheduled
 * partitions, the result — traces, metrics (modulo exec.steal), bids,
 * prices, allocations — is byte-identical to solveAmdahlBidding at
 * any shard count. Requires the Synchronous schedule and no
 * wall-clock deadline (virtual time only); fatals otherwise.
 *
 * @param market  The allocation problem (validated internally).
 * @param opts    Termination/damping options (schedule must be
 *                Synchronous; wallClockSeconds must be 0).
 * @param sharded Shard/barrier/fault configuration; must be enabled()
 *                and pass validateShardedOptions (fatal otherwise).
 * @param session Cross-epoch transport state, or nullptr to use a
 *                throwaway session starting at tick 0, round 0.
 */
BiddingResult solveShardedBidding(const FisherMarket &market,
                                  const BiddingOptions &opts,
                                  const net::ShardedOptions &sharded,
                                  net::NetSession *session = nullptr);

/**
 * One proportional-response bid update for a single user (exposed for
 * the overheads study, Section VI-F, which times precisely this code).
 *
 * Computes the propensity in the factored form
 * sqrt(f w) * sqrt(p) * s(x) — not sqrt(f w p) * s(x), which differs
 * in the last ulp — because the solver's structure-of-arrays kernel
 * hoists sqrt(f w) out of the iteration and the two paths must agree
 * bit for bit (tests/core/ pins this).
 *
 * @param user      The bidding user.
 * @param prices    Current prices p_j.
 * @param bids      The user's current bids (one per job); updated in
 *                  place.
 */
void updateUserBids(const MarketUser &user,
                    const std::vector<double> &prices,
                    std::vector<double> &bids);

} // namespace amdahl::core

#endif // AMDAHL_CORE_BIDDING_HH
