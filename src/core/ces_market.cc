#include "ces_market.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "solver/linear_model.hh"

namespace amdahl::core {

CesUtility::CesUtility(std::vector<double> weights, double rho)
    : weights_(std::move(weights)), rho_(rho)
{
    if (weights_.empty())
        fatal("CES utility needs at least one job");
    if (rho_ <= 0.0 || rho_ > 1.0)
        fatal("CES rho must be in (0, 1], got ", rho_);
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        if (weights_[j] <= 0.0)
            fatal("CES weight ", j, " must be positive");
    }
}

double
CesUtility::value(const std::vector<double> &x) const
{
    if (x.size() != weights_.size())
        fatal("allocation arity mismatch");
    double total = 0.0;
    for (std::size_t j = 0; j < weights_.size(); ++j)
        total += jobValue(j, x[j]);
    return total;
}

double
CesUtility::jobValue(std::size_t j, double x) const
{
    if (j >= weights_.size())
        fatal("job index out of range");
    if (x < 0.0)
        fatal("negative allocation");
    return std::pow(weights_[j] * x, rho_);
}

double
CesUtility::jobMarginal(std::size_t j, double x) const
{
    if (j >= weights_.size())
        fatal("job index out of range");
    if (x <= 0.0)
        fatal("CES marginal undefined at x <= 0");
    return rho_ * std::pow(weights_[j], rho_) * std::pow(x, rho_ - 1.0);
}

std::vector<double>
CesUtility::demand(const std::vector<double> &prices, double budget) const
{
    if (prices.size() != weights_.size())
        fatal("price arity mismatch");
    if (budget <= 0.0)
        fatal("budget must be positive");
    for (double p : prices) {
        if (p <= 0.0)
            fatal("prices must be positive");
    }
    if (rho_ >= 1.0) {
        // Linear utility: all budget to the best weight/price ratio
        // (ties split evenly for determinism).
        double best = 0.0;
        for (std::size_t j = 0; j < weights_.size(); ++j)
            best = std::max(best, weights_[j] / prices[j]);
        std::vector<std::size_t> winners;
        for (std::size_t j = 0; j < weights_.size(); ++j) {
            if (weights_[j] / prices[j] >= best * (1.0 - 1e-12))
                winners.push_back(j);
        }
        std::vector<double> x(weights_.size(), 0.0);
        for (std::size_t j : winners) {
            x[j] = budget /
                   (static_cast<double>(winners.size()) * prices[j]);
        }
        return x;
    }

    // Interior optimum: spend share on job j proportional to
    // w_j^(rho sigma) p_j^(1 - sigma) with sigma = 1 / (1 - rho).
    const double sigma = 1.0 / (1.0 - rho_);
    std::vector<double> spend(weights_.size());
    double total = 0.0;
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        spend[j] = std::pow(weights_[j], rho_ * sigma) *
                   std::pow(prices[j], 1.0 - sigma);
        total += spend[j];
    }
    std::vector<double> x(weights_.size());
    for (std::size_t j = 0; j < weights_.size(); ++j)
        x[j] = budget * spend[j] / (total * prices[j]);
    return x;
}

CesMarket::CesMarket(std::vector<double> capacities)
    : capacities_(std::move(capacities))
{
    if (capacities_.empty())
        fatal("CES market needs at least one server");
    for (double c : capacities_) {
        if (c <= 0.0)
            fatal("non-positive server capacity");
    }
}

std::size_t
CesMarket::addUser(CesUser user)
{
    if (user.budget <= 0.0)
        fatal("user '", user.name, "' has non-positive budget");
    if (user.jobs.empty())
        fatal("user '", user.name, "' has no jobs");
    if (user.rho <= 0.0 || user.rho >= 1.0)
        fatal("user '", user.name, "' needs rho in (0, 1) for PRD");
    for (const auto &job : user.jobs) {
        if (job.server >= capacities_.size())
            fatal("job on unknown server ", job.server);
        if (job.weight <= 0.0)
            fatal("job weight must be positive");
    }
    users_.push_back(std::move(user));
    return users_.size() - 1;
}

const CesUser &
CesMarket::user(std::size_t i) const
{
    if (i >= users_.size())
        fatal("user index out of range");
    return users_[i];
}

double
CesMarket::capacity(std::size_t j) const
{
    if (j >= capacities_.size())
        fatal("server index out of range");
    return capacities_[j];
}

void
CesMarket::validate() const
{
    if (users_.empty())
        fatal("CES market has no users");
    std::vector<bool> hosted(capacities_.size(), false);
    for (const auto &user : users_)
        for (const auto &job : user.jobs)
            hosted[job.server] = true;
    for (std::size_t j = 0; j < capacities_.size(); ++j) {
        if (!hosted[j])
            fatal("server ", j, " hosts no jobs");
    }
}

CesResult
solveCesMarket(const CesMarket &market, const CesOptions &opts)
{
    market.validate();
    if (opts.priceTolerance <= 0.0)
        fatal("price tolerance must be positive");
    if (opts.maxIterations < 1)
        fatal("need at least one iteration");

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    CesResult result;
    result.bids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        result.bids[i].assign(user.jobs.size(),
                              user.budget /
                                  static_cast<double>(user.jobs.size()));
    }

    auto compute_prices = [&](std::vector<double> &prices) {
        prices.assign(m, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &jobs = market.user(i).jobs;
            for (std::size_t k = 0; k < jobs.size(); ++k)
                prices[jobs[k].server] += result.bids[i][k];
        }
        for (std::size_t j = 0; j < m; ++j)
            prices[j] /= market.capacity(j);
    };

    compute_prices(result.prices);
    std::vector<double> new_prices(m);
    for (int it = 0; it < opts.maxIterations; ++it) {
        for (std::size_t i = 0; i < n; ++i) {
            const auto &user = market.user(i);
            // Bid proportional to utility contributions (w x)^rho.
            double total = 0.0;
            for (std::size_t k = 0; k < user.jobs.size(); ++k) {
                const double p = result.prices[user.jobs[k].server];
                const double x =
                    p > 0.0 ? result.bids[i][k] / p : 0.0;
                const double contribution =
                    std::pow(user.jobs[k].weight * x, user.rho);
                result.bids[i][k] = contribution;
                total += contribution;
            }
            if (total <= 0.0) {
                const double even =
                    user.budget /
                    static_cast<double>(user.jobs.size());
                std::fill(result.bids[i].begin(),
                          result.bids[i].end(), even);
                continue;
            }
            for (double &b : result.bids[i])
                b = user.budget * b / total;
        }

        compute_prices(new_prices);
        double delta = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            delta = std::max(delta,
                             std::abs(new_prices[j] -
                                      result.prices[j]) /
                                 std::max(result.prices[j], 1e-300));
        }
        result.prices = new_prices;
        result.iterations = it + 1;
        if (delta < opts.priceTolerance) {
            result.converged = true;
            break;
        }
    }

    result.allocation.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        result.allocation[i].resize(jobs.size());
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            const double p = result.prices[jobs[k].server];
            ensure(p > 0.0, "zero CES equilibrium price");
            result.allocation[i][k] = result.bids[i][k] / p;
        }
    }
    return result;
}

double
fitCesToAmdahl(double parallel_fraction, int max_cores, double &scale,
               double &rho)
{
    if (parallel_fraction <= 0.0 || parallel_fraction >= 1.0)
        fatal("parallel fraction must be in (0, 1)");
    if (max_cores < 2)
        fatal("fit domain needs at least 2 cores");

    // log s(x) ~= log c + rho log x: ordinary least squares in logs.
    std::vector<double> log_x, log_s;
    for (int x = 1; x <= max_cores; ++x) {
        log_x.push_back(std::log(static_cast<double>(x)));
        log_s.push_back(std::log(amdahlSpeedup(
            parallel_fraction, static_cast<double>(x))));
    }
    const auto model = solver::fitLinear(log_x, log_s);
    rho = std::clamp(model.slope, 1e-3, 1.0 - 1e-6);
    scale = std::exp(model.intercept);

    double sum_sq = 0.0;
    for (int x = 1; x <= max_cores; ++x) {
        const double s = amdahlSpeedup(parallel_fraction,
                                       static_cast<double>(x));
        const double fit =
            scale * std::pow(static_cast<double>(x), rho);
        const double rel = (fit - s) / s;
        sum_sq += rel * rel;
    }
    return std::sqrt(sum_sq / max_cores);
}

} // namespace amdahl::core
