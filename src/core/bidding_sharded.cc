/**
 * @file
 * Amdahl Bidding as an epoch-barrier protocol over src/net/.
 *
 * Users are grouped into shards of whole price blocks. Each round the
 * coordinator broadcasts a PriceMsg per shard; a shard that receives
 * it updates its users' bids (proportional response, shared kernel),
 * ships its per-(server, block) partials back as a BidMsg, and arms
 * retransmit timers with deterministic exponential backoff. The
 * coordinator overwrites its dense block x server partial table from
 * every applied aggregate and waits on a virtual-time barrier: the
 * round closes when every shard's round-r aggregate has arrived, or
 * at the barrier deadline, whichever is first. A deadline expiry
 * clears a partial-quorum degraded round on the stale table — counted,
 * reasoned (deadline_expired / partition), and staleness-bounded —
 * and a quorum below the configured floor aborts the solve for the
 * FallbackPolicy ladder to absorb. Healed shards re-enter with damped
 * warm-start updates.
 *
 * Determinism: all randomness is counter-based (per-edge, round,
 * attempt substreams), all time is virtual, message processing
 * follows the transport's total delivery order, and the price fold is
 * the blocked canonical fold of bidding_kernel.hh — so with zero
 * fault rates any shard count reproduces the in-process solver byte
 * for byte, and with faults any (shard count, thread count) pair
 * reproduces itself.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/bidding.hh"
#include "core/bidding_kernel.hh"
#include "exec/parallelism.hh"
#include "exec/thread_pool.hh"
#include "net/fault_model.hh"
#include "net/options.hh"
#include "net/session.hh"
#include "net/transport.hh"
#include "obs/degraded.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::core {

namespace {

/** A pending shard retransmission (driver-side timer). */
struct RetransmitTimer
{
    net::Ticks tick = 0;
    std::size_t shard = 0;
    std::uint64_t round = 0; ///< Global round of the bid being resent.
    std::uint32_t attempt = 0;
};

/** Deterministic min-timer: smallest (tick, shard, attempt). */
int
nextTimerIndex(const std::vector<RetransmitTimer> &timers)
{
    int best = -1;
    for (std::size_t i = 0; i < timers.size(); ++i) {
        if (best < 0)
            best = static_cast<int>(i);
        else {
            const auto &a = timers[i];
            const auto &b = timers[static_cast<std::size_t>(best)];
            if (std::tuple(a.tick, a.shard, a.attempt) <
                std::tuple(b.tick, b.shard, b.attempt))
                best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace

BiddingResult
solveShardedBidding(const FisherMarket &market, const BiddingOptions &opts,
                    const net::ShardedOptions &sharded,
                    net::NetSession *session)
{
    detail::validateBiddingCommon(market, opts);
    if (!sharded.enabled())
        fatal("solveShardedBidding called with sharding disabled");
    if (const Status st = net::validateShardedOptions(sharded);
        !st.isOk())
        fatal("invalid sharded clearing options: ", st.toString());
    if (opts.schedule == UpdateSchedule::GaussSeidel)
        fatal("sharded clearing requires the Synchronous schedule");
    if (opts.deadline.wallClockSeconds > 0.0)
        fatal("sharded clearing runs in virtual time; wall-clock "
              "deadlines are not supported (use iterationBudget)");
    if (opts.accel.enabled)
        fatal("Anderson acceleration is not supported by the sharded "
              "solver: the accelerated iterate mixes whole bid "
              "vectors, which no shard owns");

    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.bidding.solve_us"));
    obs::Histogram *update_hist =
        obs::timeHistogram("time.bidding.update_us");
    obs::Histogram *prices_hist =
        obs::timeHistogram("time.bidding.prices_us");
    detail::traceBiddingStart(n, m, opts);

    BiddingResult result;
    result.prices.assign(m, 0.0);
    detail::initializeBids(market, opts, result.bids);

    detail::BidKernel kernel = detail::buildKernel(market);
    detail::flattenBids(result.bids, kernel);

    // Shard layout: contiguous whole price blocks per shard, so shard
    // boundaries coincide with canonical fold boundaries and the
    // shard count can never perturb a partial. Effective shard count
    // is clamped to the block count (a 40-user market has at most two
    // shards no matter what was asked for).
    const std::size_t blockCount = detail::priceBlockCount(n);
    const std::size_t S = std::min(sharded.shards, blockCount);
    std::vector<std::size_t> blockLo(S + 1);
    for (std::size_t s = 0; s <= S; ++s)
        blockLo[s] = s * blockCount / S;
    std::vector<std::uint32_t> shardOf(n);
    for (std::size_t s = 0; s < S; ++s) {
        const std::size_t uLo =
            std::min(n, blockLo[s] * detail::kPriceBlockUsers);
        const std::size_t uHi =
            std::min(n, blockLo[s + 1] * detail::kPriceBlockUsers);
        for (std::size_t i = uLo; i < uHi; ++i)
            shardOf[i] = static_cast<std::uint32_t>(s);
    }

    // Transport plumbing. The session persists across epochs (and
    // crashes); a null session gets a solve-local throwaway.
    net::NetSession localSession;
    net::NetSession *sess = session ? session : &localSession;
    const std::size_t edgeSpan =
        2 * std::max(S, sharded.shards);
    if (sess->edgeSeq.size() < edgeSpan)
        sess->edgeSeq.resize(edgeSpan, 0);
    const std::uint64_t base = sess->globalRound;
    net::VirtualClock clock(sess->ticks);
    const net::NetFaultModel model(sharded.faults, sharded.partitions);
    const bool instrumented = model.active();
    net::NetInstruments instStorage;
    const net::NetInstruments *inst = nullptr;
    if (instrumented) {
        instStorage = net::NetInstruments::bind();
        inst = &instStorage;
    }
    net::VirtualTransport transport(model, *sess, inst);

    // Span tracing: resolved once per solve (the CLI flips the switch
    // before clearing starts). Null is the entire disabled path.
    obs::TraceSink *const spans = obs::spanSink();

    // Coordinator state: the dense partial table, seeded from the
    // initial bids (every shard "fresh as of round base - 1"), and
    // the canonical fold of it as the opening prices. The scratch
    // table is the *shard-side* staging area: a shard recomputes its
    // rows there and ships them as a BidMsg, and the coordinator's
    // table only changes when that message is actually delivered —
    // a lost aggregate leaves the coordinator genuinely stale.
    std::vector<double> table(blockCount * m, 0.0);
    detail::accumulateBlockPartials(kernel, 0, blockCount, table);
    detail::foldPriceTable(table, blockCount, kernel, result.prices);
    std::vector<double> scratch(blockCount * m, 0.0);

    const std::int64_t before =
        static_cast<std::int64_t>(base) - 1;
    std::vector<std::int64_t> lastApplied(S, before);  // coordinator
    std::vector<std::int64_t> lastPriceRound(S, before); // shard-side
    std::vector<net::Ticks> priceTickLatest(S, clock.now());
    std::vector<std::vector<double>> postedPrices(S);
    std::vector<net::Message> lastBid(S);
    std::vector<std::unordered_set<std::uint64_t>> seenSeq(edgeSpan);
    std::vector<RetransmitTimer> timers;
    std::vector<unsigned char> mask(n, 0);
    std::vector<double> dampShard(S, opts.damping);

    const std::uint64_t quorumMin = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(
               sharded.quorumFloor * static_cast<double>(S))));

    // Anytime bookkeeping (iteration budget only — virtual time).
    const bool anytime = opts.deadline.enabled();
    std::vector<double> best_bids;
    std::vector<double> best_prices;
    double best_delta = std::numeric_limits<double>::infinity();
    if (anytime) {
        best_bids = kernel.bids;
        best_prices = result.prices;
    }

    const bool lossy = opts.transport.lossRate > 0.0;
    std::vector<unsigned char> lost;
    if (lossy)
        lost.assign(n, 0);
    std::uint64_t lost_messages = 0;

    std::uint64_t minQuorum = S;
    bool collapsed = false;
    bool roundFresh = true;
    std::vector<double> new_prices(m);

    // One iteration of a shard's protocol reaction to a price it just
    // applied: recompute its block partials and ship the aggregate,
    // arming the backoff timers.
    const auto sendShardBid = [&](std::size_t s, std::uint64_t forRound,
                                  std::uint64_t partitionRound,
                                  net::Ticks at) {
        detail::accumulateBlockPartials(kernel, blockLo[s],
                                        blockLo[s + 1], scratch);
        net::Message bm;
        bm.kind = net::MsgKind::Bid;
        bm.src = net::shardNode(s);
        bm.dst = net::kCoordinatorNode;
        bm.attempt = 0;
        bm.bid.shard = static_cast<std::uint32_t>(s);
        bm.bid.round = forRound;
        bm.bid.partials.reserve((blockLo[s + 1] - blockLo[s]) * m);
        for (std::size_t b = blockLo[s]; b < blockLo[s + 1]; ++b) {
            for (std::size_t j = 0; j < m; ++j) {
                net::BlockPartial p;
                p.server = static_cast<std::uint32_t>(j);
                p.block = b;
                p.partial = scratch[b * m + j];
                bm.bid.partials.push_back(p);
            }
        }
        lastBid[s] = bm;
        transport.send(bm, net::bidEdge(s), s, forRound, partitionRound,
                       at);
        for (std::uint32_t k = 1; k <= sharded.maxRetransmits; ++k) {
            RetransmitTimer t;
            t.tick = at + sharded.retransmitBase *
                              (net::Ticks{1} << (k - 1));
            t.shard = s;
            t.round = forRound;
            t.attempt = k;
            timers.push_back(t);
        }
    };

    for (int it = 0; it < opts.maxIterations; ++it) {
        const std::uint64_t g = base + static_cast<std::uint64_t>(it);
        bool round_lost_message = false;
        if (lossy) {
            for (std::size_t i = 0; i < n; ++i) {
                lost[i] = counterBernoulli(
                              opts.transport.seed, i,
                              static_cast<std::uint64_t>(it),
                              opts.transport.lossRate)
                              ? 1
                              : 0;
                if (lost[i]) {
                    round_lost_message = true;
                    ++lost_messages;
                }
            }
        }

        const net::Ticks T = clock.now();
        const net::Ticks deadlineTick = T + sharded.barrierDeadline;

        // Round and barrier span IDs: pure functions of the causal
        // parent (the fallback rung or epoch) and the global round.
        // The parent scope makes the barrier the causal parent of
        // every xfer span the transport emits inside this window.
        const std::uint64_t roundParent =
            spans ? obs::currentSpanParent() : 0;
        const std::uint64_t roundId =
            spans ? obs::spanId(obs::SpanKind::Round, roundParent, g)
                  : 0;
        const std::uint64_t barrierId =
            spans ? obs::spanId(obs::SpanKind::Barrier, roundId, g)
                  : 0;
        std::optional<obs::SpanParentScope> xferScope;
        if (spans)
            xferScope.emplace(barrierId);

        // Open the round: broadcast this round's prices to every
        // shard (through the codec, even when the network is sound).
        for (std::size_t s = 0; s < S; ++s) {
            net::Message pm;
            pm.kind = net::MsgKind::Price;
            pm.src = net::kCoordinatorNode;
            pm.dst = net::shardNode(s);
            pm.attempt = 0;
            pm.price.round = g;
            pm.price.prices = result.prices;
            transport.send(std::move(pm), net::priceEdge(s), s, g, g, T);
        }

        std::size_t freshCount = 0;
        net::Ticks closeTick = deadlineTick;
        roundFresh = false;
        // The delivery that completed the barrier, for critical-path
        // attribution: which shard closed the round, and when its
        // winning bid copy left the wire.
        std::size_t closerShard = 0;
        net::Ticks closeSentAt = T;

        // Shards whose price application is pending at batchTick:
        // (shard, healed re-entry?). All price deliveries sharing a
        // tick are folded into one fan-out so the sound-mode task
        // structure matches the in-process solver exactly.
        std::vector<std::pair<std::size_t, bool>> batch;
        net::Ticks batchTick = 0;

        const auto runBatch = [&](net::Ticks tick,
                                  std::uint64_t partitionRound) {
            if (batch.empty())
                return;
            std::fill(mask.begin(), mask.end(), 0);
            for (const auto &[s, healed] : batch) {
                dampShard[s] = opts.damping;
                if (healed) {
                    dampShard[s] *= sharded.reentryDamping;
                    ++result.net.healedReentries;
                    if (inst)
                        inst->healedReentries->add();
                }
                const std::size_t uLo =
                    std::min(n, blockLo[s] * detail::kPriceBlockUsers);
                const std::size_t uHi = std::min(
                    n, blockLo[s + 1] * detail::kPriceBlockUsers);
                std::fill(mask.begin() +
                              static_cast<std::ptrdiff_t>(uLo),
                          mask.begin() +
                              static_cast<std::ptrdiff_t>(uHi),
                          1);
            }
            {
                // One fan-out per batch tick, full span, fixed grain:
                // in the sound case the single batch covers every
                // user and this is bit- and task-identical to the
                // in-process Synchronous update.
                obs::ScopedTimer update_timer(update_hist);
                // Same grain source as the in-process solver, so
                // exec.tasks agrees across the determinism bridge at
                // any AMDAHL_BID_GRAIN setting. The per-user loop
                // stays scalar: users in one chunk may sit in
                // different shards with different posted prices, and
                // both kernels are bit-identical anyway.
                exec::parallelFor(
                    0, n, exec::bidUpdateGrain(detail::kUserGrain),
                    [&](std::size_t ulo, std::size_t uhi) {
                        for (std::size_t i = ulo; i < uhi; ++i) {
                            if (!mask[i])
                                continue;
                            if (lossy && lost[i])
                                continue;
                            detail::updateOneUser(
                                kernel, i, postedPrices[shardOf[i]],
                                dampShard[shardOf[i]]);
                        }
                    });
            }
            if (spans)
                obs::SpanEvent(
                    *spans, "compute",
                    obs::spanId(obs::SpanKind::Compute, roundId, tick),
                    barrierId, tick, tick)
                    .field("round", g)
                    .field("shards", batch.size());
            for (const auto &[s, healed] : batch) {
                sendShardBid(
                    s,
                    static_cast<std::uint64_t>(lastPriceRound[s]),
                    partitionRound, tick);
            }
            batch.clear();
        };

        while (true) {
            net::Ticks dTick = 0;
            std::uint64_t dEdge = 0;
            const bool haveDelivery = transport.peekNext(dTick, dEdge);
            const int ti = nextTimerIndex(timers);
            const bool timerEligible =
                ti >= 0 && timers[static_cast<std::size_t>(ti)].tick <=
                               deadlineTick;
            // Deliveries win ties against timers: a same-tick price
            // broadcast must cancel the retransmission it obsoletes.
            const bool pickDelivery =
                haveDelivery && dTick <= deadlineTick &&
                (!timerEligible ||
                 dTick <= timers[static_cast<std::size_t>(ti)].tick);

            // Flush the pending price batch before processing
            // anything that is not another price at the batch tick
            // (the transport ranks prices ahead of bids at equal
            // ticks, so same-tick prices drain contiguously). The
            // batch's sends change the heap, so re-peek afterwards.
            if (!batch.empty() &&
                !(pickDelivery && dEdge % 2 == 0 &&
                  dTick == batchTick)) {
                runBatch(batchTick, g);
                continue;
            }

            if (pickDelivery) {
                net::Delivery d;
                if (!transport.popNext(deadlineTick, d))
                    fatal("transport peek/pop disagree");
                auto decoded = net::decodeMessage(d.wire);
                ensure(decoded.ok(), "simulated transport corrupted a "
                       "frame: ", decoded.status().toString());
                net::Message msg = decoded.take();
                if (!seenSeq[d.edge].insert(msg.seq).second) {
                    if (inst)
                        inst->dupSuppressed->add();
                    continue;
                }
                const std::size_t s = d.edge / 2;
                if (d.edge % 2 == 0) {
                    // Price broadcast to shard s.
                    ensure(msg.kind == net::MsgKind::Price,
                           "bid frame on a price edge");
                    const auto rp =
                        static_cast<std::int64_t>(msg.price.round);
                    if (rp <= lastPriceRound[s])
                        continue; // Stale broadcast; a newer one won.
                    const bool healed = rp > lastPriceRound[s] + 1;
                    lastPriceRound[s] = rp;
                    priceTickLatest[s] = d.at;
                    postedPrices[s] = std::move(msg.price.prices);
                    batch.emplace_back(s, healed);
                    batchTick = d.at;
                    continue;
                }
                // Bid aggregate from shard s.
                ensure(msg.kind == net::MsgKind::Bid,
                       "price frame on a bid edge");
                const auto rb =
                    static_cast<std::int64_t>(msg.bid.round);
                if (rb <= lastApplied[s]) {
                    // A retransmit or duplicate of an aggregate the
                    // table already reflects.
                    if (inst)
                        inst->dupSuppressed->add();
                    continue;
                }
                for (const net::BlockPartial &p : msg.bid.partials)
                    table[p.block * m + p.server] = p.partial;
                lastApplied[s] = rb;
                if (rb == static_cast<std::int64_t>(g)) {
                    ++freshCount;
                    if (freshCount == S) {
                        closeTick = d.at;
                        roundFresh = true;
                        closerShard = s;
                        closeSentAt = d.sentAt;
                        break;
                    }
                }
                continue;
            }

            if (timerEligible) {
                const RetransmitTimer t =
                    timers[static_cast<std::size_t>(ti)];
                timers.erase(timers.begin() + ti);
                // Cancelled if the shard had already heard a newer
                // price by the time this timer fires.
                const bool cancelled =
                    lastPriceRound[t.shard] >
                        static_cast<std::int64_t>(t.round) &&
                    priceTickLatest[t.shard] <= t.tick;
                if (cancelled)
                    continue;
                net::Message re = lastBid[t.shard];
                re.attempt = t.attempt;
                transport.send(std::move(re), net::bidEdge(t.shard),
                               t.shard, t.round, g, t.tick);
                ++result.net.retransmits;
                if (inst)
                    inst->retransmits->add();
                continue;
            }
            break; // Nothing left inside this round's window.
        }
        clock.advanceTo(roundFresh ? closeTick : deadlineTick);

        // Drop timers that can never fire (their shard already moved
        // on) so the pending set stays bounded.
        timers.erase(
            std::remove_if(
                timers.begin(), timers.end(),
                [&](const RetransmitTimer &t) {
                    return lastPriceRound[t.shard] >
                               static_cast<std::int64_t>(t.round) &&
                           priceTickLatest[t.shard] <= t.tick;
                }),
            timers.end());

        // Barrier resolution: quorum accounting and degraded-round
        // bookkeeping. Unreachable when the network is sound (every
        // round is fresh), so none of it can perturb the bridge.
        const std::uint64_t usable = [&] {
            std::uint64_t count = 0;
            for (std::size_t s = 0; s < S; ++s) {
                const auto staleness =
                    static_cast<std::int64_t>(g) - lastApplied[s];
                if (staleness <=
                    static_cast<std::int64_t>(sharded.maxStaleRounds))
                    ++count;
            }
            return count;
        }();
        minQuorum = std::min(minQuorum, usable);
        if (inst)
            inst->quorum->record(static_cast<double>(usable));

        const std::uint64_t staleServed =
            static_cast<std::uint64_t>(S) - freshCount;
        bool partitionHit = false;
        if (!roundFresh) {
            for (std::size_t s = 0; s < S; ++s) {
                if (lastApplied[s] < static_cast<std::int64_t>(g) &&
                    model.partitioned(s, g))
                    partitionHit = true;
            }
        }

        // Critical-path attribution. A fresh round's latency is the
        // closing chain itself: price transit to the closing shard,
        // retransmit backoff until the winning bid copy left, and
        // that copy's transit back — three legs that sum to
        // closeTick - T exactly (compute is instantaneous in virtual
        // time). A degraded or collapsed round waited out the whole
        // barrier window instead: charged to partition wait when a
        // scheduled partition silenced a missing shard, else to
        // quorum wait.
        const net::Ticks roundEnd =
            roundFresh ? closeTick : deadlineTick;
        const net::Ticks latency = roundEnd - T;
        net::Ticks cDelay = 0;
        net::Ticks cRetransmit = 0;
        net::Ticks cPartition = 0;
        net::Ticks cQuorum = 0;
        if (roundFresh) {
            const net::Ticks priceAt = priceTickLatest[closerShard];
            cDelay = (priceAt - T) + (closeTick - closeSentAt);
            cRetransmit = closeSentAt - priceAt;
        } else if (partitionHit) {
            cPartition = latency;
        } else {
            cQuorum = latency;
        }
        result.net.latencyTicks += latency;
        result.net.delayTicks += cDelay;
        result.net.retransmitTicks += cRetransmit;
        result.net.partitionWaitTicks += cPartition;
        result.net.quorumWaitTicks += cQuorum;

        if (spans) {
            obs::SpanEvent(*spans, "barrier", barrierId, roundId, T,
                           roundEnd)
                .field("round", g)
                .field("deadline", deadlineTick)
                .field("fresh", freshCount)
                .field("quorum", usable);
        }
        const auto emitRoundSpan = [&] {
            if (!spans)
                return;
            obs::SpanCause cause = obs::SpanCause::Compute;
            if (latency > 0) {
                if (cPartition > 0)
                    cause = obs::SpanCause::PartitionWait;
                else if (cQuorum > 0)
                    cause = obs::SpanCause::QuorumWait;
                else if (cRetransmit > cDelay)
                    cause = obs::SpanCause::Retransmit;
                else
                    cause = obs::SpanCause::NetDelay;
            }
            obs::SpanEvent(*spans, "round", roundId, roundParent, T,
                           roundEnd)
                .field("round", g)
                .field("fresh", roundFresh)
                .field("closer", closerShard)
                .field("cause", obs::toString(cause))
                .field("ticks", latency)
                .field("c_compute", std::uint64_t{0})
                .field("c_delay", cDelay)
                .field("c_retransmit", cRetransmit)
                .field("c_partition", cPartition)
                .field("c_quorum", cQuorum);
        };

        if (!roundFresh) {
            if (usable < quorumMin) {
                collapsed = true;
                result.net.quorumCollapsed = true;
                result.iterations = it + 1;
                if (inst)
                    inst->quorumCollapses->add();
                obs::recordDegraded(
                    {"barrier", obs::DegradedReason::QuorumFloor, g,
                     usable, staleServed});
                emitRoundSpan();
                break;
            }
            const obs::DegradedReason reason =
                partitionHit ? obs::DegradedReason::Partition
                             : obs::DegradedReason::DeadlineExpired;
            ++result.net.degradedRounds;
            result.net.staleBidRounds += staleServed;
            if (reason == obs::DegradedReason::Partition)
                result.net.partitionDegraded = true;
            if (inst) {
                inst->degradedRounds->add();
                inst->staleBidRounds->add(staleServed);
            }
            obs::recordDegraded({"barrier", reason, g, usable,
                                 staleServed});
        }

        {
            obs::ScopedTimer prices_timer(prices_hist);
            detail::foldPriceTable(table, blockCount, kernel,
                                   new_prices);
        }
        if (spans)
            obs::SpanEvent(*spans, "fold",
                           obs::spanId(obs::SpanKind::Fold, roundId,
                                       g),
                           roundId, roundEnd, roundEnd)
                .field("round", g);

        detail::checkRoundInvariants(market, kernel, new_prices,
                                     result.bids);

        const double max_delta =
            detail::maxPriceDelta(result.prices, new_prices, m);
        result.prices = new_prices;
        result.iterations = it + 1;
        if (opts.trackHistory)
            result.priceDeltaHistory.push_back(max_delta);
        if (auto *sink = obs::traceSink()) {
            obs::TraceEvent(*sink, "bidding_iter")
                .field("iter", it + 1)
                .field("max_delta", max_delta)
                .field("lost_messages", round_lost_message);
        }
        emitRoundSpan();
        // Degraded rounds never count as convergence: stale shards
        // haven't responded to these prices yet, so apparent
        // stillness proves nothing (same reasoning as lost bid
        // messages in the in-process solver).
        if (max_delta < opts.priceTolerance && !round_lost_message &&
            roundFresh) {
            result.converged = true;
            break;
        }

        if (anytime) {
            bool positive = true;
            for (double p : new_prices) {
                if (!(p > 0.0)) {
                    positive = false;
                    break;
                }
            }
            // Only fresh rounds are anytime candidates: a degraded
            // round's prices come from a table the local bids have
            // partly outrun, and the restored pair must be
            // consistent.
            if (positive && roundFresh && max_delta < best_delta) {
                best_delta = max_delta;
                best_bids = kernel.bids;
                best_prices = new_prices;
            }
            const bool expired =
                opts.deadline.iterationBudget > 0 &&
                it + 1 >= opts.deadline.iterationBudget;
            if (expired) {
                kernel.bids = std::move(best_bids);
                result.prices = std::move(best_prices);
                result.deadlineExpired = true;
                if (auto *sink = obs::traceSink()) {
                    obs::TraceEvent(*sink, "deadline_expired")
                        .field("iter", it + 1)
                        .field("best_delta", best_delta);
                }
                break;
            }
        }
    }

    result.net.minQuorum = minQuorum;
    sess->ticks = clock.now();
    sess->globalRound =
        base + static_cast<std::uint64_t>(result.iterations);

    detail::recordSolveEnd(result, lost_messages);
    detail::unflattenBids(kernel, result.bids);
    // The final state is consistent (x = b / p clears capacity) only
    // when it came from a fully fresh round: a restored anytime
    // snapshot, or a final round where every aggregate arrived.
    const bool consistent =
        result.deadlineExpired || (roundFresh && !collapsed);
    detail::finalizeAllocation(market, result, consistent);
    return result;
}

} // namespace amdahl::core
