#include "rounding.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"

namespace amdahl::core {

std::vector<int>
hamiltonRound(const std::vector<double> &fractional, int capacity)
{
    if (capacity < 0)
        fatal("capacity must be non-negative, got ", capacity);

    std::vector<int> rounded(fractional.size(), 0);
    std::vector<double> remainders(fractional.size(), 0.0);
    long long granted = 0;
    double total = 0.0;
    for (std::size_t k = 0; k < fractional.size(); ++k) {
        if (fractional[k] < -1e-9)
            fatal("negative fractional allocation ", fractional[k]);
        const double x = std::max(0.0, fractional[k]);
        total += x;
        rounded[k] = static_cast<int>(std::floor(x + 1e-12));
        remainders[k] = x - rounded[k];
        granted += rounded[k];
    }
    if (total > capacity * (1.0 + 1e-9) + 1e-6) {
        fatal("fractional allocations sum to ", total,
              ", exceeding capacity ", capacity);
    }

    long long excess = capacity - granted;
    if (excess > static_cast<long long>(fractional.size())) {
        fatal("allocation leaves ", excess, " cores unassigned across ",
              fractional.size(),
              " jobs; the fractional allocation must exhaust the server");
    }

    // Hand out excess cores in descending order of fractional part
    // (ties broken by index for determinism).
    std::vector<std::size_t> order(fractional.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return remainders[a] > remainders[b];
                     });
    for (std::size_t k = 0; k < order.size() && excess > 0; ++k) {
        ++rounded[order[k]];
        --excess;
    }
    // Contract: Hamilton rounding never over-grants the server and
    // never takes a core away that the floor already granted.
    if constexpr (checkedBuild) {
        long long sum = 0;
        for (int r : rounded) {
            AMDAHL_ASSERT(r >= 0, "negative rounded grant ", r);
            sum += r;
        }
        AMDAHL_ASSERT(sum <= capacity, "rounded grants sum to ", sum,
                      " over capacity ", capacity);
        AMDAHL_ASSERT(sum >= granted, "rounding dropped cores: ", sum,
                      " granted after ", granted, " floors");
    }
    return rounded;
}

std::vector<std::vector<int>>
roundOutcome(const FisherMarket &market, const MarketOutcome &outcome)
{
    obs::ScopedTimer round_timer(
        obs::timeHistogram("time.rounding.outcome_us"));
    obs::metrics().counter("rounding.outcomes").add();

    const std::size_t n = market.userCount();
    if (outcome.allocation.size() != n)
        fatal("outcome allocation has wrong user count");

    std::vector<std::vector<int>> integral(n);
    for (std::size_t i = 0; i < n; ++i)
        integral[i].assign(outcome.allocation[i].size(), 0);

    // Per server: gather that server's job shares, round, scatter back.
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        std::vector<double> shares;
        std::vector<std::pair<std::size_t, std::size_t>> owners;
        for (std::size_t i = 0; i < n; ++i) {
            const auto &jobs = market.user(i).jobs;
            for (std::size_t k = 0; k < jobs.size(); ++k) {
                if (jobs[k].server == j) {
                    shares.push_back(outcome.allocation[i][k]);
                    owners.emplace_back(i, k);
                }
            }
        }
        if (shares.empty())
            continue;
        const int capacity =
            static_cast<int>(std::llround(market.capacity(j)));
        const auto rounded = hamiltonRound(shares, capacity);
        for (std::size_t k = 0; k < owners.size(); ++k)
            integral[owners[k].first][owners[k].second] = rounded[k];
    }
    return integral;
}

} // namespace amdahl::core
