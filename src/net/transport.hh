/**
 * @file
 * The deterministic simulated transport: send -> (faults) -> deliver.
 *
 * VirtualTransport moves encoded message frames between the
 * coordinator and its shards in virtual time. A send consults the
 * NetFaultModel at the message's (edge, round, attempt) coordinate:
 * the frame is dropped (partition or loss), delayed by a bounded
 * deterministic draw, and possibly duplicated with an independent
 * delay (which is how reordering arises — a copy or a later message
 * can land first). Surviving copies enter a delivery heap ordered by
 * (tick, kind, edge, seq, copy), a total order with no ties, so the
 * barrier loop consumes them in exactly one schedule- and
 * thread-count-independent sequence.
 *
 * Sequence numbers are assigned per directed edge from the persistent
 * NetSession, so duplicate suppression (same seq seen twice on an
 * edge) stays sound across epochs and crash recovery.
 *
 * Instrumentation is strictly opt-in: a transport constructed with a
 * null NetInstruments never touches the metrics registry, so a
 * fault-free sharded run leaves *zero* net.* footprint — lazy counter
 * creation would otherwise break the byte-identity bridge against the
 * in-process kernel.
 */

#ifndef AMDAHL_NET_TRANSPORT_HH
#define AMDAHL_NET_TRANSPORT_HH

#include <cstdint>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "net/fault_model.hh"
#include "net/message.hh"
#include "net/session.hh"

namespace amdahl::obs {
class Counter;
class Histogram;
} // namespace amdahl::obs

namespace amdahl::net {

/**
 * Pre-resolved handles into the metrics registry for the hot path.
 * Bound once per solve, and only when the fault model is active.
 */
struct NetInstruments
{
    obs::Counter *sent = nullptr;
    obs::Counter *delivered = nullptr;
    obs::Counter *lost = nullptr;
    obs::Counter *partitionDrops = nullptr;
    obs::Counter *duplicated = nullptr;
    obs::Counter *dupSuppressed = nullptr;
    obs::Counter *retransmits = nullptr;
    obs::Counter *staleBidRounds = nullptr;
    obs::Counter *degradedRounds = nullptr;
    obs::Counter *quorumCollapses = nullptr;
    obs::Counter *healedReentries = nullptr;
    obs::Histogram *latency = nullptr;
    obs::Histogram *quorum = nullptr;

    /** Resolve every handle from the global registry. */
    static NetInstruments bind();
};

/** One frame the barrier loop should process. */
struct Delivery
{
    Ticks at = 0;     ///< Virtual arrival tick.
    Ticks sentAt = 0; ///< Virtual send tick (for the latency histogram).
    std::uint64_t edge = 0;
    std::string wire; ///< Encoded frame; decode before trusting.
};

class VirtualTransport
{
  public:
    /**
     * @param model   Fault realizations; must outlive the transport.
     * @param session Persistent per-edge sequence counters; edgeSeq
     *                must already be sized to cover every edge used.
     * @param inst    Metrics handles, or nullptr for zero footprint.
     */
    VirtualTransport(const NetFaultModel &model, NetSession &session,
                     const NetInstruments *inst)
        : model_(&model), session_(&session), inst_(inst)
    {}

    /**
     * Send @p msg over @p edge at virtual time @p now. Assigns the
     * edge's next sequence number (the duplicated copy reuses it —
     * that is what makes it a duplicate), applies partition, loss,
     * delay, and duplication, and enqueues the surviving copies.
     *
     * @p streamRound keys the loss/delay/duplication substreams — a
     * retransmit passes the *original* round so its (edge, round,
     * attempt) coordinate stays unique — while @p partitionRound is
     * the round the wire is crossed in, which is what a scheduled
     * partition window cuts against.
     */
    void send(Message msg, std::uint64_t edge, std::size_t shard,
              std::uint64_t streamRound, std::uint64_t partitionRound,
              Ticks now);

    /** Arrival tick and edge of the earliest pending delivery. */
    [[nodiscard]] bool peekNext(Ticks &at, std::uint64_t &edge) const;

    /** Pop the earliest pending delivery if it arrives by @p upTo. */
    bool popNext(Ticks upTo, Delivery &out);

    [[nodiscard]] std::size_t pendingCount() const
    {
        return heap_.size();
    }

  private:
    struct Entry
    {
        Delivery delivery;
        std::uint64_t seq = 0;
        std::uint32_t kindRank = 0;
        std::uint32_t copy = 0;

        bool
        operator>(const Entry &other) const
        {
            const auto key = [](const Entry &e) {
                return std::tuple(e.delivery.at, e.kindRank,
                                  e.delivery.edge, e.seq, e.copy);
            };
            return key(*this) > key(other);
        }
    };

    void enqueue(Delivery delivery, std::uint64_t seq,
                 std::uint32_t copy);

    const NetFaultModel *model_;
    NetSession *session_;
    const NetInstruments *inst_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
};

} // namespace amdahl::net

#endif // AMDAHL_NET_TRANSPORT_HH
