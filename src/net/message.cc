#include "net/message.hh"

#include <cstring>

#include "common/crc32.hh"

namespace amdahl::net {
namespace {

/**
 * Wire format (all integers little-endian):
 *
 *   u32 magic 'AMNT'   u8 kind   u32 src   u32 dst
 *   u64 seq   u32 attempt   u32 payloadSize   u32 payloadCrc
 *   payload bytes...
 *
 * Bid payload:   u32 shard, u64 round, u64 count,
 *                count * { u32 server, u64 block, f64 partial }
 * Price payload: u64 round, u64 count, count * f64
 */
constexpr std::uint32_t kMagic = 0x544e4d41; // "AMNT"

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

class Reader
{
  public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    bool
    readU8(std::uint8_t &v)
    {
        if (!have(1))
            return false;
        v = static_cast<std::uint8_t>(bytes_[pos_]);
        ++pos_;
        return true;
    }

    bool
    readU32(std::uint32_t &v)
    {
        if (!have(4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    readU64(std::uint64_t &v)
    {
        if (!have(8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    readF64(double &v)
    {
        std::uint64_t bits = 0;
        if (!readU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    [[nodiscard]] bool have(std::size_t n) const
    {
        return bytes_.size() - pos_ >= n;
    }

    [[nodiscard]] bool atEnd() const { return pos_ == bytes_.size(); }

    [[nodiscard]] std::string_view
    rest() const
    {
        return bytes_.substr(pos_);
    }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

Status
parseError(const char *what)
{
    return Status::error(ErrorKind::ParseError, 0, "net message: ", what);
}

std::string
encodePayload(const Message &msg)
{
    std::string payload;
    if (msg.kind == MsgKind::Bid) {
        putU32(payload, msg.bid.shard);
        putU64(payload, msg.bid.round);
        putU64(payload, msg.bid.partials.size());
        for (const BlockPartial &p : msg.bid.partials) {
            putU32(payload, p.server);
            putU64(payload, p.block);
            putF64(payload, p.partial);
        }
    } else {
        putU64(payload, msg.price.round);
        putU64(payload, msg.price.prices.size());
        for (const double p : msg.price.prices)
            putF64(payload, p);
    }
    return payload;
}

} // namespace

const char *
toString(MsgKind kind)
{
    return kind == MsgKind::Bid ? "bid" : "price";
}

std::string
encodeMessage(const Message &msg)
{
    const std::string payload = encodePayload(msg);
    std::string wire;
    wire.reserve(33 + payload.size());
    putU32(wire, kMagic);
    wire.push_back(static_cast<char>(msg.kind));
    putU32(wire, msg.src);
    putU32(wire, msg.dst);
    putU64(wire, msg.seq);
    putU32(wire, msg.attempt);
    putU32(wire, static_cast<std::uint32_t>(payload.size()));
    putU32(wire, crc32(payload));
    wire += payload;
    return wire;
}

Result<Message>
decodeMessage(std::string_view wire)
{
    Reader in(wire);
    std::uint32_t magic = 0;
    if (!in.readU32(magic))
        return parseError("truncated header");
    if (magic != kMagic)
        return Status::error(ErrorKind::SemanticError, 0,
                             "net message: bad magic");
    Message msg;
    std::uint8_t kind = 0;
    if (!in.readU8(kind))
        return parseError("truncated header");
    if (kind != static_cast<std::uint8_t>(MsgKind::Bid) &&
        kind != static_cast<std::uint8_t>(MsgKind::Price))
        return parseError("unknown kind");
    msg.kind = static_cast<MsgKind>(kind);
    std::uint32_t payloadSize = 0;
    std::uint32_t payloadCrc = 0;
    if (!in.readU32(msg.src) || !in.readU32(msg.dst) ||
        !in.readU64(msg.seq) || !in.readU32(msg.attempt) ||
        !in.readU32(payloadSize) || !in.readU32(payloadCrc))
        return parseError("truncated header");
    const std::string_view payload = in.rest();
    if (payload.size() != payloadSize)
        return parseError("payload length mismatch");
    if (crc32(payload) != payloadCrc)
        return Status::error(ErrorKind::SemanticError, 0,
                             "net message: payload CRC mismatch");

    Reader body(payload);
    if (msg.kind == MsgKind::Bid) {
        std::uint64_t count = 0;
        if (!body.readU32(msg.bid.shard) || !body.readU64(msg.bid.round) ||
            !body.readU64(count))
            return parseError("truncated bid payload");
        if (count > payload.size() / 20)
            return parseError("truncated bid payload");
        msg.bid.partials.resize(static_cast<std::size_t>(count));
        for (BlockPartial &p : msg.bid.partials) {
            if (!body.readU32(p.server) || !body.readU64(p.block) ||
                !body.readF64(p.partial))
                return parseError("truncated bid payload");
        }
    } else {
        std::uint64_t count = 0;
        if (!body.readU64(msg.price.round) || !body.readU64(count))
            return parseError("truncated price payload");
        if (count > payload.size() / 8)
            return parseError("truncated price payload");
        msg.price.prices.resize(static_cast<std::size_t>(count));
        for (double &p : msg.price.prices) {
            if (!body.readF64(p))
                return parseError("truncated price payload");
        }
    }
    if (!body.atEnd())
        return parseError("trailing payload bytes");
    return msg;
}

} // namespace amdahl::net
