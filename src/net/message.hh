/**
 * @file
 * Typed message envelopes for the simulated clearing transport.
 *
 * Two message kinds cross the coordinator <-> shard boundary:
 *
 *  - PriceMsg: the coordinator's per-round posted-price broadcast.
 *  - BidMsg: a shard's per-(server, price-block) bid partial sums —
 *    the canonical accumulation units of the blocked price fold, so
 *    the coordinator can reassemble *bitwise* the same per-server
 *    totals the in-process kernel computes.
 *
 * Every message is serialized to explicit little-endian wire bytes
 * with a fixed header {magic, kind, src, dst, seq, round, attempt,
 * payload length, payload CRC-32} and decoded back on delivery; the
 * CRC (common/crc32, the zlib polynomial) is verified before any
 * payload field is trusted. Decode failures follow the Status
 * taxonomy: ParseError for truncated/malformed frames, SemanticError
 * for a CRC or magic mismatch. The fault-free determinism bridge
 * doubles as a codec-losslessness proof: sharded runs route every
 * price and partial through encode/decode, and must still match the
 * in-process kernel byte for byte.
 */

#ifndef AMDAHL_NET_MESSAGE_HH
#define AMDAHL_NET_MESSAGE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace amdahl::net {

enum class MsgKind : std::uint8_t {
    Bid = 1,
    Price = 2,
};

[[nodiscard]] const char *toString(MsgKind kind);

/** Node ids on the wire: 0 is the coordinator, shard s is s + 1. */
inline constexpr std::uint32_t kCoordinatorNode = 0;

inline constexpr std::uint32_t
shardNode(std::size_t shard)
{
    return static_cast<std::uint32_t>(shard + 1);
}

/**
 * One (server, block) bid partial: the front-to-back sum of the
 * block's CSR bid entries on that server. Zero partials are included
 * so the coordinator table cell is always overwritten, never merged.
 */
struct BlockPartial
{
    std::uint32_t server = 0;
    std::uint64_t block = 0;
    double partial = 0.0;
};

/** A shard's bid aggregate for one round. */
struct BidMsg
{
    std::uint32_t shard = 0;
    std::uint64_t round = 0; ///< Global round the bids respond to.
    std::vector<BlockPartial> partials;
};

/** The coordinator's posted-price broadcast for one round. */
struct PriceMsg
{
    std::uint64_t round = 0; ///< Global round being opened.
    std::vector<double> prices;
};

/** A decoded envelope: header fields plus exactly one payload. */
struct Message
{
    MsgKind kind = MsgKind::Bid;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;     ///< Per-edge send sequence number.
    std::uint32_t attempt = 0; ///< 0 = first send, k = k-th retransmit.
    BidMsg bid;                ///< Valid when kind == Bid.
    PriceMsg price;            ///< Valid when kind == Price.
};

/** Serialize @p msg to wire bytes (header + CRC-protected payload). */
[[nodiscard]] std::string encodeMessage(const Message &msg);

/**
 * Parse and verify one wire frame.
 * @return ParseError on truncation/malformed fields, SemanticError on
 * magic or CRC mismatch.
 */
[[nodiscard]] Result<Message> decodeMessage(std::string_view wire);

} // namespace amdahl::net

#endif // AMDAHL_NET_MESSAGE_HH
