/**
 * @file
 * Transport state that survives a clearing round — and a crash.
 *
 * A NetSession is the minimal cross-epoch carrier for the simulated
 * network: the virtual-clock position, the global round counter that
 * keys fault substreams and partition windows, and the per-edge send
 * sequence numbers. eval/online persists it inside OnlineRunState, so
 * a durable run that crashes mid-partition recovers onto the *same*
 * timeline — the same rounds stay partitioned, the same retransmits
 * fire, and the replayed trace is byte-identical to an uninterrupted
 * run's.
 *
 * Everything else about the transport (in-flight messages, pending
 * retransmits) is local to one solve: a clearing boundary flushes the
 * simulated network, deterministically.
 */

#ifndef AMDAHL_NET_SESSION_HH
#define AMDAHL_NET_SESSION_HH

#include <cstdint>
#include <vector>

#include "net/clock.hh"

namespace amdahl::net {

/**
 * Edge ids: the coordinator talks to shard `s` over directed edge
 * `2 * s` (price broadcasts) and hears from it over `2 * s + 1` (bid
 * aggregates). Ids are dense so they can key both substreams and the
 * per-edge sequence vector.
 */
inline constexpr std::uint64_t
priceEdge(std::size_t shard)
{
    return 2 * static_cast<std::uint64_t>(shard);
}

inline constexpr std::uint64_t
bidEdge(std::size_t shard)
{
    return 2 * static_cast<std::uint64_t>(shard) + 1;
}

/** Persistent transport state; plain data, codec-friendly. */
struct NetSession
{
    /** Virtual-clock position at the end of the last solve. */
    Ticks ticks = 0;

    /**
     * Global round counter across all solves in a run. Fault
     * substreams and partition windows are keyed by this (not the
     * per-solve iteration), so a partition scheduled for rounds
     * [120, 180) spans epoch boundaries and replays identically
     * after crash recovery.
     */
    std::uint64_t globalRound = 0;

    /**
     * Next send sequence number per edge, indexed by edge id; sized
     * 2 * shards by the first solve that uses the session. Sequence
     * numbers never reset, so duplicate suppression is sound across
     * epochs.
     */
    std::vector<std::uint64_t> edgeSeq;
};

} // namespace amdahl::net

#endif // AMDAHL_NET_SESSION_HH
