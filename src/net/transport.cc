#include "net/transport.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace amdahl::net {

namespace {

/**
 * Emit one xfer span for a message copy. The span covers the wire
 * interval send → arrival ("delivered"/"duplicate"); dropped copies
 * ("lost", "partition_drop") are zero-width at the send tick. The
 * (edge, round, attempt) triple in the fields is exactly the fault
 * substream coordinate the NetFaultModel drew from, so the analyzer
 * can replay any realization question offline.
 */
void
emitXferSpan(obs::TraceSink &sink, std::uint64_t edge,
             std::size_t shard, std::uint64_t streamRound,
             std::uint32_t attempt, std::uint32_t copy, Ticks t0,
             Ticks t1, const char *outcome)
{
    const std::uint64_t id = obs::spanId(
        obs::SpanKind::Xfer, edge, streamRound,
        (static_cast<std::uint64_t>(attempt) << 1) | copy);
    obs::SpanEvent(sink, edge % 2 == 0 ? "price_xfer" : "bid_xfer",
                   id, obs::currentSpanParent(), t0, t1)
        .field("edge", edge)
        .field("shard", shard)
        .field("round", streamRound)
        .field("attempt", attempt)
        .field("outcome", outcome);
}

} // namespace

NetInstruments
NetInstruments::bind()
{
    obs::MetricsRegistry &reg = obs::metrics();
    NetInstruments inst;
    inst.sent = &reg.counter("net.msgs_sent");
    inst.delivered = &reg.counter("net.msgs_delivered");
    inst.lost = &reg.counter("net.msgs_lost");
    inst.partitionDrops = &reg.counter("net.partition_drops");
    inst.duplicated = &reg.counter("net.msgs_duplicated");
    inst.dupSuppressed = &reg.counter("net.dup_suppressed");
    inst.retransmits = &reg.counter("net.retransmits");
    inst.staleBidRounds = &reg.counter("net.stale_bid_rounds");
    inst.degradedRounds = &reg.counter("net.degraded_rounds");
    inst.quorumCollapses = &reg.counter("net.quorum_collapses");
    inst.healedReentries = &reg.counter("net.healed_reentries");
    inst.latency = &reg.histogram(
        "net.msg_latency", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                            128.0, 256.0, 512.0, 1024.0});
    inst.quorum = &reg.histogram(
        "net.quorum", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    return inst;
}

void
VirtualTransport::send(Message msg, std::uint64_t edge, std::size_t shard,
                       std::uint64_t streamRound,
                       std::uint64_t partitionRound, Ticks now)
{
    if (edge >= session_->edgeSeq.size())
        panic("net edge ", edge, " outside session sequence space (",
              session_->edgeSeq.size(), ")");
    msg.seq = session_->edgeSeq[edge]++;
    obs::TraceSink *spans = obs::spanSink();
    if (inst_)
        inst_->sent->add();
    const std::uint64_t g = streamRound;
    const std::uint32_t attempt = msg.attempt;
    if (model_->partitioned(shard, partitionRound)) {
        if (inst_)
            inst_->partitionDrops->add();
        if (spans)
            emitXferSpan(*spans, edge, shard, g, attempt, 0, now, now,
                         "partition_drop");
        return;
    }
    if (model_->lost(edge, g, attempt)) {
        if (inst_)
            inst_->lost->add();
        if (spans)
            emitXferSpan(*spans, edge, shard, g, attempt, 0, now, now,
                         "lost");
        return;
    }
    Delivery delivery;
    delivery.sentAt = now;
    delivery.edge = edge;
    delivery.at = now + model_->delay(edge, g, attempt);
    delivery.wire = encodeMessage(msg);
    const std::uint64_t seq = msg.seq;
    const bool dup = model_->duplicated(edge, g, attempt);
    if (spans)
        emitXferSpan(*spans, edge, shard, g, attempt, 0, now,
                     delivery.at, "delivered");
    if (dup) {
        if (inst_)
            inst_->duplicated->add();
        Delivery copy = delivery;
        copy.at = now + model_->duplicateDelay(edge, g, attempt);
        if (spans)
            emitXferSpan(*spans, edge, shard, g, attempt, 1, now,
                         copy.at, "duplicate");
        enqueue(std::move(copy), seq, 1);
    }
    enqueue(std::move(delivery), seq, 0);
}

void
VirtualTransport::enqueue(Delivery delivery, std::uint64_t seq,
                          std::uint32_t copy)
{
    Entry entry;
    entry.seq = seq;
    entry.copy = copy;
    // Rank price broadcasts ahead of bid aggregates at the same tick
    // so the delivery order is a total function of the frame alone.
    entry.kindRank = delivery.edge % 2 == 0 ? 0 : 1;
    entry.delivery = std::move(delivery);
    heap_.push(std::move(entry));
}

bool
VirtualTransport::peekNext(Ticks &at, std::uint64_t &edge) const
{
    if (heap_.empty())
        return false;
    at = heap_.top().delivery.at;
    edge = heap_.top().delivery.edge;
    return true;
}

bool
VirtualTransport::popNext(Ticks upTo, Delivery &out)
{
    if (heap_.empty() || heap_.top().delivery.at > upTo)
        return false;
    out = heap_.top().delivery;
    heap_.pop();
    if (inst_) {
        inst_->delivered->add();
        inst_->latency->record(
            static_cast<double>(out.at - out.sentAt));
    }
    return true;
}

} // namespace amdahl::net
