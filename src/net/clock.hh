/**
 * @file
 * Virtual time for the simulated transport.
 *
 * The network layer never reads a wall clock (the amdahl_lint
 * DET-clock rule covers src/net/): all latency, deadlines, and backoff
 * are expressed in abstract ticks on a monotone virtual clock that the
 * barrier loop advances explicitly. Two runs with the same seed and
 * options therefore see the *same* timeline regardless of host load,
 * thread count, or scheduling — the property every determinism bridge
 * test in tests/net/ rests on.
 *
 * A tick has no physical unit; options such as `--net-delay` and
 * `--barrier-deadline` are ratios on this shared scale. When every
 * fault rate is zero all delays are zero, the clock never advances,
 * and virtual time is invisible in traces and metrics.
 */

#ifndef AMDAHL_NET_CLOCK_HH
#define AMDAHL_NET_CLOCK_HH

#include <cstdint>

#include "common/logging.hh"

namespace amdahl::net {

/** Abstract virtual-time instant / duration. */
using Ticks = std::uint64_t;

/**
 * Monotone virtual clock owned by the barrier loop.
 *
 * Constructed from the session's persisted tick count so durable runs
 * resume on the same timeline they crashed on; advanced only via
 * advanceTo(), which panics on any attempt to move backwards.
 */
class VirtualClock
{
  public:
    explicit VirtualClock(Ticks start = 0) : now_(start) {}

    [[nodiscard]] Ticks now() const { return now_; }

    void
    advanceTo(Ticks t)
    {
        if (t < now_)
            panic("virtual clock moved backwards: ", t, " < ", now_);
        now_ = t;
    }

  private:
    Ticks now_;
};

} // namespace amdahl::net

#endif // AMDAHL_NET_CLOCK_HH
