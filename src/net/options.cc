#include "net/options.hh"

#include <charconv>
#include <cmath>

namespace amdahl::net {
namespace {

/** Parse an unsigned integer occupying the whole of @p text. */
bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *first = text.data();
    const char *last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

} // namespace

Status
validateShardedOptions(const ShardedOptions &opts)
{
    const auto bad = [](auto &&...parts) {
        return Status::error(ErrorKind::DomainError, 0,
                             std::forward<decltype(parts)>(parts)...);
    };
    if (opts.shards > kMaxShards)
        return bad("--shards must be at most ", kMaxShards, ", got ",
                   opts.shards);
    if (opts.barrierDeadline == 0)
        return bad("--barrier-deadline must be positive");
    if (opts.retransmitBase == 0)
        return bad("retransmit base delay must be positive");
    if (!(opts.quorumFloor > 0.0) || opts.quorumFloor > 1.0 ||
        !std::isfinite(opts.quorumFloor))
        return bad("--quorum must be in (0, 1], got ", opts.quorumFloor);
    if (!(opts.reentryDamping > 0.0) || opts.reentryDamping > 1.0 ||
        !std::isfinite(opts.reentryDamping))
        return bad("re-entry damping must be in (0, 1], got ",
                   opts.reentryDamping);
    const NetFaultOptions &f = opts.faults;
    if (!(f.lossRate >= 0.0) || f.lossRate >= 1.0 ||
        !std::isfinite(f.lossRate))
        return bad("--net-loss must be in [0, 1), got ", f.lossRate);
    if (!(f.duplicationRate >= 0.0) || f.duplicationRate >= 1.0 ||
        !std::isfinite(f.duplicationRate))
        return bad("net duplication rate must be in [0, 1), got ",
                   f.duplicationRate);
    if (f.delayMin > f.delayMax)
        return bad("--net-delay min ", f.delayMin,
                   " exceeds max ", f.delayMax);
    for (const PartitionWindow &w : opts.partitions) {
        if (opts.shards > 0 && w.shard >= opts.shards)
            return bad("--net-partition shard ", w.shard,
                       " out of range for ", opts.shards, " shard(s)");
        if (w.toRound <= w.fromRound)
            return bad("--net-partition window [", w.fromRound, ", ",
                       w.toRound, ") is empty");
    }
    return Status::ok();
}

Result<PartitionWindow>
parsePartitionWindow(std::string_view spec)
{
    const auto first = spec.find(':');
    const auto second =
        first == std::string_view::npos ? first : spec.find(':', first + 1);
    std::uint64_t shard = 0;
    PartitionWindow window;
    if (second == std::string_view::npos ||
        !parseU64(spec.substr(0, first), shard) ||
        !parseU64(spec.substr(first + 1, second - first - 1),
                  window.fromRound) ||
        !parseU64(spec.substr(second + 1), window.toRound)) {
        return Status::error(ErrorKind::ParseError, 0,
                             "--net-partition expects shard:from:to, got \"",
                             spec, "\"");
    }
    window.shard = static_cast<std::size_t>(shard);
    if (window.toRound <= window.fromRound)
        return Status::error(ErrorKind::DomainError, 0,
                             "--net-partition window [", window.fromRound,
                             ", ", window.toRound, ") is empty");
    return window;
}

Status
parseDelaySpec(std::string_view spec, NetFaultOptions &faults)
{
    const auto colon = spec.find(':');
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (colon == std::string_view::npos) {
        if (!parseU64(spec, hi))
            return Status::error(ErrorKind::ParseError, 0,
                                 "--net-delay expects ticks or min:max, "
                                 "got \"", spec, "\"");
    } else if (!parseU64(spec.substr(0, colon), lo) ||
               !parseU64(spec.substr(colon + 1), hi)) {
        return Status::error(ErrorKind::ParseError, 0,
                             "--net-delay expects ticks or min:max, got \"",
                             spec, "\"");
    }
    if (lo > hi)
        return Status::error(ErrorKind::DomainError, 0, "--net-delay min ",
                             lo, " exceeds max ", hi);
    faults.delayMin = lo;
    faults.delayMax = hi;
    return Status::ok();
}

} // namespace amdahl::net
