/**
 * @file
 * Seed-driven fault realizations for the simulated transport.
 *
 * Every stochastic decision (drop? delay by how much? duplicate?) is
 * a *pure function* of (seed, edge, global round, attempt) through the
 * counter-based substreams in common/random.hh: no generator state is
 * consumed, so realizations are independent of query order, thread
 * count, and schedule. Asking twice gives the same answer; asking for
 * edge 7 before edge 3 changes nothing. This is what makes a faulted
 * run replayable — crash recovery re-asks the same questions and gets
 * the same network.
 *
 * Substream layout, per message coordinate (edge e, round g,
 * attempt a) with s1 = substreamSeed(seed, e, g):
 *
 *   loss        = counterBernoulli(s1, a, 0, lossRate)
 *   duplication = counterBernoulli(s1, a, 1, duplicationRate)
 *   delay       = delayMin + floor(u2 * span),
 *                 u2 = counterUniform(mix64(substreamSeed(s1, a, 2)))
 *   dup delay   = same with purpose 3 (independent draw, so the copy
 *                 lands at a different tick — reordering for free)
 *
 * Scheduled partitions are deterministic windows on *global* rounds
 * and drop both directions of a shard's edge pair.
 */

#ifndef AMDAHL_NET_FAULT_MODEL_HH
#define AMDAHL_NET_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "net/options.hh"

namespace amdahl::net {

class NetFaultModel
{
  public:
    NetFaultModel(const NetFaultOptions &faults,
                  std::vector<PartitionWindow> partitions)
        : faults_(faults), partitions_(std::move(partitions))
    {}

    /** True when any fault — stochastic or scheduled — can occur. */
    [[nodiscard]] bool
    active() const
    {
        return faults_.stochastic() || !partitions_.empty();
    }

    /** Is @p shard partitioned from the coordinator in round @p g? */
    [[nodiscard]] bool
    partitioned(std::size_t shard, std::uint64_t g) const
    {
        for (const PartitionWindow &w : partitions_) {
            if (w.shard == shard && g >= w.fromRound && g < w.toRound)
                return true;
        }
        return false;
    }

    [[nodiscard]] bool
    lost(std::uint64_t edge, std::uint64_t g, std::uint32_t attempt) const
    {
        if (faults_.lossRate <= 0.0)
            return false;
        return counterBernoulli(substreamSeed(faults_.seed, edge, g),
                                attempt, 0, faults_.lossRate);
    }

    [[nodiscard]] bool
    duplicated(std::uint64_t edge, std::uint64_t g,
               std::uint32_t attempt) const
    {
        if (faults_.duplicationRate <= 0.0)
            return false;
        return counterBernoulli(substreamSeed(faults_.seed, edge, g),
                                attempt, 1, faults_.duplicationRate);
    }

    /** Delivery delay of the primary copy, in ticks. */
    [[nodiscard]] Ticks
    delay(std::uint64_t edge, std::uint64_t g, std::uint32_t attempt) const
    {
        return drawDelay(edge, g, attempt, 2);
    }

    /** Independent delivery delay of the duplicated copy. */
    [[nodiscard]] Ticks
    duplicateDelay(std::uint64_t edge, std::uint64_t g,
                   std::uint32_t attempt) const
    {
        return drawDelay(edge, g, attempt, 3);
    }

  private:
    [[nodiscard]] Ticks
    drawDelay(std::uint64_t edge, std::uint64_t g, std::uint32_t attempt,
              std::uint64_t purpose) const
    {
        if (faults_.delayMax == 0)
            return 0;
        const std::uint64_t s1 = substreamSeed(faults_.seed, edge, g);
        const double u =
            counterUniform(mix64(substreamSeed(s1, attempt, purpose)));
        const Ticks span = faults_.delayMax - faults_.delayMin + 1;
        Ticks d = faults_.delayMin + static_cast<Ticks>(
                                         u * static_cast<double>(span));
        if (d > faults_.delayMax) // guard the u ~ 1.0 edge
            d = faults_.delayMax;
        return d;
    }

    NetFaultOptions faults_;
    std::vector<PartitionWindow> partitions_;
};

} // namespace amdahl::net

#endif // AMDAHL_NET_FAULT_MODEL_HH
