/**
 * @file
 * Configuration for sharded clearing over the simulated transport.
 *
 * Two option groups with a sharp contract between them:
 *
 *  - NetFaultOptions describe the *environment* (loss, delay,
 *    duplication, partitions). They change results — that is their
 *    point — but deterministically: realizations are pure functions
 *    of (seed, edge, round, attempt).
 *  - ShardedOptions describe the *protocol* (shard count, barrier
 *    deadline, retransmit policy, quorum floor). With all fault rates
 *    zero, none of them may change results: any shard count must
 *    reproduce the in-process kernel byte for byte (the determinism
 *    bridge, enforced by tests/net/test_sharded_bidding.cc).
 *
 * All user-facing validation goes through the Status taxonomy
 * (DomainError for out-of-range values, ParseError for malformed
 * partition specs) so the CLI can surface structured errors.
 */

#ifndef AMDAHL_NET_OPTIONS_HH
#define AMDAHL_NET_OPTIONS_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "net/clock.hh"

namespace amdahl::net {

/**
 * A scheduled bidirectional partition: shard @p shard exchanges no
 * messages with the coordinator (both edges) for global rounds in
 * [fromRound, toRound). Keyed by *global* rounds (NetSession) so a
 * window can span epoch boundaries and replay across crash recovery.
 */
struct PartitionWindow
{
    std::size_t shard = 0;
    std::uint64_t fromRound = 0;
    std::uint64_t toRound = 0;
};

/** Seed-driven stochastic fault environment for the transport. */
struct NetFaultOptions
{
    /** Per-message loss probability on every edge, in [0, 1). */
    double lossRate = 0.0;
    /** Per-message delivery delay, uniform in [delayMin, delayMax] ticks. */
    Ticks delayMin = 0;
    Ticks delayMax = 0;
    /** Probability a delivered message is also duplicated, in [0, 1). */
    double duplicationRate = 0.0;
    /** Root seed for all per-(edge, round, attempt) substreams. */
    std::uint64_t seed = 0;

    /** True when any stochastic fault can actually occur. */
    [[nodiscard]] bool
    stochastic() const
    {
        return lossRate > 0.0 || delayMax > 0 || duplicationRate > 0.0;
    }
};

/**
 * Upper bound on the shard count accepted by validation. The
 * effective count clamps to the market's price-block count anyway;
 * the cap exists so an absurd request (e.g. "-1" wrapped through an
 * unsigned parse) is a structured DomainError instead of a failed
 * session-state allocation.
 */
inline constexpr std::size_t kMaxShards = 1u << 20;

/** Protocol knobs for the epoch-barrier sharded clearing loop. */
struct ShardedOptions
{
    /**
     * Number of user shards; 0 disables sharded clearing entirely
     * (the in-process kernel runs instead). The effective count is
     * clamped to the market's price-block count, so tiny markets
     * never see empty shards.
     */
    std::size_t shards = 0;

    /** Barrier deadline per round, ticks after the price broadcast. */
    Ticks barrierDeadline = 64;

    /**
     * A shard that has not heard a newer price broadcast retransmits
     * its bid aggregate at send + base * 2^(k-1) for attempts
     * k = 1..maxRetransmits (deterministic exponential backoff).
     */
    Ticks retransmitBase = 8;
    std::uint32_t maxRetransmits = 3;

    /**
     * Minimum usable-shard fraction for a degraded round, in (0, 1].
     * A round with fewer than ceil(quorumFloor * shards) usable
     * shards (fresh or within maxStaleRounds) aborts the solve as a
     * quorum collapse, which the FallbackPolicy ladder escalates.
     */
    double quorumFloor = 0.5;

    /**
     * How many rounds a silent shard's last-known bid aggregate may
     * stand in for a fresh one before the shard stops counting
     * toward quorum.
     */
    std::uint64_t maxStaleRounds = 8;

    /**
     * Damping multiplier applied (on top of BiddingOptions::damping)
     * to a shard's first bid update after it missed one or more
     * price broadcasts — the damped warm-start re-entry that keeps a
     * healed shard from yanking prices. In (0, 1].
     */
    double reentryDamping = 0.5;

    NetFaultOptions faults;
    std::vector<PartitionWindow> partitions;

    [[nodiscard]] bool enabled() const { return shards > 0; }

    /** True when any fault (stochastic or scheduled) can occur. */
    [[nodiscard]] bool
    faulty() const
    {
        return faults.stochastic() || !partitions.empty();
    }
};

/**
 * Validate every field against its documented domain.
 * @return DomainError naming the offending option on failure.
 */
[[nodiscard]] Status validateShardedOptions(const ShardedOptions &opts);

/**
 * Parse a `--net-partition` spec of the form "shard:from:to"
 * (half-open global-round window [from, to), to > from).
 * @return ParseError on malformed input, DomainError on an empty
 * window.
 */
[[nodiscard]] Result<PartitionWindow>
parsePartitionWindow(std::string_view spec);

/**
 * Parse a `--net-delay` spec: either "max" (uniform in [0, max]) or
 * "min:max" ticks.
 */
[[nodiscard]] Status parseDelaySpec(std::string_view spec,
                                    NetFaultOptions &faults);

} // namespace amdahl::net

#endif // AMDAHL_NET_OPTIONS_HH
