#include "parallelism.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace amdahl::exec {

namespace {

/** 0 = not yet resolved from the environment. */
std::atomic<int> configuredThreads{0};

/** 0 = no explicit override; fall through to the environment. */
std::atomic<std::size_t> configuredBidGrain{0};

/** -1 = environment not yet read; 0 = unset/invalid. */
std::atomic<long long> envBidGrain{-1};

std::size_t
resolveBidGrainFromEnvironment()
{
    const long long cached = envBidGrain.load(std::memory_order_relaxed);
    if (cached >= 0)
        return static_cast<std::size_t>(cached);
    const char *value = std::getenv("AMDAHL_BID_GRAIN");
    long long parsed = 0;
    if (value != nullptr && *value != '\0') {
        char *end = nullptr;
        const long long candidate = std::strtoll(value, &end, 10);
        if (end != nullptr && *end == '\0' && candidate > 0) {
            parsed = candidate;
        } else {
            warn("ignoring invalid AMDAHL_BID_GRAIN='", value,
                 "' (want a positive integer); using the default "
                 "grain");
        }
    }
    envBidGrain.store(parsed, std::memory_order_relaxed);
    return static_cast<std::size_t>(parsed);
}

int
resolveFromEnvironment()
{
    const char *value = std::getenv("AMDAHL_THREADS");
    if (value == nullptr || *value == '\0')
        return 1;
    try {
        return parseThreadCount(value);
    } catch (const FatalError &) {
        warn("ignoring invalid AMDAHL_THREADS='", value,
             "' (want a non-negative integer or 'auto'); running "
             "single-threaded");
        return 1;
    }
}

} // namespace

int
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int
threadCount()
{
    int current = configuredThreads.load(std::memory_order_relaxed);
    if (current > 0)
        return current;
    // First query: resolve the environment once. A racing setThreadCount
    // wins via the compare-exchange below.
    const int resolved = resolveFromEnvironment();
    if (configuredThreads.compare_exchange_strong(
            current, resolved, std::memory_order_relaxed))
        return resolved;
    return current;
}

int
setThreadCount(int n)
{
    if (n < 0)
        fatal("thread count must be non-negative (0 = auto), got ", n);
    const int effective = n == 0 ? hardwareThreads() : n;
    const int previous =
        configuredThreads.exchange(effective, std::memory_order_relaxed);
    // A set before the first query reports the default, not "unset".
    return previous > 0 ? previous : 1;
}

std::size_t
bidUpdateGrain(std::size_t fallback)
{
    const std::size_t explicitGrain =
        configuredBidGrain.load(std::memory_order_relaxed);
    if (explicitGrain > 0)
        return explicitGrain;
    const std::size_t env = resolveBidGrainFromEnvironment();
    return env > 0 ? env : fallback;
}

std::size_t
setBidUpdateGrain(std::size_t n)
{
    return configuredBidGrain.exchange(n, std::memory_order_relaxed);
}

int
bidKernelOverride()
{
    // -2 = not yet resolved.
    static std::atomic<int> cached{-2};
    const int current = cached.load(std::memory_order_relaxed);
    if (current != -2)
        return current;
    const char *value = std::getenv("AMDAHL_KERNEL");
    int resolved = -1;
    if (value != nullptr && *value != '\0') {
        const std::string text(value);
        if (text == "scalar") {
            resolved = 0;
        } else if (text == "simd") {
            resolved = 1;
        } else if (text != "auto") {
            warn("ignoring invalid AMDAHL_KERNEL='", value,
                 "' (want scalar, simd, or auto)");
        }
    }
    cached.store(resolved, std::memory_order_relaxed);
    return resolved;
}

int
parseThreadCount(const std::string &text)
{
    if (text == "auto" || text == "0")
        return hardwareThreads();
    std::size_t consumed = 0;
    int parsed = 0;
    try {
        parsed = std::stoi(text, &consumed);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (text.empty() || consumed != text.size() || parsed < 0)
        fatal("invalid thread count '", text,
              "' (want a non-negative integer or 'auto')");
    return parsed == 0 ? hardwareThreads() : parsed;
}

} // namespace amdahl::exec
