#include "parallelism.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace amdahl::exec {

namespace {

/** 0 = not yet resolved from the environment. */
std::atomic<int> configuredThreads{0};

int
resolveFromEnvironment()
{
    const char *value = std::getenv("AMDAHL_THREADS");
    if (value == nullptr || *value == '\0')
        return 1;
    try {
        return parseThreadCount(value);
    } catch (const FatalError &) {
        warn("ignoring invalid AMDAHL_THREADS='", value,
             "' (want a non-negative integer or 'auto'); running "
             "single-threaded");
        return 1;
    }
}

} // namespace

int
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int
threadCount()
{
    int current = configuredThreads.load(std::memory_order_relaxed);
    if (current > 0)
        return current;
    // First query: resolve the environment once. A racing setThreadCount
    // wins via the compare-exchange below.
    const int resolved = resolveFromEnvironment();
    if (configuredThreads.compare_exchange_strong(
            current, resolved, std::memory_order_relaxed))
        return resolved;
    return current;
}

int
setThreadCount(int n)
{
    if (n < 0)
        fatal("thread count must be non-negative (0 = auto), got ", n);
    const int effective = n == 0 ? hardwareThreads() : n;
    const int previous =
        configuredThreads.exchange(effective, std::memory_order_relaxed);
    // A set before the first query reports the default, not "unset".
    return previous > 0 ? previous : 1;
}

int
parseThreadCount(const std::string &text)
{
    if (text == "auto" || text == "0")
        return hardwareThreads();
    std::size_t consumed = 0;
    int parsed = 0;
    try {
        parsed = std::stoi(text, &consumed);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (text.empty() || consumed != text.size() || parsed < 0)
        fatal("invalid thread count '", text,
              "' (want a non-negative integer or 'auto')");
    return parsed == 0 ? hardwareThreads() : parsed;
}

} // namespace amdahl::exec
