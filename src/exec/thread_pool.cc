#include "thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exec/parallelism.hh"
#include "obs/metrics.hh"

namespace amdahl::exec {

namespace {

/** Set while the current thread is executing region chunks; nested
 *  parallel constructs run inline instead of re-entering the pool. */
thread_local bool insideRegion = false;

/** Bounded lock-free spin between regions so back-to-back kernel
 *  launches (one per bidding round) skip the condvar wakeup latency. */
constexpr int kSpinIterations = 256;

} // namespace

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        ++generation_;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::chunkCount(std::size_t begin, std::size_t end,
                       std::size_t grain)
{
    if (end <= begin)
        return 0;
    if (grain == 0)
        fatal("parallelFor grain must be at least 1");
    return (end - begin + grain - 1) / grain;
}

void
ThreadPool::runSerial(std::size_t begin, std::size_t end,
                      std::size_t grain, const ChunkFn &fn)
{
    for (std::size_t lo = begin; lo < end; lo += grain)
        fn(lo, std::min(end, lo + grain));
}

std::size_t
ThreadPool::runChunks(Region &region, bool submitter)
{
    (void)submitter;
    std::size_t ran = 0;
    for (;;) {
        const std::size_t i =
            region.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (i >= region.chunks)
            break;
        // After a failure, remaining chunks are drained unexecuted so
        // the region still completes and the error can be rethrown.
        if (!region.failed.load(std::memory_order_relaxed)) {
            const std::size_t lo = region.begin + i * region.grain;
            const std::size_t hi =
                std::min(region.end, lo + region.grain);
            try {
                (*region.body)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> guard(region.errorMutex);
                if (region.error == nullptr)
                    region.error = std::current_exception();
                region.failed.store(true, std::memory_order_relaxed);
            }
        }
        region.executed.fetch_add(1, std::memory_order_release);
        ++ran;
    }
    return ran;
}

void
ThreadPool::ensureWorkers(int wanted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < wanted)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        for (int i = 0; i < kSpinIterations; ++i) {
            if (generationAtomic_.load(std::memory_order_acquire) !=
                seen)
                break;
            std::this_thread::yield();
        }
        Region *region = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            region = current_;
            if (region == nullptr)
                continue;
            ++activeWorkers_;
        }
        insideRegion = true;
        const std::size_t ran = runChunks(*region, false);
        insideRegion = false;
        if (ran > 0)
            region->stolen.fetch_add(ran, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
        }
        done_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        std::size_t grain, const ChunkFn &fn)
{
    const std::size_t chunks = chunkCount(begin, end, grain);
    if (chunks == 0)
        return;

    const int threads = exec::threadCount();
    if (threads <= 1 || chunks <= 1 || insideRegion) {
        runSerial(begin, end, grain, fn);
        obs::metrics().counter("exec.tasks").add(chunks);
        return;
    }

    // One region at a time; concurrent external submitters queue here.
    std::lock_guard<std::mutex> submit(submitMutex_);
    ensureWorkers(
        std::min<int>(threads - 1, static_cast<int>(chunks) - 1));

    Region region;
    region.begin = begin;
    region.end = end;
    region.grain = grain;
    region.chunks = chunks;
    region.body = &fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        current_ = &region;
        ++generation_;
        generationAtomic_.store(generation_,
                                std::memory_order_release);
    }
    wake_.notify_all();

    insideRegion = true;
    runChunks(region, true);
    insideRegion = false;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return region.executed.load(std::memory_order_acquire) ==
                       region.chunks &&
                   activeWorkers_ == 0;
        });
        current_ = nullptr;
    }

    if (region.error != nullptr)
        std::rethrow_exception(region.error);

    auto &registry = obs::metrics();
    registry.counter("exec.tasks").add(chunks);
    const std::size_t stolen =
        region.stolen.load(std::memory_order_relaxed);
    if (stolen > 0)
        registry.counter("exec.steal").add(stolen);
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const ThreadPool::ChunkFn &fn)
{
    ThreadPool::global().parallelFor(begin, end, grain, fn);
}

} // namespace amdahl::exec
