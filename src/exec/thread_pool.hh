/**
 * @file
 * Lazily-started, reusable thread pool with deterministic parallel
 * constructs.
 *
 * The market's hot loops are embarrassingly parallel (per-user bid
 * updates, per-server price gathers, independent scenario evaluations)
 * but the reproduction's contract is bit-reproducibility: the same
 * seed must yield byte-identical traces, metrics, and allocations at
 * any thread count. The two constructs here are designed around that:
 *
 *  - parallelFor(begin, end, grain, fn): the index range is cut into
 *    fixed chunks of `grain` (the layout depends only on the range and
 *    the grain, never on the thread count) and chunks are claimed by
 *    an atomic ticket. Bodies must write disjoint state per index, so
 *    any claim order produces the same memory contents.
 *
 *  - parallelReduce(begin, end, grain, identity, map, combine): chunk
 *    partials are stored in chunk order and folded by a fixed
 *    balanced binary tree over that order. Floating-point combines
 *    therefore associate identically at every thread count — the
 *    "ordered reduction" determinism argument of DESIGN.md §11.
 *
 * The pool starts no threads until the first region that wants more
 * than one (threadCount() == 1 runs chunks inline, the exact serial
 * instruction stream). Workers spin briefly between regions before
 * blocking so back-to-back kernel launches (one per bidding round)
 * don't pay a wakeup latency. Nested regions run inline on the
 * calling thread — the inner loop of an already-parallel outer loop
 * needs no second fan-out (and must not deadlock the pool).
 *
 * Exceptions thrown by a body are captured and rethrown on the
 * submitting thread after the region drains (first one wins), so
 * contract checks (AMDAHL_ASSERT) fire exactly as they do serially.
 *
 * Telemetry: each region adds its chunk count to the `exec.tasks`
 * counter (deterministic — the layout is thread-count independent)
 * and the number of chunks executed by pool workers rather than the
 * submitter to `exec.steal` (scheduling telemetry, explicitly outside
 * the determinism contract; see DESIGN.md §11).
 */

#ifndef AMDAHL_EXEC_THREAD_POOL_HH
#define AMDAHL_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amdahl::exec {

/** Reusable worker pool; one process-wide instance via global(). */
class ThreadPool
{
  public:
    /** The chunked loop body: called as fn(chunkBegin, chunkEnd). */
    using ChunkFn = std::function<void(std::size_t, std::size_t)>;

    ThreadPool() = default;
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool. Workers are spawned lazily (up to
     * Parallelism's threadCount() - 1) and reused across regions.
     */
    static ThreadPool &global();

    /**
     * Run @p fn over [begin, end) in chunks of @p grain indices.
     *
     * The chunk layout depends only on (begin, end, grain); bodies
     * run concurrently and must write disjoint state per index.
     * Serial when the configured thread count is 1, when the range
     * fits one chunk, or when called from inside another region.
     *
     * @param grain Chunk size in indices (>= 1; fatal otherwise).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     std::size_t grain, const ChunkFn &fn);

    /**
     * Deterministic tree reduction over [begin, end).
     *
     * @param identity Value returned for an empty range.
     * @param map      map(chunkBegin, chunkEnd) -> T, the per-chunk
     *                 partial (computed in parallel).
     * @param combine  combine(T, T) -> T, folded over the chunk
     *                 partials by a fixed balanced binary tree in
     *                 chunk order (serial, cheap — one call per
     *                 chunk). Need not be commutative; the fold order
     *                 is identical at every thread count.
     */
    template <typename T, typename MapFn, typename CombineFn>
    T
    parallelReduce(std::size_t begin, std::size_t end,
                   std::size_t grain, T identity, MapFn &&map,
                   CombineFn &&combine)
    {
        if (end <= begin)
            return identity;
        const std::size_t count = chunkCount(begin, end, grain);
        std::vector<T> parts(count, identity);
        parallelFor(begin, end, grain,
                    [&](std::size_t lo, std::size_t hi) {
                        parts[(lo - begin) / grain] = map(lo, hi);
                    });
        // Balanced binary fold over chunk order: the tree shape is a
        // function of the chunk count alone.
        for (std::size_t stride = 1; stride < count; stride *= 2) {
            for (std::size_t i = 0; i + stride < count;
                 i += 2 * stride)
                parts[i] = combine(parts[i], parts[i + stride]);
        }
        return parts[0];
    }

    /** @return Number of chunks parallelFor would create (the value
     *  `exec.tasks` grows by); depends only on the range and grain. */
    static std::size_t chunkCount(std::size_t begin, std::size_t end,
                                  std::size_t grain);

  private:
    struct Region
    {
        std::size_t begin = 0;
        std::size_t grain = 1;
        std::size_t chunks = 0;
        std::size_t end = 0;
        const ChunkFn *body = nullptr;
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> executed{0};
        std::atomic<std::size_t> stolen{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    void ensureWorkers(int wanted);
    void workerLoop();
    /** Claim and run chunks of @p region until none remain.
     *  @return chunks this thread executed. */
    std::size_t runChunks(Region &region, bool submitter);
    void runSerial(std::size_t begin, std::size_t end,
                   std::size_t grain, const ChunkFn &fn);

    std::mutex mutex_;
    /** Serializes whole regions from concurrent external submitters. */
    std::mutex submitMutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    Region *current_ = nullptr;
    std::uint64_t generation_ = 0;
    /** Mirror of generation_ for the lock-free worker spin phase. */
    std::atomic<std::uint64_t> generationAtomic_{0};
    std::size_t activeWorkers_ = 0;
    bool stop_ = false;
};

/**
 * Convenience: ThreadPool::global().parallelFor with the configured
 * thread count. The default entry point for library code.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const ThreadPool::ChunkFn &fn);

/** Convenience: deterministic reduce on the global pool. */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T identity, MapFn &&map, CombineFn &&combine)
{
    return ThreadPool::global().parallelReduce(
        begin, end, grain, identity, std::forward<MapFn>(map),
        std::forward<CombineFn>(combine));
}

} // namespace amdahl::exec

#endif // AMDAHL_EXEC_THREAD_POOL_HH
