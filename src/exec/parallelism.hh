/**
 * @file
 * Global parallelism configuration for the execution layer.
 *
 * The paper's Synchronous schedule is *defined* as a distributed
 * deployment where bids are computed in parallel (§V-E); this module
 * decides how many threads the reproduction actually uses for that
 * fan-out. One process-wide thread count governs every pool section
 * (bid-update kernels, price gathers, scenario fan-outs); it defaults
 * to 1, which runs the exact serial instruction stream with the pool
 * never started, so single-threaded runs are bit-identical to a build
 * without the execution layer.
 *
 * Configuration sources, in priority order:
 *   1. exec::setThreadCount(n)   — programmatic (CLI `--threads`,
 *                                  benches, tests);
 *   2. AMDAHL_THREADS            — environment, read once on first
 *                                  query ("0" or "auto" = hardware);
 *   3. default                   — 1 (serial).
 *
 * exec/ is the designated owner of machine-shape and environment
 * probes: amdahl_lint's DET-exec rule flags hardware_concurrency,
 * thread::get_id, and getenv anywhere else in src/, so the thread
 * count stays a performance knob, never a results knob (see
 * tools/lint/ and DESIGN.md §12).
 *
 * Thread count is a *performance* knob, never a results knob: every
 * parallel construct in exec/ is deterministic by design (fixed chunk
 * layouts, ordered reductions), so the same seed produces byte-
 * identical traces, metrics, and allocations at any setting. DESIGN.md
 * §11 carries the argument.
 */

#ifndef AMDAHL_EXEC_PARALLELISM_HH
#define AMDAHL_EXEC_PARALLELISM_HH

#include <cstddef>
#include <string>

namespace amdahl::exec {

/**
 * @return The configured thread count (>= 1). First call resolves the
 * AMDAHL_THREADS environment variable; later calls are one atomic
 * load.
 */
int threadCount();

/**
 * Set the process-wide thread count.
 *
 * @param n Threads to use; 0 selects the hardware concurrency.
 *          Negative values are invalid (fatal).
 * @return The previous setting.
 */
int setThreadCount(int n);

/** @return The hardware concurrency (>= 1 even when unknown). */
int hardwareThreads();

/**
 * @return The users-per-chunk grain of the Synchronous bid-update
 * fan-out (>= 1). Defaults to @p fallback (the solvers pass their
 * compiled-in constant); AMDAHL_BID_GRAIN overrides it, and
 * setBidUpdateGrain overrides both. Like the thread count this is a
 * *performance* knob, never a results knob: the canonical price fold
 * runs over fixed-size price blocks regardless of the update grain,
 * so bids/prices/allocations are byte-identical at any setting (only
 * the exec.tasks counter shifts away from the default).
 */
std::size_t bidUpdateGrain(std::size_t fallback);

/**
 * Set the process-wide bid-update grain.
 *
 * @param n Users per chunk; 0 restores the solver default (and
 *          re-enables the AMDAHL_BID_GRAIN override).
 * @return The previous explicit setting (0 = was default).
 */
std::size_t setBidUpdateGrain(std::size_t n);

/**
 * The AMDAHL_KERNEL environment override for the bid-update kernel,
 * resolved here because exec/ owns environment probes (DET-exec):
 * @return -1 when unset (or unrecognized, with a warning), 0 for
 * "scalar", 1 for "simd". core/bidding_simd.hh interprets the value.
 */
int bidKernelOverride();

/**
 * Parse a `--threads` style value: a non-negative integer or "auto"
 * (hardware concurrency). @throws FatalError on anything else.
 */
int parseThreadCount(const std::string &text);

} // namespace amdahl::exec

#endif // AMDAHL_EXEC_PARALLELISM_HH
