#include "root_find.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace amdahl::solver {

double
bisect(const std::function<double(double)> &f, double lo, double hi,
       const ScalarSolveOptions &opts)
{
    // Leaf of every waterFill call; a map lookup per invocation would
    // dominate the work, so the counter binds once per process.
    static obs::Counter &calls =
        obs::metrics().counter("solver.bisect.calls");
    calls.add();
    if (!(lo < hi))
        fatal("bisect: invalid bracket [", lo, ", ", hi, "]");
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    if ((flo > 0.0) == (fhi > 0.0))
        fatal("bisect: f has the same sign at both bracket ends");

    for (int it = 0; it < opts.maxIterations; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0 || hi - lo <= opts.tolerance)
            return mid;
        if ((fmid > 0.0) == (flo > 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double
newtonBracketed(const std::function<double(double)> &f,
                const std::function<double(double)> &df, double lo,
                double hi, const ScalarSolveOptions &opts)
{
    static obs::Counter &calls =
        obs::metrics().counter("solver.newton.calls");
    calls.add();
    if (!(lo < hi))
        fatal("newtonBracketed: invalid bracket [", lo, ", ", hi, "]");
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    if ((flo > 0.0) == (fhi > 0.0))
        fatal("newtonBracketed: f has the same sign at both bracket ends");

    double x = 0.5 * (lo + hi);
    for (int it = 0; it < opts.maxIterations; ++it) {
        const double fx = f(x);
        if (fx == 0.0 || hi - lo <= opts.tolerance)
            return x;
        // Maintain the sign-changing bracket.
        if ((fx > 0.0) == (flo > 0.0)) {
            lo = x;
            flo = fx;
        } else {
            hi = x;
        }
        const double dfx = df(x);
        double next = x - (dfx != 0.0 ? fx / dfx : 0.0);
        if (dfx == 0.0 || next <= lo || next >= hi ||
            !std::isfinite(next)) {
            next = 0.5 * (lo + hi); // Newton unusable: bisect.
        }
        x = next;
    }
    return x;
}

double
minimizeGolden(const std::function<double(double)> &f, double lo, double hi,
               const ScalarSolveOptions &opts)
{
    if (!(lo < hi))
        fatal("minimizeGolden: invalid interval [", lo, ", ", hi, "]");
    constexpr double inv_phi = 0.6180339887498949; // 1/phi
    double a = lo;
    double b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    for (int it = 0; it < opts.maxIterations && b - a > opts.tolerance;
         ++it) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

} // namespace amdahl::solver
