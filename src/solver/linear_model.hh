/**
 * @file
 * Least-squares regression models.
 *
 * Section IV of the paper fits linear models of execution time versus
 * dataset size from sampled profiles (Figure 4) and notes that some
 * workloads (e.g., QR decomposition) need polynomial models instead. Both
 * are provided here.
 */

#ifndef AMDAHL_SOLVER_LINEAR_MODEL_HH
#define AMDAHL_SOLVER_LINEAR_MODEL_HH

#include <cstddef>
#include <vector>

namespace amdahl::solver {

/** Simple linear regression y = intercept + slope * x. */
struct LinearModel
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;       //!< Coefficient of determination of the fit.
    std::size_t n = 0;     //!< Number of points fitted.

    /** Evaluate the model at x. */
    double predict(double x) const { return intercept + slope * x; }
};

/**
 * Fit a line by ordinary least squares.
 *
 * @param xs Predictor values.
 * @param ys Response values (same length as xs, at least 2 points with
 *           distinct xs).
 * @return The fitted model with its R^2.
 */
LinearModel fitLinear(const std::vector<double> &xs,
                      const std::vector<double> &ys);

/** Polynomial regression y = sum_k coeffs[k] * x^k. */
struct PolynomialModel
{
    std::vector<double> coeffs; //!< coeffs[k] multiplies x^k.
    double r2 = 0.0;
    std::size_t n = 0;

    /** Evaluate the polynomial at x (Horner). */
    double predict(double x) const;

    /** @return The degree (coeffs.size() - 1); 0 for an empty model. */
    std::size_t degree() const;
};

/**
 * Fit a polynomial of the given degree by least squares (normal
 * equations solved with partial-pivot Gaussian elimination).
 *
 * @param xs     Predictor values.
 * @param ys     Response values.
 * @param degree Polynomial degree (>= 0); needs at least degree+1 points.
 */
PolynomialModel fitPolynomial(const std::vector<double> &xs,
                              const std::vector<double> &ys,
                              std::size_t degree);

} // namespace amdahl::solver

#endif // AMDAHL_SOLVER_LINEAR_MODEL_HH
