/**
 * @file
 * One-dimensional root finding and minimization.
 *
 * The market solvers repeatedly invert monotone scalar functions: the
 * water-filling multiplier search inverts aggregate spend as a function of
 * the KKT multiplier, and the interior-point line search brackets feasible
 * step sizes. These routines are deliberately defensive — they validate
 * brackets and iterate to a configurable tolerance.
 */

#ifndef AMDAHL_SOLVER_ROOT_FIND_HH
#define AMDAHL_SOLVER_ROOT_FIND_HH

#include <functional>

namespace amdahl::solver {

/** Options shared by the scalar solvers. */
struct ScalarSolveOptions
{
    double tolerance = 1e-12; //!< Width of the final bracket / step size.
    int maxIterations = 200;  //!< Hard iteration cap.
};

/**
 * Find a root of f in [lo, hi] by bisection.
 *
 * Requires f(lo) and f(hi) to have opposite signs (or one of them to be
 * zero).
 *
 * @param f  Continuous function.
 * @param lo Lower bracket end.
 * @param hi Upper bracket end (lo < hi).
 * @return A point x with |bracket| <= tolerance or |f(x)| == 0.
 */
double bisect(const std::function<double(double)> &f, double lo, double hi,
              const ScalarSolveOptions &opts = {});

/**
 * Newton-Raphson with bisection fallback (a simplified Brent scheme).
 *
 * Maintains a sign-changing bracket [lo, hi]; Newton steps that would
 * leave the bracket or fail to shrink it are replaced by bisection steps,
 * so convergence is guaranteed for continuous f.
 *
 * @param f  Function whose root is sought.
 * @param df Derivative of f.
 * @param lo Lower bracket end (f(lo) and f(hi) must differ in sign).
 * @param hi Upper bracket end.
 */
double newtonBracketed(const std::function<double(double)> &f,
                       const std::function<double(double)> &df, double lo,
                       double hi, const ScalarSolveOptions &opts = {});

/**
 * Minimize a unimodal function on [lo, hi] by golden-section search.
 *
 * @return The abscissa of the minimum, to within opts.tolerance.
 */
double minimizeGolden(const std::function<double(double)> &f, double lo,
                      double hi, const ScalarSolveOptions &opts = {});

} // namespace amdahl::solver

#endif // AMDAHL_SOLVER_ROOT_FIND_HH
