/**
 * @file
 * Log-barrier interior-point solver for separable concave maximization
 * over a budget simplex.
 *
 * The Best-Response (BR) baseline from Section VI-A optimizes each user's
 * price-anticipating bids with the interior-point method:
 *
 *     max g(b) = sum_j g_j(b_j)   s.t.  b_j >= 0,  sum_j b_j <= budget.
 *
 * Each g_j is concave and twice differentiable, so the barrier problem
 *
 *     max t * g(b) + sum_j log(b_j) + log(budget - sum_j b_j)
 *
 * is solved with damped Newton steps. The Hessian is diagonal plus a
 * rank-one term from the shared slack, so each Newton system is solved in
 * O(m) with the Sherman-Morrison identity; the paper's observation that BR
 * is far more expensive than Amdahl Bidding survives even with this
 * structure exploited.
 */

#ifndef AMDAHL_SOLVER_INTERIOR_POINT_HH
#define AMDAHL_SOLVER_INTERIOR_POINT_HH

#include <cstddef>
#include <vector>

namespace amdahl::solver {

/**
 * A separable concave objective: g(b) = sum_j g_j(b_j).
 *
 * Implementations must guarantee concavity per coordinate
 * (hessian() <= 0) for the solver's convergence proof to apply.
 */
class SeparableConcave
{
  public:
    virtual ~SeparableConcave() = default;

    /** @return Number of coordinates m. */
    virtual std::size_t size() const = 0;

    /** @return g_j(b). */
    virtual double value(std::size_t j, double b) const = 0;

    /** @return g_j'(b). */
    virtual double gradient(std::size_t j, double b) const = 0;

    /** @return g_j''(b); must be <= 0. */
    virtual double hessian(std::size_t j, double b) const = 0;
};

/** Tuning knobs for the interior-point solver. */
struct InteriorPointOptions
{
    double tolerance = 1e-9;       //!< Duality-gap target (m+1)/t.
    double initialT = 1.0;         //!< Initial barrier weight.
    double tGrowth = 20.0;         //!< Barrier weight multiplier per round.
    int maxNewtonSteps = 200;      //!< Cap on Newton steps per round.
    double newtonTolerance = 1e-10; //!< Newton decrement target.
};

/** Convergence diagnostics. */
struct InteriorPointStats
{
    int barrierRounds = 0;
    int newtonSteps = 0;
    double finalGap = 0.0;
};

/**
 * Maximize a separable concave objective over the budget simplex.
 *
 * @param objective The per-coordinate terms.
 * @param budget    Total budget (> 0).
 * @param opts      Solver options.
 * @param stats     Optional diagnostics out-parameter.
 * @return The maximizing b (strictly interior; coordinates may be
 *         arbitrarily close to 0).
 */
std::vector<double> maximizeOnSimplex(const SeparableConcave &objective,
                                      double budget,
                                      const InteriorPointOptions &opts = {},
                                      InteriorPointStats *stats = nullptr);

} // namespace amdahl::solver

#endif // AMDAHL_SOLVER_INTERIOR_POINT_HH
