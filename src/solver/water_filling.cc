#include "water_filling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "solver/root_find.hh"

namespace amdahl::solver {

namespace {

// The Amdahl speedup curve degenerates at f == 0 (constant) and f == 1
// (linear); clamping keeps the closed forms finite without visibly moving
// the optimum for realistic parallel fractions.
constexpr double fracFloor = 1e-9;
constexpr double fracCeil = 1.0 - 1e-9;

double
clampFraction(double f)
{
    return std::min(std::max(f, fracFloor), fracCeil);
}

/** Optimal cores on one server for a given multiplier. */
double
coresAtMultiplier(const WaterFillItem &item, double f, double lambda)
{
    // KKT stationarity: w f / (p (f + (1-f) x)^2) = lambda when x > 0.
    const double radicand = item.weight * f / (lambda * item.price);
    const double x = (std::sqrt(radicand) - f) / (1.0 - f);
    return std::max(0.0, x);
}

} // namespace

WaterFillResult
waterFill(const std::vector<WaterFillItem> &items, double budget)
{
    // waterFill runs once per bidder per bidding iteration — the
    // hottest solver path. Bind the counter once per process so the
    // steady-state cost is one increment, not a map lookup.
    static obs::Counter &solves =
        obs::metrics().counter("solver.wf.solves");
    solves.add();
    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.solver.water_filling_us"));
    if (items.empty())
        fatal("waterFill: no items");
    if (budget <= 0.0)
        fatal("waterFill: budget must be positive, got ", budget);

    std::vector<double> fracs(items.size());
    double lambda_hi = 0.0;
    for (std::size_t j = 0; j < items.size(); ++j) {
        const auto &item = items[j];
        if (item.price <= 0.0)
            fatal("waterFill: non-positive price at item ", j);
        if (item.weight <= 0.0)
            fatal("waterFill: non-positive weight at item ", j);
        fracs[j] = clampFraction(item.parallelFraction);
        // Marginal utility of money at zero spend: w / (p f).
        lambda_hi = std::max(lambda_hi,
                             item.weight / (item.price * fracs[j]));
    }

    auto spend_at = [&](double lambda) {
        double total = 0.0;
        for (std::size_t j = 0; j < items.size(); ++j) {
            total += items[j].price *
                     coresAtMultiplier(items[j], fracs[j], lambda);
        }
        return total;
    };

    // Bracket lambda*: spend(lambda_hi) == 0 < budget; walk lambda down
    // until aggregate spend exceeds the budget.
    double lambda_lo = lambda_hi;
    while (spend_at(lambda_lo) < budget) {
        lambda_lo *= 0.5;
        if (lambda_lo < 1e-300)
            panic("waterFill: failed to bracket the multiplier");
    }

    // The spend-vs-lambda curve is extremely stiff when some parallel
    // fraction approaches 1, so run bisection to iteration exhaustion
    // (2^-200 of the initial bracket) rather than stopping at a width.
    ScalarSolveOptions opts;
    opts.tolerance = 0.0;
    opts.maxIterations = 200;
    const double lambda = bisect(
        [&](double l) { return spend_at(l) - budget; }, lambda_lo,
        lambda_hi, opts);

    WaterFillResult result;
    result.multiplier = lambda;
    result.spend.resize(items.size());
    result.cores.resize(items.size());
    double spent = 0.0;
    for (std::size_t j = 0; j < items.size(); ++j) {
        const double x = coresAtMultiplier(items[j], fracs[j], lambda);
        result.cores[j] = x;
        result.spend[j] = items[j].price * x;
        spent += result.spend[j];
    }
    // Distribute bisection residual proportionally so spends sum to the
    // budget exactly (the caller relies on budget exhaustion).
    if (spent > 0.0) {
        const double scale = budget / spent;
        for (std::size_t j = 0; j < items.size(); ++j) {
            result.spend[j] *= scale;
            result.cores[j] = result.spend[j] / items[j].price;
        }
    }
    for (std::size_t j = 0; j < items.size(); ++j) {
        const double x = result.cores[j];
        const double f = fracs[j];
        result.utility += items[j].weight * x / (f + (1.0 - f) * x);
    }
    return result;
}

} // namespace amdahl::solver
