#include "interior_point.hh"

#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"

namespace amdahl::solver {

namespace {

/** Barrier objective value: t * g(b) + sum log b_j + log slack. */
double
barrierValue(const SeparableConcave &objective, const std::vector<double> &b,
             double slack, double t)
{
    double value = 0.0;
    for (std::size_t j = 0; j < b.size(); ++j)
        value += t * objective.value(j, b[j]) + std::log(b[j]);
    value += std::log(slack);
    return value;
}

} // namespace

std::vector<double>
maximizeOnSimplex(const SeparableConcave &objective, double budget,
                  const InteriorPointOptions &opts,
                  InteriorPointStats *stats)
{
    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.solver.interior_point_us"));
    const std::size_t m = objective.size();
    if (m == 0)
        fatal("maximizeOnSimplex: empty objective");
    if (budget <= 0.0)
        fatal("maximizeOnSimplex: budget must be positive, got ", budget);

    // Strictly feasible start: half the budget spread evenly.
    std::vector<double> b(m, budget / (2.0 * static_cast<double>(m)));
    double slack = budget * 0.5;

    InteriorPointStats local;
    double t = opts.initialT;
    const double constraints = static_cast<double>(m) + 1.0;

    std::vector<double> grad(m), diag(m), step(m);
    while (true) {
        ++local.barrierRounds;
        // Centering: damped Newton on the barrier objective at weight t.
        for (int newton = 0; newton < opts.maxNewtonSteps; ++newton) {
            ++local.newtonSteps;
            const double slack_grad = -1.0 / slack;
            const double slack_hess = -1.0 / (slack * slack);
            for (std::size_t j = 0; j < m; ++j) {
                grad[j] = t * objective.gradient(j, b[j]) + 1.0 / b[j] +
                          slack_grad;
                double h = t * objective.hessian(j, b[j]) -
                           1.0 / (b[j] * b[j]);
                if (h > -1e-300)
                    h = -1e-300; // Guard: objective must be concave.
                diag[j] = h;
            }
            // Newton system (D + c 11^T) step = -grad with c < 0, solved
            // via Sherman-Morrison.
            const double c = slack_hess;
            double sum_ginv = 0.0;
            double sum_inv = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                sum_ginv += grad[j] / diag[j];
                sum_inv += 1.0 / diag[j];
            }
            const double denom = 1.0 + c * sum_inv;
            // Newton decrement for maximization: grad^T step
            // = grad^T (-H^{-1}) grad >= 0 since H is negative definite.
            double decrement = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                step[j] = -(grad[j] / diag[j] -
                            c * sum_ginv / (denom * diag[j]));
                decrement += grad[j] * step[j];
            }
            if (decrement < 0.0)
                decrement = 0.0;
            AMDAHL_CHECK_FINITE(decrement);
            if (decrement * 0.5 <= opts.newtonTolerance)
                break;

            // Backtracking line search keeping strict feasibility.
            double step_sum = 0.0;
            for (double s : step)
                step_sum += s;
            double alpha = 1.0;
            for (std::size_t j = 0; j < m; ++j) {
                if (step[j] < 0.0)
                    alpha = std::min(alpha, -0.99 * b[j] / step[j]);
            }
            if (step_sum > 0.0)
                alpha = std::min(alpha, 0.99 * slack / step_sum);

            const double base = barrierValue(objective, b, slack, t);
            constexpr double armijo = 1e-4;
            constexpr double shrink = 0.5;
            bool moved = false;
            for (int ls = 0; ls < 60; ++ls) {
                std::vector<double> trial(m);
                for (std::size_t j = 0; j < m; ++j)
                    trial[j] = b[j] + alpha * step[j];
                const double trial_slack = slack - alpha * step_sum;
                const double trial_value =
                    barrierValue(objective, trial, trial_slack, t);
                if (trial_value >=
                    base + armijo * alpha * decrement) {
                    b = std::move(trial);
                    slack = trial_slack;
                    moved = true;
                    // Contract: the damped step keeps the iterate
                    // strictly inside the barrier's domain.
                    if constexpr (checkedBuild) {
                        AMDAHL_ASSERT(slack > 0.0,
                                      "line search left the simplex ",
                                      "interior (slack ", slack, ")");
                        for (double bj : b) {
                            AMDAHL_ASSERT(bj > 0.0,
                                          "barrier iterate left the ",
                                          "positive orthant (", bj,
                                          ")");
                        }
                    }
                    break;
                }
                alpha *= shrink;
            }
            if (!moved)
                break; // Line search stalled: centered well enough.
        }

        local.finalGap = constraints / t;
        if (local.finalGap <= opts.tolerance)
            break;
        t *= opts.tGrowth;
    }

    obs::metrics().counter("solver.ip.solves").add();
    obs::metrics()
        .counter("solver.ip.barrier_rounds")
        .add(static_cast<std::uint64_t>(local.barrierRounds));
    obs::metrics()
        .counter("solver.ip.newton_steps")
        .add(static_cast<std::uint64_t>(local.newtonSteps));
    if (stats)
        *stats = local;
    return b;
}

} // namespace amdahl::solver
