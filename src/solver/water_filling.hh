/**
 * @file
 * Closed-form KKT (water-filling) solver for single-user budget splits.
 *
 * A user with budget b facing prices p_j maximizes her Amdahl utility
 *
 *     max sum_j w_j * s_j(b_j / p_j)   s.t.  sum_j b_j <= b, b_j >= 0,
 *     s_j(x) = x / (f_j + (1 - f_j) x)
 *
 * The objective is separable and concave, so the KKT conditions give each
 * coordinate in closed form as a function of the budget multiplier lambda:
 *
 *     x_j(lambda) = max(0, (sqrt(w_j f_j / (lambda p_j)) - f_j)
 *                          / (1 - f_j))
 *
 * and lambda is found by bisection on the (monotone) aggregate spend.
 * This is the optimal price-taking demand — it defines the benchmark
 * against which the Amdahl Bidding fixed point is verified, and it powers
 * the Upper-Bound policy's per-user subproblem.
 */

#ifndef AMDAHL_SOLVER_WATER_FILLING_HH
#define AMDAHL_SOLVER_WATER_FILLING_HH

#include <cstddef>
#include <vector>

namespace amdahl::solver {

/** One server's term in the user's separable objective. */
struct WaterFillItem
{
    double weight = 1.0;           //!< w_j, work rate on server j.
    double parallelFraction = 0.5; //!< f_j in (0, 1]; clamped internally.
    double price = 1.0;            //!< p_j > 0, price per core.
};

/** Solution of the budget-split problem. */
struct WaterFillResult
{
    std::vector<double> spend;  //!< Optimal b_j; sums to the budget.
    std::vector<double> cores;  //!< Optimal x_j = b_j / p_j.
    double multiplier = 0.0;    //!< KKT multiplier lambda*.
    double utility = 0.0;       //!< sum_j w_j s_j(x_j) at the optimum.
};

/**
 * Solve the single-user budget-split problem.
 *
 * @param items  Per-server terms; prices and weights must be positive.
 * @param budget Total budget (> 0).
 * @return Optimal spends, allocations, and the KKT multiplier.
 */
WaterFillResult waterFill(const std::vector<WaterFillItem> &items,
                          double budget);

} // namespace amdahl::solver

#endif // AMDAHL_SOLVER_WATER_FILLING_HH
