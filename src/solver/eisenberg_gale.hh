/**
 * @file
 * Generic Eisenberg-Gale solver: budget-weighted proportional
 * fairness.
 *
 * The Eisenberg-Gale convex program
 *
 *     max sum_i b_i log u_i(x_i)
 *     s.t. sum_{i on j} x_ij = C_j for every server j,  x >= 0
 *
 * coincides with the Fisher market equilibrium when utilities are
 * homogeneous of degree one (CES, linear, Leontief). **Amdahl utility
 * is not homogeneous** — s(x) saturates — so for this paper's
 * utilities the EG optimum is a *different* allocation concept:
 * budget-weighted proportional fairness. Empirically it sits within a
 * fraction of a core of the market equilibrium but achieves a
 * strictly higher EG objective by taking from users with flatter
 * curves (see tests and THEORY.md section 4a).
 *
 * The solver itself is the "generic utilities" approach the paper's
 * introduction contrasts against — projected gradient ascent needing
 * only utility values and gradients, paying iteration counts and
 * projections where Amdahl Bidding evaluates closed forms. It doubles
 * as (a) a proportional-fairness baseline for any concave utility and
 * (b) an independent cross-check: for homogeneous utilities it must
 * reproduce market equilibria exactly.
 */

#ifndef AMDAHL_SOLVER_EISENBERG_GALE_HH
#define AMDAHL_SOLVER_EISENBERG_GALE_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace amdahl::solver {

/** One buyer of the Eisenberg-Gale program. */
struct EgUser
{
    double budget = 1.0;

    /** Servers hosting this user's jobs (job k sits on servers[k]). */
    std::vector<std::size_t> servers;

    /** u_i(x): concave, increasing, positive for positive x. */
    std::function<double(const std::vector<double> &)> utility;

    /** Gradient of u_i at x (same arity as x). */
    std::function<std::vector<double>(const std::vector<double> &)>
        gradient;
};

/** Solver options. */
struct EgOptions
{
    double tolerance = 1e-9;   //!< Relative objective improvement stop.
    int maxIterations = 20000; //!< Gradient steps cap.
    double initialStep = 1.0;  //!< Starting step size (adapted).
};

/** Result of the Eisenberg-Gale solve. */
struct EgResult
{
    std::vector<std::vector<double>> allocation; //!< [user][job].
    std::vector<double> prices; //!< Duals recovered at the optimum.
    double objective = 0.0;     //!< sum b_i log u_i at the optimum.
    int iterations = 0;
    bool converged = false;
};

/**
 * Solve the Eisenberg-Gale program by projected gradient ascent.
 *
 * Each gradient step is followed by a Euclidean projection of every
 * server's job shares back onto its capacity simplex (with a small
 * positivity floor so log utilities stay finite); backtracking keeps
 * the objective monotone.
 *
 * @param capacities Server capacities C_j.
 * @param users      Buyers; every server must host at least one job.
 * @param opts       Solver options.
 */
EgResult solveEisenbergGale(const std::vector<double> &capacities,
                            const std::vector<EgUser> &users,
                            const EgOptions &opts = {});

/**
 * Euclidean projection of v onto {x : sum x = total, x >= floor}.
 * Exposed for testing.
 */
std::vector<double> projectOntoSimplex(const std::vector<double> &v,
                                       double total, double floor);

} // namespace amdahl::solver

#endif // AMDAHL_SOLVER_EISENBERG_GALE_HH
