#include "linear_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace amdahl::solver {

namespace {

/** R^2 of predictions against responses. */
double
coefficientOfDetermination(const std::vector<double> &ys,
                           const std::vector<double> &preds)
{
    double mean_y = 0.0;
    for (double y : ys)
        mean_y += y;
    mean_y /= static_cast<double>(ys.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
        ss_res += (ys[i] - preds[i]) * (ys[i] - preds[i]);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

/**
 * Solve the square system a * x = b in place with partial pivoting.
 * @return The solution vector.
 */
std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = a.size();
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        }
        if (std::abs(a[pivot][col]) < 1e-300)
            fatal("singular normal equations; add more distinct samples");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace

LinearModel
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("fitLinear: size mismatch ", xs.size(), " vs ", ys.size());
    if (xs.size() < 2)
        fatal("fitLinear: need at least 2 points, got ", xs.size());

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-300)
        fatal("fitLinear: all x values identical");

    LinearModel model;
    model.slope = (n * sxy - sx * sy) / denom;
    model.intercept = (sy - model.slope * sx) / n;
    model.n = xs.size();

    std::vector<double> preds(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        preds[i] = model.predict(xs[i]);
    model.r2 = coefficientOfDetermination(ys, preds);
    return model;
}

double
PolynomialModel::predict(double x) const
{
    double acc = 0.0;
    for (std::size_t k = coeffs.size(); k-- > 0;)
        acc = acc * x + coeffs[k];
    return acc;
}

std::size_t
PolynomialModel::degree() const
{
    return coeffs.empty() ? 0 : coeffs.size() - 1;
}

PolynomialModel
fitPolynomial(const std::vector<double> &xs, const std::vector<double> &ys,
              std::size_t degree)
{
    if (xs.size() != ys.size())
        fatal("fitPolynomial: size mismatch");
    if (xs.size() < degree + 1) {
        fatal("fitPolynomial: degree ", degree, " needs at least ",
              degree + 1, " points, got ", xs.size());
    }

    const std::size_t terms = degree + 1;
    // Normal equations: (V^T V) c = V^T y for the Vandermonde matrix V.
    std::vector<std::vector<double>> ata(terms,
                                         std::vector<double>(terms, 0.0));
    std::vector<double> atb(terms, 0.0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<double> powers(2 * terms - 1, 1.0);
        for (std::size_t k = 1; k < powers.size(); ++k)
            powers[k] = powers[k - 1] * xs[i];
        for (std::size_t r = 0; r < terms; ++r) {
            for (std::size_t c = 0; c < terms; ++c)
                ata[r][c] += powers[r + c];
            atb[r] += powers[r] * ys[i];
        }
    }

    PolynomialModel model;
    model.coeffs = solveDense(std::move(ata), std::move(atb));
    model.n = xs.size();

    std::vector<double> preds(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        preds[i] = model.predict(xs[i]);
    model.r2 = coefficientOfDetermination(ys, preds);
    return model;
}

} // namespace amdahl::solver
