#include "eisenberg_gale.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"

namespace amdahl::solver {

std::vector<double>
projectOntoSimplex(const std::vector<double> &v, double total,
                   double floor)
{
    const std::size_t n = v.size();
    if (n == 0)
        fatal("cannot project an empty vector");
    const double mass = total - floor * static_cast<double>(n);
    if (mass < 0.0)
        fatal("simplex floor exceeds the total");

    // Project (v - floor) onto the standard simplex of size `mass`.
    std::vector<double> shifted(n);
    for (std::size_t k = 0; k < n; ++k)
        shifted[k] = v[k] - floor;

    std::vector<double> sorted(shifted);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    double cumulative = 0.0;
    double theta = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        cumulative += sorted[k];
        const double candidate =
            (cumulative - mass) / static_cast<double>(k + 1);
        if (k + 1 == n || sorted[k + 1] <= candidate) {
            // Check the KKT condition for this support size.
            if (sorted[k] > candidate) {
                theta = candidate;
                break;
            }
        }
        theta = candidate;
    }

    std::vector<double> result(n);
    for (std::size_t k = 0; k < n; ++k) {
        result[k] = std::max(0.0, shifted[k] - theta) + floor;
        AMDAHL_CHECK_FINITE(result[k]);
    }
    // Contract: the projection lands on the simplex — coordinates at
    // or above the floor, summing to the requested total.
    if constexpr (checkedBuild) {
        double sum = 0.0;
        for (double r : result) {
            AMDAHL_ASSERT(r >= floor - 1e-12 * std::abs(total),
                          "projected coordinate ", r,
                          " fell below the simplex floor ", floor);
            sum += r;
        }
        AMDAHL_ASSERT(std::abs(sum - total) <=
                          1e-9 * std::max(1.0, std::abs(total)),
                      "simplex projection sums to ", sum,
                      " instead of ", total);
    }
    return result;
}

EgResult
solveEisenbergGale(const std::vector<double> &capacities,
                   const std::vector<EgUser> &users,
                   const EgOptions &opts)
{
    obs::ScopedTimer solve_timer(
        obs::timeHistogram("time.solver.eisenberg_gale_us"));
    if (capacities.empty())
        fatal("Eisenberg-Gale needs servers");
    if (users.empty())
        fatal("Eisenberg-Gale needs users");
    const std::size_t m = capacities.size();

    // Per-server job registry.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        on_server(m);
    for (std::size_t i = 0; i < users.size(); ++i) {
        if (users[i].budget <= 0.0)
            fatal("user ", i, " has non-positive budget");
        if (users[i].servers.empty())
            fatal("user ", i, " has no jobs");
        if (!users[i].utility || !users[i].gradient)
            fatal("user ", i, " lacks utility callbacks");
        for (std::size_t k = 0; k < users[i].servers.size(); ++k) {
            const std::size_t j = users[i].servers[k];
            if (j >= m)
                fatal("user ", i, " job on unknown server ", j);
            on_server[j].emplace_back(i, k);
        }
    }
    for (std::size_t j = 0; j < m; ++j) {
        if (on_server[j].empty())
            fatal("server ", j, " hosts no jobs");
        if (capacities[j] <= 0.0)
            fatal("server ", j, " has non-positive capacity");
    }

    // Start from even splits.
    EgResult result;
    result.allocation.resize(users.size());
    for (std::size_t i = 0; i < users.size(); ++i)
        result.allocation[i].assign(users[i].servers.size(), 0.0);
    for (std::size_t j = 0; j < m; ++j) {
        const double share =
            capacities[j] / static_cast<double>(on_server[j].size());
        for (const auto &[i, k] : on_server[j])
            result.allocation[i][k] = share;
    }

    auto objective = [&](const std::vector<std::vector<double>> &x) {
        double phi = 0.0;
        for (std::size_t i = 0; i < users.size(); ++i) {
            const double u = users[i].utility(x[i]);
            if (u <= 0.0)
                return -std::numeric_limits<double>::infinity();
            phi += users[i].budget * std::log(u);
        }
        return phi;
    };

    double phi = objective(result.allocation);
    double step = opts.initialStep;
    int stall = 0;
    auto trial = result.allocation;
    for (int it = 0; it < opts.maxIterations; ++it) {
        result.iterations = it + 1;

        // Gradient of the EG objective: b_i * du_i/dx_ik / u_i.
        std::vector<std::vector<double>> grad(users.size());
        for (std::size_t i = 0; i < users.size(); ++i) {
            const double u = users[i].utility(result.allocation[i]);
            grad[i] = users[i].gradient(result.allocation[i]);
            for (double &g : grad[i])
                g *= users[i].budget / u;
        }

        // Backtracking projected ascent step.
        bool moved = false;
        for (int bt = 0; bt < 40; ++bt) {
            for (std::size_t i = 0; i < users.size(); ++i) {
                for (std::size_t k = 0;
                     k < result.allocation[i].size(); ++k) {
                    trial[i][k] = result.allocation[i][k] +
                                  step * grad[i][k];
                }
            }
            // Re-impose per-server clearing.
            for (std::size_t j = 0; j < m; ++j) {
                std::vector<double> shares;
                shares.reserve(on_server[j].size());
                for (const auto &[i, k] : on_server[j])
                    shares.push_back(trial[i][k]);
                const auto projected = projectOntoSimplex(
                    shares, capacities[j], 1e-9 * capacities[j]);
                for (std::size_t s = 0; s < on_server[j].size(); ++s) {
                    const auto &[i, k] = on_server[j][s];
                    trial[i][k] = projected[s];
                }
            }
            const double phi_trial = objective(trial);
            if (phi_trial > phi) {
                std::swap(result.allocation, trial);
                const double gain = phi_trial - phi;
                phi = phi_trial;
                step *= 1.25;
                moved = true;
                stall = gain < opts.tolerance *
                                   (std::abs(phi) + 1e-12)
                            ? stall + 1
                            : 0;
                break;
            }
            step *= 0.5;
        }
        if (!moved || stall >= 5) {
            result.converged = true;
            break;
        }
    }
    result.objective = phi;
    AMDAHL_CHECK_FINITE(result.objective);

    obs::metrics().counter("solver.eg.solves").add();
    obs::metrics()
        .counter("solver.eg.iterations")
        .add(static_cast<std::uint64_t>(result.iterations));
    if (!result.converged)
        obs::metrics().counter("solver.eg.non_converged").add();

    // Contract: the ascent never leaves the feasible polytope — every
    // server's allocation clears its capacity (the per-server simplex
    // projection re-imposes this each step).
    if constexpr (checkedBuild) {
        std::vector<double> loads(m, 0.0);
        for (std::size_t i = 0; i < users.size(); ++i) {
            for (std::size_t k = 0; k < users[i].servers.size(); ++k)
                loads[users[i].servers[k]] += result.allocation[i][k];
        }
        invariants::CheckAllocationFeasible(
            loads, capacities, 1e-6, "eisenberg-gale allocation");
    }

    // Recover prices as the duals: p_j = b_i u_i'/u_i for interior
    // coordinates, averaged across the server's interior jobs.
    result.prices.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
        double sum = 0.0;
        int count = 0;
        for (const auto &[i, k] : on_server[j]) {
            if (result.allocation[i][k] <
                1e-4 * capacities[j]) {
                continue; // corner: dual inequality, not equality
            }
            const double u =
                users[i].utility(result.allocation[i]);
            const auto grad = users[i].gradient(result.allocation[i]);
            sum += users[i].budget * grad[k] / u;
            ++count;
        }
        result.prices[j] =
            count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    return result;
}

} // namespace amdahl::solver
