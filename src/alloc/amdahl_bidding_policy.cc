#include "amdahl_bidding_policy.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "core/rounding.hh"

namespace amdahl::alloc {

AllocationResult
AmdahlBiddingPolicy::allocate(const core::FisherMarket &market) const
{
    AllocationResult result;
    result.policyName = name();
    result.outcome = core::solveAmdahlBidding(market, opts);
    result.cores = core::roundOutcome(market, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

AllocationResult
AmdahlBiddingPolicy::allocate(
    const core::FisherMarket &market,
    const core::BidTransportFaults &faults) const
{
    core::BiddingOptions faulty = opts;
    faulty.transport = faults;

    AllocationResult result;
    result.policyName = name();
    result.outcome = core::solveAmdahlBidding(market, faulty);
    result.cores = core::roundOutcome(market, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

AllocationResult
AmdahlBiddingPolicy::allocate(const core::FisherMarket &market,
                              const core::ClearingContext &ctx) const
{
    if (ctx.sharding != nullptr)
        fatal("AmdahlBiddingPolicy clears in-process; sharded "
              "clearing goes through the fallback ladder");
    core::BiddingOptions merged = opts;
    merged.transport = ctx.transport;
    if (ctx.initialBids != nullptr)
        merged.initialBids = *ctx.initialBids;
    merged.kernelCache = ctx.kernelCache;

    AllocationResult result;
    result.policyName = name();
    result.outcome = core::solveAmdahlBidding(market, merged);
    result.cores = core::roundOutcome(market, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
