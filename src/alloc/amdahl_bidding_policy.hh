/**
 * @file
 * Amdahl Bidding (AB) as an allocation policy (Section VI-A).
 *
 * Thin adapter: run the closed-form proportional-response procedure from
 * core/bidding.hh to the Fisher equilibrium, then round fractional
 * allocations with Hamilton's method. This is the paper's proposed
 * mechanism.
 */

#ifndef AMDAHL_ALLOC_AMDAHL_BIDDING_POLICY_HH
#define AMDAHL_ALLOC_AMDAHL_BIDDING_POLICY_HH

#include "alloc/policy.hh"
#include "core/bidding.hh"

namespace amdahl::alloc {

/** The paper's market mechanism. */
class AmdahlBiddingPolicy : public AllocationPolicy
{
  public:
    explicit AmdahlBiddingPolicy(core::BiddingOptions options = {})
        : opts(std::move(options))
    {}

    std::string name() const override { return "AB"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

    /** Same procedure with this clearing's transport faults merged
     *  into the bidding options. */
    AllocationResult allocate(
        const core::FisherMarket &market,
        const core::BidTransportFaults &faults) const override;

    /** Full clearing context: faults plus the delta re-clearing
     *  plumbing (warm-start bids, kernel cache). Sharded clearing
     *  still requires the fallback ladder — this adapter serves the
     *  in-process procedure only and fatals on a sharded context. */
    AllocationResult allocate(
        const core::FisherMarket &market,
        const core::ClearingContext &ctx) const override;

  private:
    core::BiddingOptions opts;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_AMDAHL_BIDDING_POLICY_HH
