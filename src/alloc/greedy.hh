/**
 * @file
 * Performance-centric greedy mechanisms: Greedy (G) and Upper-Bound
 * (UB) from Section VI-A.
 *
 * Both allocate each server's cores one at a time to the job with the
 * greatest marginal gain, using an oracle (here: Amdahl's Law with the
 * market's parallel fractions) to predict speedups. They differ only in
 * how a user's progress is weighted:
 *
 *  - G  maximizes unweighted aggregate user progress — it ignores
 *    entitlements entirely;
 *  - UB maximizes the paper's system-progress objective (Eq. 10), which
 *    weights each user's progress by her entitlement share b_i / B.
 *
 * Because the objective is separable and concave in per-job cores,
 * per-core greedy assignment yields the *optimal* integral allocation
 * for the respective objective — hence "upper bound".
 */

#ifndef AMDAHL_ALLOC_GREEDY_HH
#define AMDAHL_ALLOC_GREEDY_HH

#include "alloc/policy.hh"

namespace amdahl::alloc {

/** Shared engine; see GreedyPolicy and UpperBoundPolicy. */
class MarginalGreedyBase : public AllocationPolicy
{
  public:
    AllocationResult allocate(
        const core::FisherMarket &market) const override;

  protected:
    /**
     * @return The per-user multiplier applied to marginal progress
     * (1 for G; the budget for UB — a positive rescaling of b_i / B).
     */
    virtual double userWeight(const core::FisherMarket &market,
                              std::size_t i) const = 0;
};

/** Greedy (G): entitlement-blind progress maximization. */
class GreedyPolicy : public MarginalGreedyBase
{
  public:
    std::string name() const override { return "G"; }

  protected:
    double userWeight(const core::FisherMarket &,
                      std::size_t) const override
    {
        return 1.0;
    }
};

/** Upper-Bound (UB): maximizes system progress, Eq. 10. */
class UpperBoundPolicy : public MarginalGreedyBase
{
  public:
    std::string name() const override { return "UB"; }

  protected:
    double userWeight(const core::FisherMarket &market,
                      std::size_t i) const override
    {
        return market.user(i).budget;
    }
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_GREEDY_HH
