/**
 * @file
 * Best Response (BR) — the price-anticipating market baseline
 * (Section VI-A, inspired by XChange [12]).
 *
 * BR users realize their bids move prices. User i choosing bid b on a
 * server where everyone else bids q in total receives
 *
 *     x(b) = C * b / (q + b)
 *
 * cores, so her best response maximizes sum_j w_j s_j(x_j(b_j)) over her
 * budget simplex. Each such subproblem is concave and is solved with the
 * interior-point method (per the paper); users best-respond in rounds
 * until bids reach the Nash equilibrium. BR's per-user update solves an
 * optimization where AB evaluates a closed form — the overheads study
 * quantifies that gap.
 *
 * When a user places several jobs on one server, each job bids as an
 * independent agent (job-level Nash); for the common case of at most one
 * job per (user, server) this coincides with user-level Nash.
 */

#ifndef AMDAHL_ALLOC_BEST_RESPONSE_HH
#define AMDAHL_ALLOC_BEST_RESPONSE_HH

#include "alloc/policy.hh"
#include "solver/interior_point.hh"

namespace amdahl::alloc {

/** Convergence knobs for the best-response loop. */
struct BestResponseOptions
{
    /** Stop when no bid moves by more than this relative amount. */
    double bidTolerance = 1e-5;

    /** Cap on best-response rounds. */
    int maxRounds = 500;

    /** Interior-point options for each user's subproblem. */
    solver::InteriorPointOptions interior;
};

/** The price-anticipating Nash baseline. */
class BestResponsePolicy : public AllocationPolicy
{
  public:
    explicit BestResponsePolicy(BestResponseOptions options = {})
        : opts(options)
    {}

    std::string name() const override { return "BR"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

    /**
     * One user's best-response bid computation (exposed so the
     * overheads benchmark can time exactly this step).
     *
     * @param user        The responding user.
     * @param capacities  Server capacities.
     * @param other_bids  Total bids per server excluding this user's.
     * @param opts        Interior-point options.
     * @return The user's optimal bids (one per job).
     */
    static std::vector<double>
    bestResponseBids(const core::MarketUser &user,
                     const std::vector<double> &capacities,
                     const std::vector<double> &other_bids,
                     const solver::InteriorPointOptions &opts = {});

  private:
    BestResponseOptions opts;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_BEST_RESPONSE_HH
