#include "policy.hh"

namespace amdahl::alloc {

int
AllocationResult::userCores(std::size_t i) const
{
    int total = 0;
    for (int x : cores[i])
        total += x;
    return total;
}

std::vector<std::pair<std::size_t, std::size_t>>
jobsOnServer(const core::FisherMarket &market, std::size_t server)
{
    std::vector<std::pair<std::size_t, std::size_t>> located;
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            if (jobs[k].server == server)
                located.emplace_back(i, k);
        }
    }
    return located;
}

} // namespace amdahl::alloc
