#include "policy.hh"

#include "common/invariants.hh"
#include "common/logging.hh"
#include "core/bidding.hh"

namespace amdahl::alloc {

AllocationResult
AllocationPolicy::allocate(const core::FisherMarket &market,
                           const core::ClearingContext &ctx) const
{
    // Centralized policies clear no network: the sharding options (if
    // any) are irrelevant and only the bid-loss model passes through.
    return allocate(market, ctx.transport);
}

const char *
toString(ServeMode mode)
{
    switch (mode) {
      case ServeMode::Primary:
        return "primary";
      case ServeMode::DeadlineAnytime:
        return "deadline-anytime";
      case ServeMode::DampedRetry:
        return "damped-retry";
      case ServeMode::ProportionalFallback:
        return "proportional-fallback";
    }
    panic("unknown serve mode");
}

int
AllocationResult::userCores(std::size_t i) const
{
    int total = 0;
    for (int x : cores[i])
        total += x;
    return total;
}

std::vector<std::pair<std::size_t, std::size_t>>
jobsOnServer(const core::FisherMarket &market, std::size_t server)
{
    std::vector<std::pair<std::size_t, std::size_t>> located;
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            if (jobs[k].server == server)
                located.emplace_back(i, k);
        }
    }
    return located;
}

void
auditAllocation(const core::FisherMarket &market,
                const AllocationResult &result)
{
    const std::size_t n = market.userCount();
    if (result.outcome.allocation.size() != n ||
        result.cores.size() != n) {
        panic(result.policyName, ": result covers ",
              result.outcome.allocation.size(), " users, market has ",
              n);
    }

    // Per-server loads of the fractional and the rounded allocation.
    std::vector<double> fractional(market.serverCount(), 0.0);
    std::vector<double> integral(market.serverCount(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        if (result.outcome.allocation[i].size() != jobs.size() ||
            result.cores[i].size() != jobs.size()) {
            panic(result.policyName, ": user ", i, " has ",
                  jobs.size(), " jobs but ",
                  result.outcome.allocation[i].size(),
                  " fractional / ", result.cores[i].size(),
                  " integral grants");
        }
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            invariants::CheckParallelFraction(
                jobs[k].parallelFraction, "policy audit");
            if (result.cores[i][k] < 0) {
                panic(result.policyName, ": user ", i, " job ", k,
                      " granted ", result.cores[i][k],
                      " (negative) cores");
            }
            fractional[jobs[k].server] +=
                result.outcome.allocation[i][k];
            integral[jobs[k].server] +=
                static_cast<double>(result.cores[i][k]);
        }
    }
    invariants::CheckAllocationFeasible(fractional, market.capacities(),
                                        1e-6, "policy audit (fractional)");
    invariants::CheckAllocationFeasible(integral, market.capacities(),
                                        1e-9, "policy audit (integral)");
}

} // namespace amdahl::alloc
