#include "proportional_fairness.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/rounding.hh"

namespace amdahl::alloc {

AllocationResult
ProportionalFairnessPolicy::allocate(
    const core::FisherMarket &market) const
{
    market.validate();

    // Adapt the market description into EG buyers with Amdahl
    // utilities (Eq. 4's normalized weighted speedup).
    std::vector<solver::EgUser> buyers;
    buyers.reserve(market.userCount());
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &user = market.user(i);
        solver::EgUser buyer;
        buyer.budget = user.budget;
        std::vector<double> fractions, weights;
        double weight_sum = 0.0;
        for (const auto &job : user.jobs) {
            buyer.servers.push_back(job.server);
            fractions.push_back(job.parallelFraction);
            weights.push_back(job.weight);
            weight_sum += job.weight;
        }
        buyer.utility = [fractions, weights,
                         weight_sum](const std::vector<double> &x) {
            double total = 0.0;
            for (std::size_t k = 0; k < fractions.size(); ++k) {
                total += weights[k] *
                         core::amdahlSpeedup(fractions[k], x[k]);
            }
            return total / weight_sum;
        };
        buyer.gradient = [fractions, weights,
                          weight_sum](const std::vector<double> &x) {
            std::vector<double> grad(fractions.size());
            for (std::size_t k = 0; k < fractions.size(); ++k) {
                grad[k] = weights[k] *
                          core::amdahlSpeedupDerivative(fractions[k],
                                                        x[k]) /
                          weight_sum;
            }
            return grad;
        };
        buyers.push_back(std::move(buyer));
    }

    const auto eg =
        solver::solveEisenbergGale(market.capacities(), buyers, opts);

    AllocationResult result;
    result.policyName = name();
    result.outcome.allocation = eg.allocation;
    result.outcome.prices = eg.prices;
    result.outcome.iterations = eg.iterations;
    result.outcome.converged = eg.converged;
    result.cores = core::roundOutcome(market, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
