/**
 * @file
 * Job placement policies.
 *
 * The paper takes job-to-server assignment as given ("each job has
 * been assigned to a server") and allocates cores afterwards. A full
 * system must also decide *where* arriving jobs go. Equilibrium prices
 * make that decision natural: a server's price is bids over capacity
 * (Eq. 8), i.e. a direct congestion signal — expensive servers are the
 * contended ones. This module provides three placement disciplines for
 * the online runtime:
 *
 *  - RoundRobin:  spread arrivals evenly, ignoring state;
 *  - LeastLoaded: pick the server currently hosting the fewest jobs;
 *  - PriceAware:  pick the cheapest server by the last market
 *                 equilibrium's prices.
 */

#ifndef AMDAHL_ALLOC_PLACEMENT_HH
#define AMDAHL_ALLOC_PLACEMENT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace amdahl::alloc {

/** Placement disciplines for arriving jobs. */
enum class PlacementRule
{
    RoundRobin,
    LeastLoaded,
    PriceAware,
};

/** @return Short name for a placement rule. */
std::string toString(PlacementRule rule);

/**
 * The full mutable state of a JobPlacer, for durable snapshots.
 *
 * All vectors are sized to the server count; `live` uses one char per
 * server (1 = accepting placements).
 */
struct JobPlacerState
{
    std::vector<int> loads;
    std::vector<char> live;
    std::vector<double> prices;
    std::vector<int> sinceUpdate;
    std::size_t nextRoundRobin = 0;
};

/**
 * Stateful placer: tracks per-server job counts and the latest price
 * vector, and picks a server for each arrival.
 */
class JobPlacer
{
  public:
    /**
     * @param rule    The discipline.
     * @param servers Number of servers (> 0).
     */
    JobPlacer(PlacementRule rule, std::size_t servers);

    /** @return The discipline in use. */
    PlacementRule rule() const { return rule_; }

    /**
     * Choose a server for an arriving job and record the placement.
     * Ties break toward the lowest server index (deterministic).
     * Only live servers are considered (all servers start live).
     *
     * @throws FatalError when no server is live; check anyLive()
     *         first when churn can empty the cluster.
     */
    std::size_t place();

    /** Record that a job on @p server finished (frees its slot). */
    void jobFinished(std::size_t server);

    /**
     * Mark a server live or dead for placement. Crashed servers stop
     * receiving arrivals and re-placements until they recover; their
     * load and price state is retained across the outage.
     */
    void setServerLive(std::size_t server, bool live);

    /** @return true when @p server currently accepts placements. */
    bool serverLive(std::size_t server) const;

    /** @return true when at least one server accepts placements. */
    bool anyLive() const;

    /**
     * Feed the latest equilibrium prices (PriceAware only; ignored by
     * other rules). Servers absent from this epoch's market keep
     * their previous price. A server with no observed price yet is
     * treated as free (price 0).
     *
     * @param prices One price per server.
     */
    void updatePrices(const std::vector<double> &prices);

    /** @return Current jobs placed on @p server (and not finished). */
    int load(std::size_t server) const;

    /** @return A copy of the full mutable state (for snapshots). */
    JobPlacerState saveState() const;

    /**
     * Overwrite the mutable state with a previously saved one.
     * Every vector in @p s must match this placer's server count.
     */
    void restoreState(const JobPlacerState &s);

  private:
    PlacementRule rule_;
    std::vector<int> loads;
    std::vector<char> live_;
    std::vector<double> prices_;
    /** Placements since the last price update: prices are stale
     *  within an epoch, so each placement inflates its server's
     *  effective price to avoid herding the whole batch onto the
     *  stale-cheapest server. */
    std::vector<int> sinceUpdate;
    std::size_t nextRoundRobin = 0;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_PLACEMENT_HH
