#include "lottery.hh"

#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace amdahl::alloc {

AllocationResult
LotteryPolicy::allocate(const core::FisherMarket &market) const
{
    market.validate();
    const std::size_t n = market.userCount();

    AllocationResult result;
    result.policyName = name();
    result.outcome.allocation.resize(n);
    result.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        result.outcome.allocation[i].assign(
            market.user(i).jobs.size(), 0.0);
        result.cores[i].assign(market.user(i).jobs.size(), 0);
    }

    Rng rng(seed_);
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        const auto located = jobsOnServer(market, j);
        if (located.empty())
            continue;

        // Each job holds its owner's tickets divided across her jobs
        // on this server, so a user's total tickets equal her budget
        // regardless of how many jobs she runs here.
        std::vector<double> tickets(located.size());
        for (std::size_t k = 0; k < located.size(); ++k) {
            const std::size_t owner = located[k].first;
            std::size_t colocated = 0;
            for (const auto &[i2, k2] : located)
                colocated += i2 == owner;
            tickets[k] = market.user(owner).budget /
                         static_cast<double>(colocated);
        }

        const int capacity =
            static_cast<int>(std::llround(market.capacity(j)));
        for (int c = 0; c < capacity; ++c) {
            const std::size_t winner = rng.weightedIndex(tickets);
            ++result.cores[located[winner].first]
                          [located[winner].second];
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < result.cores[i].size(); ++k) {
            result.outcome.allocation[i][k] =
                static_cast<double>(result.cores[i][k]);
        }
    }
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
