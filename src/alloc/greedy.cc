#include "greedy.hh"

#include <cmath>
#include <queue>

#include "common/check.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"

namespace amdahl::alloc {

namespace {

/** One heap entry: the gain from giving this job its next core. */
struct Candidate
{
    double gain;
    std::size_t user;
    std::size_t job;
    int cores; // Cores already granted to the job.

    bool
    operator<(const Candidate &other) const
    {
        return gain < other.gain; // max-heap by gain
    }
};

} // namespace

AllocationResult
MarginalGreedyBase::allocate(const core::FisherMarket &market) const
{
    market.validate();
    const std::size_t n = market.userCount();

    AllocationResult result;
    result.policyName = name();
    result.outcome.allocation.resize(n);
    result.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        result.outcome.allocation[i].assign(market.user(i).jobs.size(),
                                            0.0);
        result.cores[i].assign(market.user(i).jobs.size(), 0);
    }

    // Per-user weight normalizers W_i = sum_j w_ij (Eq. 4's denominator).
    std::vector<double> weight_sum(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (const auto &job : market.user(i).jobs)
            weight_sum[i] += job.weight;
    }

    auto marginal = [&](std::size_t i, std::size_t k, int x) {
        const auto &job = market.user(i).jobs[k];
        const double delta =
            core::amdahlSpeedup(job.parallelFraction, x + 1) -
            core::amdahlSpeedup(job.parallelFraction, x);
        return userWeight(market, i) * job.weight * delta /
               weight_sum[i];
    };

    // Each server is independent: assign its cores one at a time to the
    // job with the largest marginal gain.
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        const auto located = jobsOnServer(market, j);
        if (located.empty())
            continue;

        std::priority_queue<Candidate> heap;
        for (const auto &[i, k] : located)
            heap.push({marginal(i, k, 0), i, k, 0});

        const int capacity =
            static_cast<int>(std::llround(market.capacity(j)));
        for (int c = 0; c < capacity && !heap.empty(); ++c) {
            Candidate top = heap.top();
            heap.pop();
            ++result.cores[top.user][top.job];
            top.cores += 1;
            top.gain = marginal(top.user, top.job, top.cores);
            heap.push(top);
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < result.cores[i].size(); ++k) {
            result.outcome.allocation[i][k] =
                static_cast<double>(result.cores[i][k]);
        }
    }
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
