/**
 * @file
 * Proportional Fairness (PF) — the Eisenberg-Gale optimum as an
 * allocation policy.
 *
 * Maximizes sum_i b_i log u_i(x_i) subject to per-server clearing,
 * via the generic projected-gradient solver. For homogeneous
 * utilities this *is* the market equilibrium; for Amdahl utilities it
 * is a close but distinct point (see THEORY.md section 4a) that
 * trades a little of the flatter-curve users' utility for aggregate
 * log-utility — the networking community's classic fairness notion,
 * here as a baseline against the paper's market.
 */

#ifndef AMDAHL_ALLOC_PROPORTIONAL_FAIRNESS_HH
#define AMDAHL_ALLOC_PROPORTIONAL_FAIRNESS_HH

#include "alloc/policy.hh"
#include "solver/eisenberg_gale.hh"

namespace amdahl::alloc {

/** The Eisenberg-Gale / proportional-fairness baseline. */
class ProportionalFairnessPolicy : public AllocationPolicy
{
  public:
    explicit ProportionalFairnessPolicy(
        solver::EgOptions options = solver::EgOptions())
        : opts(options)
    {}

    std::string name() const override { return "PF"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

  private:
    solver::EgOptions opts;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_PROPORTIONAL_FAIRNESS_HH
