/**
 * @file
 * Proportional Sharing (PS) — the classical entitlement baseline
 * (Sections II-A/B and VI-A).
 *
 * PS is the Fair Share Scheduler's discipline applied server by server:
 * each server's cores are divided among the users computing on it in
 * proportion to their entitlements; when a user's demand on the server is
 * below her share, the excess is redistributed to the others, again in
 * proportion to entitlements. PS enforces entitlements *within* each
 * server but — as the paper's Section II-B example shows — may violate
 * them in aggregate, and it ignores differences in parallelizability.
 */

#ifndef AMDAHL_ALLOC_PROPORTIONAL_SHARE_HH
#define AMDAHL_ALLOC_PROPORTIONAL_SHARE_HH

#include <optional>

#include "alloc/policy.hh"

namespace amdahl::alloc {

/** The per-server proportional-share mechanism. */
class ProportionalShare : public AllocationPolicy
{
  public:
    ProportionalShare() = default;

    /**
     * @param demands Optional per-[user][job] demand caps in cores (the
     *                Section II-B example has explicit demands); absent
     *                caps mean jobs accept any allocation.
     */
    explicit ProportionalShare(
        std::vector<std::vector<double>> demands);

    std::string name() const override { return "PS"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

  private:
    std::optional<std::vector<std::vector<double>>> demandCaps;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_PROPORTIONAL_SHARE_HH
