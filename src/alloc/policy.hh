/**
 * @file
 * The allocation-policy interface (Section VI-A).
 *
 * Every evaluated mechanism consumes the same problem description — a
 * FisherMarket (users, budgets/entitlements, jobs with (f, w), server
 * capacities) — and produces integral per-job core allocations plus the
 * fractional allocation it rounded from. Market mechanisms also report
 * prices and convergence iterations.
 */

#ifndef AMDAHL_ALLOC_POLICY_HH
#define AMDAHL_ALLOC_POLICY_HH

#include <string>
#include <vector>

#include "core/market.hh"

namespace amdahl::core {
struct BidTransportFaults; // core/bidding.hh
struct ClearingContext;    // core/bidding.hh
}

namespace amdahl::alloc {

/**
 * Which rung of the degraded-mode ladder produced an allocation
 * (alloc/fallback_policy.hh). Ordinary policies always serve Primary.
 */
enum class ServeMode
{
    Primary,              //!< The configured mechanism converged.
    DeadlineAnytime,      //!< Deadline expired; served the best anytime
                          //!< bid state (budget-feasible, flagged via
                          //!< MarketOutcome::deadlineExpired).
    DampedRetry,          //!< Damped, warm-started retry converged.
    ProportionalFallback  //!< Served proportional share by entitlement.
};

/** @return Short label for a serve mode. */
const char *toString(ServeMode mode);

/** Outcome of running a policy on a market. */
struct AllocationResult
{
    std::string policyName;

    /** Integral cores per [user][job] (Hamilton-rounded). */
    std::vector<std::vector<int>> cores;

    /**
     * The pre-rounding outcome: fractional allocation always present;
     * prices/bids populated by market mechanisms only.
     */
    core::MarketOutcome outcome;

    /** Degraded-mode bookkeeping: which ladder rung served this
     *  allocation (Primary for every non-fallback policy). */
    ServeMode mode = ServeMode::Primary;

    /** @return Total integral cores held by user i. */
    int userCores(std::size_t i) const;
};

/** Abstract allocation mechanism. */
class AllocationPolicy
{
  public:
    virtual ~AllocationPolicy() = default;

    /** @return Short policy tag: "PS", "G", "UB", "AB", or "BR". */
    virtual std::string name() const = 0;

    /**
     * Allocate all cores of all servers.
     *
     * @param market The problem; validated by implementations.
     * @return Integral allocations covering each server's capacity.
     */
    virtual AllocationResult allocate(
        const core::FisherMarket &market) const = 0;

    /**
     * Allocate under per-clearing bid-transport faults.
     *
     * The online runtime calls this variant so a fault schedule can
     * degrade the distributed bidding procedure epoch by epoch.
     * Market mechanisms override it; the default ignores the faults —
     * centralized policies have no bid messages to lose.
     *
     * @param market The problem; validated by implementations.
     * @param faults This clearing's transport-fault realization.
     */
    virtual AllocationResult allocate(
        const core::FisherMarket &market,
        const core::BidTransportFaults &faults) const
    {
        (void)faults;
        return allocate(market);
    }

    /**
     * Allocate under a full clearing context: per-user transport
     * faults plus, when `ctx.sharding` is non-null, sharded clearing
     * over the simulated network (core/bidding_sharded.cc).
     *
     * The default (policy.cc) forwards to the faults overload —
     * centralized policies clear no network. Market mechanisms that
     * support distributed clearing override it.
     *
     * @param market The problem; validated by implementations.
     * @param ctx    Faults, sharding options, transport session.
     */
    virtual AllocationResult allocate(
        const core::FisherMarket &market,
        const core::ClearingContext &ctx) const;
};

/**
 * Jobs located on one server, as (user, job-index) pairs — a shared
 * helper for per-server policies.
 */
std::vector<std::pair<std::size_t, std::size_t>>
jobsOnServer(const core::FisherMarket &market, std::size_t server);

/**
 * Audit the contract every policy's output must honor: result shapes
 * match the market, parallel fractions are in [0, 1], fractional and
 * integral allocations are non-negative and finite, and no server is
 * allocated beyond its capacity.
 *
 * Policies call this right before returning, inside an
 * `if constexpr (checkedBuild)` block, so default builds skip the
 * audit entirely.
 *
 * @throws PanicError when the result violates the contract.
 */
void auditAllocation(const core::FisherMarket &market,
                     const AllocationResult &result);

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_POLICY_HH
