#include "fallback_policy.hh"

#include <algorithm>

#include "alloc/proportional_share.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "core/rounding.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::alloc {

namespace {

/** Ladder bookkeeping shared by every exit: which rung served, and
 *  why — a counter for aggregates, a trace event for the post-mortem. */
void
recordServe(ServeMode mode, const core::MarketOutcome &outcome)
{
    obs::metrics()
        .counter(std::string("fallback.serves.") + toString(mode))
        .add();
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "fallback_serve")
            .field("rung", toString(mode))
            .field("converged", outcome.converged)
            .field("iterations", outcome.iterations)
            .field("deadline_expired", outcome.deadlineExpired);
    }
}

} // namespace

FallbackPolicy::FallbackPolicy(core::BiddingOptions primary_opts,
                               FallbackOptions fallback)
    : primary(std::move(primary_opts)), fb(fallback)
{
    if (fb.retryDampingFactor <= 0.0 || fb.retryDampingFactor >= 1.0)
        fatal("retry damping factor must be in (0, 1), got ",
              fb.retryDampingFactor);
    if (fb.retryMaxIterations < 0)
        fatal("retry iteration budget must be non-negative");
}

AllocationResult
FallbackPolicy::allocate(const core::FisherMarket &market) const
{
    return ladder(market, core::BidTransportFaults{});
}

AllocationResult
FallbackPolicy::allocate(const core::FisherMarket &market,
                         const core::BidTransportFaults &faults) const
{
    return ladder(market, faults);
}

AllocationResult
FallbackPolicy::ladder(const core::FisherMarket &market,
                       const core::BidTransportFaults &faults) const
{
    core::BiddingOptions opts = primary;
    opts.transport = faults;

    AllocationResult result;
    result.policyName = name();

    // Rung 1: the configured procedure. With the ladder disabled the
    // attempt is served verbatim — including an expired-deadline
    // anytime state, which still surfaces via outcome.deadlineExpired.
    auto attempt = core::solveAmdahlBidding(market, opts);
    if (attempt.converged || !fb.enabled) {
        result.outcome = std::move(attempt);
        result.cores = core::roundOutcome(market, result.outcome);
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 2: deadline expiry. The anytime state is budget-feasible
    // by construction, and the deadline fired precisely because the
    // epoch has no time left for a retry — serve it directly.
    if (attempt.deadlineExpired) {
        result.outcome = std::move(attempt);
        result.cores = core::roundOutcome(market, result.outcome);
        result.mode = ServeMode::DeadlineAnytime;
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 3: damped, warm-started retry. The faulty transport stays
    // in effect — the retry runs over the same degraded network.
    core::BiddingOptions retry = opts;
    retry.damping =
        std::max(1e-3, opts.damping * fb.retryDampingFactor);
    retry.initialBids = attempt.bids;
    if (fb.retryMaxIterations > 0)
        retry.maxIterations = fb.retryMaxIterations;
    const int primary_iterations = attempt.iterations;
    auto retried = core::solveAmdahlBidding(market, retry);
    retried.iterations += primary_iterations;
    if (retried.converged || retried.deadlineExpired) {
        result.outcome = std::move(retried);
        result.cores = core::roundOutcome(market, result.outcome);
        result.mode = retried.converged ? ServeMode::DampedRetry
                                        : ServeMode::DeadlineAnytime;
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 4: proportional share by entitlement — always feasible and
    // budget-respecting, never efficient. converged stays false: this
    // epoch was *served*, not solved.
    const ProportionalShare entitlement;
    result = entitlement.allocate(market);
    result.policyName = name();
    result.mode = ServeMode::ProportionalFallback;
    result.outcome.iterations = retried.iterations;
    result.outcome.converged = false;
    recordServe(result.mode, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
