#include "fallback_policy.hh"

#include <algorithm>

#include "alloc/proportional_share.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "core/rounding.hh"
#include "net/options.hh"
#include "net/session.hh"
#include "obs/degraded.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace.hh"

namespace amdahl::alloc {

namespace {

/**
 * Why this serve fell off the primary path, derived from the attempt
 * that failed. The ordering is a severity ladder: a quorum collapse is
 * reported even if a partition also degraded earlier rounds, and a
 * partition beats a plain deadline expiry — the operator wants the
 * strongest cause, not the first one.
 */
obs::DegradedReason
degradeReason(const core::MarketOutcome &outcome)
{
    if (outcome.net.quorumCollapsed)
        return obs::DegradedReason::QuorumFloor;
    if (outcome.net.partitionDegraded)
        return obs::DegradedReason::Partition;
    if (outcome.deadlineExpired || outcome.net.degradedRounds > 0)
        return obs::DegradedReason::DeadlineExpired;
    return obs::DegradedReason::NonConverged;
}

/** Ladder bookkeeping shared by every exit: which rung served, and
 *  why — a counter for aggregates, a trace event for the post-mortem.
 *  A clean primary serve carries reason "none"; every other rung
 *  carries its structured cause and also reports through
 *  obs::recordDegraded so the fallback and barrier layers share one
 *  reason taxonomy. */
void
recordServe(ServeMode mode, const core::MarketOutcome &outcome)
{
    const bool degraded = mode != ServeMode::Primary;
    const obs::DegradedReason reason = degradeReason(outcome);
    obs::metrics()
        .counter(std::string("fallback.serves.") + toString(mode))
        .add();
    if (auto *sink = obs::traceSink()) {
        obs::TraceEvent(*sink, "fallback_serve")
            .field("rung", toString(mode))
            .field("reason",
                   degraded ? obs::toString(reason) : "none")
            .field("converged", outcome.converged)
            .field("iterations", outcome.iterations)
            .field("deadline_expired", outcome.deadlineExpired);
    }
    if (degraded) {
        obs::recordDegraded(
            {"fallback", reason,
             static_cast<std::uint64_t>(outcome.iterations),
             outcome.net.minQuorum, outcome.net.staleBidRounds});
    }
}

} // namespace

FallbackPolicy::FallbackPolicy(core::BiddingOptions primary_opts,
                               FallbackOptions fallback)
    : primary(std::move(primary_opts)), fb(fallback)
{
    if (fb.retryDampingFactor <= 0.0 || fb.retryDampingFactor >= 1.0)
        fatal("retry damping factor must be in (0, 1), got ",
              fb.retryDampingFactor);
    if (fb.retryMaxIterations < 0)
        fatal("retry iteration budget must be non-negative");
}

AllocationResult
FallbackPolicy::allocate(const core::FisherMarket &market) const
{
    return ladder(market, core::ClearingContext{});
}

AllocationResult
FallbackPolicy::allocate(const core::FisherMarket &market,
                         const core::BidTransportFaults &faults) const
{
    core::ClearingContext ctx;
    ctx.transport = faults;
    return ladder(market, ctx);
}

AllocationResult
FallbackPolicy::allocate(const core::FisherMarket &market,
                         const core::ClearingContext &ctx) const
{
    return ladder(market, ctx);
}

AllocationResult
FallbackPolicy::ladder(const core::FisherMarket &market,
                       const core::ClearingContext &ctx) const
{
    core::BiddingOptions opts = primary;
    opts.transport = ctx.transport;
    // Delta re-clearing plumbing: a previous equilibrium seeds the
    // bids, and the kernel cache (in-process solves only; the sharded
    // solver documents that it ignores the field) skips the CSR
    // rebuild when the market structure is unchanged. Both are
    // bitwise-invisible to the equilibrium contract — the warm start
    // changes the trajectory, never the invariants.
    if (ctx.initialBids != nullptr)
        opts.initialBids = *ctx.initialBids;
    opts.kernelCache = ctx.kernelCache;
    const bool sharded = ctx.sharding && ctx.sharding->enabled();

    const auto runSolve = [&](const core::BiddingOptions &o) {
        return sharded ? core::solveShardedBidding(market, o,
                                                   *ctx.sharding,
                                                   ctx.session)
                       : core::solveAmdahlBidding(market, o);
    };

    // Each ladder attempt is one "rung" span: virtual-time stamps
    // from the persistent session clock (0/0 for in-process solves —
    // they are instantaneous in virtual time), parented to the
    // enclosing epoch span, and made the causal parent of the rounds
    // the attempt clears.
    const auto solve = [&](const core::BiddingOptions &o, int rung) {
        obs::TraceSink *const spanTrace = obs::spanSink();
        if (spanTrace == nullptr)
            return runSolve(o);
        const std::uint64_t parent = obs::currentSpanParent();
        const std::uint64_t t0 = ctx.session ? ctx.session->ticks : 0;
        const std::uint64_t id =
            obs::spanId(obs::SpanKind::Rung, parent,
                        static_cast<std::uint64_t>(rung), t0);
        obs::SpanParentScope scope(id);
        auto outcome = runSolve(o);
        const std::uint64_t t1 = ctx.session ? ctx.session->ticks : 0;
        obs::SpanEvent(*spanTrace, "rung", id, parent, t0, t1)
            .field("attempt", rung)
            .field("sharded", sharded)
            .field("converged", outcome.converged);
        return outcome;
    };

    AllocationResult result;
    result.policyName = name();

    // Rung 1: the configured procedure. With the ladder disabled the
    // attempt is served verbatim — including an expired-deadline
    // anytime state, which still surfaces via outcome.deadlineExpired.
    auto attempt = solve(opts, 0);
    if (attempt.converged || !fb.enabled) {
        result.outcome = std::move(attempt);
        result.cores = core::roundOutcome(market, result.outcome);
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 2: deadline expiry. The anytime state is budget-feasible
    // by construction, and the deadline fired precisely because the
    // epoch has no time left for a retry — serve it directly.
    if (attempt.deadlineExpired) {
        result.outcome = std::move(attempt);
        result.cores = core::roundOutcome(market, result.outcome);
        result.mode = ServeMode::DeadlineAnytime;
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 3: damped, warm-started retry. The faulty transport stays
    // in effect — the retry runs over the same degraded network (under
    // sharded clearing the session's global round keeps advancing, so
    // a partition window scheduled across the retry stays in force).
    core::BiddingOptions retry = opts;
    retry.damping =
        std::max(1e-3, opts.damping * fb.retryDampingFactor);
    retry.initialBids = attempt.bids;
    if (fb.retryMaxIterations > 0)
        retry.maxIterations = fb.retryMaxIterations;
    const int primary_iterations = attempt.iterations;
    auto retried = solve(retry, 1);
    retried.iterations += primary_iterations;
    if (retried.converged || retried.deadlineExpired) {
        result.outcome = std::move(retried);
        result.cores = core::roundOutcome(market, result.outcome);
        result.mode = retried.converged ? ServeMode::DampedRetry
                                        : ServeMode::DeadlineAnytime;
        recordServe(result.mode, result.outcome);
        if constexpr (checkedBuild)
            auditAllocation(market, result);
        return result;
    }

    // Rung 4: proportional share by entitlement — always feasible and
    // budget-respecting, never efficient. converged stays false: this
    // epoch was *served*, not solved.
    const ProportionalShare entitlement;
    result = entitlement.allocate(market);
    result.policyName = name();
    result.mode = ServeMode::ProportionalFallback;
    result.outcome.iterations = retried.iterations;
    result.outcome.converged = false;
    result.outcome.net = retried.net;
    recordServe(result.mode, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
