#include "best_response.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "core/rounding.hh"

namespace amdahl::alloc {

namespace {

/**
 * The price-anticipating objective of one user: for job k on a server
 * with capacity C and opposing bids q, utility w * s(x(b)) with
 * x(b) = C b / (q + b).
 */
class AnticipatingObjective : public solver::SeparableConcave
{
  public:
    AnticipatingObjective(const core::MarketUser &user,
                          const std::vector<double> &capacities,
                          std::vector<double> opposing)
        : user_(user), caps(capacities), q(std::move(opposing))
    {}

    std::size_t size() const override { return user_.jobs.size(); }

    double
    value(std::size_t k, double b) const override
    {
        const auto &job = user_.jobs[k];
        const double x = cores(k, b);
        return job.weight * speedup(job.parallelFraction, x);
    }

    double
    gradient(std::size_t k, double b) const override
    {
        const auto &job = user_.jobs[k];
        const double f = job.parallelFraction;
        const double x = cores(k, b);
        const double dxdb = coresSlope(k, b);
        const double denom = f + (1.0 - f) * x;
        const double sp = f / (denom * denom);
        return job.weight * sp * dxdb;
    }

    double
    hessian(std::size_t k, double b) const override
    {
        const auto &job = user_.jobs[k];
        const double f = job.parallelFraction;
        const double cap = caps[user_.jobs[k].server];
        const double qq = q[k];
        const double x = cores(k, b);
        const double denom = f + (1.0 - f) * x;
        const double sp = f / (denom * denom);
        const double spp =
            -2.0 * f * (1.0 - f) / (denom * denom * denom);
        const double dxdb = coresSlope(k, b);
        const double d2xdb2 =
            -2.0 * cap * qq / std::pow(qq + b, 3.0);
        return job.weight * (spp * dxdb * dxdb + sp * d2xdb2);
    }

  private:
    double
    cores(std::size_t k, double b) const
    {
        const double cap = caps[user_.jobs[k].server];
        return cap * b / (q[k] + b);
    }

    double
    coresSlope(std::size_t k, double b) const
    {
        const double cap = caps[user_.jobs[k].server];
        const double qb = q[k] + b;
        return cap * q[k] / (qb * qb);
    }

    static double
    speedup(double f, double x)
    {
        return x / (f + (1.0 - f) * x);
    }

    const core::MarketUser &user_;
    const std::vector<double> &caps;
    std::vector<double> q;
};

} // namespace

std::vector<double>
BestResponsePolicy::bestResponseBids(
    const core::MarketUser &user, const std::vector<double> &capacities,
    const std::vector<double> &other_bids,
    const solver::InteriorPointOptions &opts)
{
    if (other_bids.size() != user.jobs.size())
        fatal("opposing-bid vector has wrong job count");
    AnticipatingObjective objective(user, capacities,
                                    std::vector<double>(other_bids));
    return solver::maximizeOnSimplex(objective, user.budget, opts);
}

AllocationResult
BestResponsePolicy::allocate(const core::FisherMarket &market) const
{
    market.validate();
    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();

    AllocationResult result;
    result.policyName = name();
    result.outcome.bids.resize(n);

    // Start from an even split of each budget.
    std::vector<double> server_bids(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &user = market.user(i);
        result.outcome.bids[i].assign(
            user.jobs.size(),
            user.budget / static_cast<double>(user.jobs.size()));
        for (std::size_t k = 0; k < user.jobs.size(); ++k)
            server_bids[user.jobs[k].server] +=
                result.outcome.bids[i][k];
    }

    bool converged = false;
    int rounds = 0;
    for (; rounds < opts.maxRounds && !converged; ++rounds) {
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto &user = market.user(i);
            std::vector<double> opposing(user.jobs.size());
            for (std::size_t k = 0; k < user.jobs.size(); ++k) {
                opposing[k] = server_bids[user.jobs[k].server] -
                              result.outcome.bids[i][k];
                opposing[k] = std::max(0.0, opposing[k]);
            }
            const auto response = bestResponseBids(
                user, market.capacities(), opposing, opts.interior);
            for (std::size_t k = 0; k < user.jobs.size(); ++k) {
                const double old_bid = result.outcome.bids[i][k];
                const double delta = std::abs(response[k] - old_bid) /
                                     std::max(user.budget, 1e-300);
                max_delta = std::max(max_delta, delta);
                server_bids[user.jobs[k].server] +=
                    response[k] - old_bid;
                result.outcome.bids[i][k] = response[k];
            }
        }
        converged = max_delta < opts.bidTolerance;
    }
    result.outcome.iterations = rounds;
    result.outcome.converged = converged;

    // Nash prices and allocations. Recompute per-server totals from
    // the final bids: the incrementally maintained sums drift over
    // many rounds, and allocations must be exactly consistent with
    // prices for the servers to clear.
    std::fill(server_bids.begin(), server_bids.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            server_bids[jobs[k].server] += result.outcome.bids[i][k];
    }
    result.outcome.prices.resize(m);
    for (std::size_t j = 0; j < m; ++j)
        result.outcome.prices[j] = server_bids[j] / market.capacity(j);
    result.outcome.allocation.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &jobs = market.user(i).jobs;
        result.outcome.allocation[i].resize(jobs.size());
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            const double p = result.outcome.prices[jobs[k].server];
            ensure(p > 0.0, "zero Nash price on server ",
                   jobs[k].server);
            result.outcome.allocation[i][k] =
                result.outcome.bids[i][k] / p;
        }
    }
    result.cores = core::roundOutcome(market, result.outcome);
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
