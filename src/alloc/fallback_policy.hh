/**
 * @file
 * Degraded-mode allocation: the fallback ladder around Amdahl Bidding.
 *
 * The bidding procedure converges on every input the paper evaluates,
 * but a production market also faces adversarial inputs, message loss
 * in the distributed deployment, and hard epoch deadlines (a tight
 * iteration budget). When the primary procedure exhausts its budget
 * without converging, silently serving the half-iterated bids would
 * misallocate without anyone noticing. This policy degrades
 * *predictably* instead, down a four-rung ladder:
 *
 *  1. Primary: Amdahl Bidding with the configured options.
 *  2. Deadline anytime: when the primary's anytime deadline expires
 *     (BiddingOptions::deadline), the best budget-feasible bid state
 *     it reached is served as-is — the deadline exists because there
 *     is no time left, so no retry is attempted.
 *  3. Damped retry: the same market re-solved with damping scaled
 *     down and warm-started from the primary attempt's bids — the
 *     cheap fix for oscillating proportional-response dynamics.
 *  4. Proportional fallback: proportional share by entitlement — the
 *     allocation every tenant is contractually owed. It ignores
 *     parallelizability (forfeiting the market's efficiency edge for
 *     one epoch) but is feasible, budget-respecting, and closed-form.
 *
 * Every result records which rung served it (AllocationResult::mode)
 * so the online metrics can report fallback epochs.
 */

#ifndef AMDAHL_ALLOC_FALLBACK_POLICY_HH
#define AMDAHL_ALLOC_FALLBACK_POLICY_HH

#include "alloc/policy.hh"
#include "core/bidding.hh"

namespace amdahl::alloc {

/** Knobs of the degraded-mode ladder. */
struct FallbackOptions
{
    /** When false the primary result is served verbatim, converged or
     *  not (the pre-ladder behavior; non-convergence still surfaces
     *  via MarketOutcome::converged and the online counter). */
    bool enabled = true;

    /** The retry's damping is the primary damping times this factor
     *  (in (0, 1)); smaller is more conservative. */
    double retryDampingFactor = 0.5;

    /** Iteration budget of the retry; 0 inherits the primary's. */
    int retryMaxIterations = 0;
};

/** Amdahl Bidding wrapped in the degraded-mode ladder. */
class FallbackPolicy : public AllocationPolicy
{
  public:
    explicit FallbackPolicy(core::BiddingOptions primary = {},
                            FallbackOptions fallback = {});

    std::string name() const override { return "AB+FB"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

    AllocationResult allocate(
        const core::FisherMarket &market,
        const core::BidTransportFaults &faults) const override;

    /**
     * The full-context overload: when `ctx.sharding` is non-null and
     * enabled, every rung that clears a market (primary and damped
     * retry) runs the sharded epoch-barrier solver over the simulated
     * network instead of the in-process one — so the ladder also
     * absorbs quorum collapses and partition-degraded epochs, with the
     * serve's structured `reason` derived from the transport outcome.
     */
    AllocationResult allocate(
        const core::FisherMarket &market,
        const core::ClearingContext &ctx) const override;

  private:
    AllocationResult ladder(const core::FisherMarket &market,
                            const core::ClearingContext &ctx) const;

    core::BiddingOptions primary;
    FallbackOptions fb;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_FALLBACK_POLICY_HH
