#include "placement.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"

namespace amdahl::alloc {

std::string
toString(PlacementRule rule)
{
    switch (rule) {
      case PlacementRule::RoundRobin:
        return "round-robin";
      case PlacementRule::LeastLoaded:
        return "least-loaded";
      case PlacementRule::PriceAware:
        return "price-aware";
    }
    panic("unknown placement rule");
}

JobPlacer::JobPlacer(PlacementRule rule, std::size_t servers)
    : rule_(rule), loads(servers, 0), prices_(servers, 0.0),
      sinceUpdate(servers, 0)
{
    if (servers == 0)
        fatal("placer needs at least one server");
}

std::size_t
JobPlacer::place()
{
    std::size_t choice = 0;
    switch (rule_) {
      case PlacementRule::RoundRobin:
        choice = nextRoundRobin;
        nextRoundRobin = (nextRoundRobin + 1) % loads.size();
        break;
      case PlacementRule::LeastLoaded:
        for (std::size_t j = 1; j < loads.size(); ++j) {
            if (loads[j] < loads[choice])
                choice = j;
        }
        break;
      case PlacementRule::PriceAware: {
        // Effective price inflates with placements made since the
        // last update, so a batch of arrivals spreads instead of
        // herding onto the stale-cheapest server.
        auto effective = [&](std::size_t j) {
            return prices_[j] * (1.0 + sinceUpdate[j]) +
                   1e-9 * sinceUpdate[j];
        };
        for (std::size_t j = 1; j < prices_.size(); ++j) {
            if (effective(j) < effective(choice))
                choice = j;
        }
        ++sinceUpdate[choice];
        break;
      }
    }
    ++loads[choice];
    return choice;
}

void
JobPlacer::jobFinished(std::size_t server)
{
    if (server >= loads.size())
        fatal("server index ", server, " out of range");
    if (loads[server] <= 0)
        panic("job finished on server ", server, " with no jobs");
    --loads[server];
}

void
JobPlacer::updatePrices(const std::vector<double> &prices)
{
    if (prices.size() != prices_.size())
        fatal("price vector has ", prices.size(), " entries, expected ",
              prices_.size());
    // Contract: placement steers by price, so a NaN here silently
    // herds every arrival onto one server.
    if constexpr (checkedBuild) {
        for (double p : prices) {
            AMDAHL_CHECK_FINITE(p);
            AMDAHL_ASSERT(p >= 0.0, "negative posted price ", p);
        }
    }
    prices_ = prices;
    std::fill(sinceUpdate.begin(), sinceUpdate.end(), 0);
}

int
JobPlacer::load(std::size_t server) const
{
    if (server >= loads.size())
        fatal("server index ", server, " out of range");
    return loads[server];
}

} // namespace amdahl::alloc
