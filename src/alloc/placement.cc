#include "placement.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"

namespace amdahl::alloc {

std::string
toString(PlacementRule rule)
{
    switch (rule) {
      case PlacementRule::RoundRobin:
        return "round-robin";
      case PlacementRule::LeastLoaded:
        return "least-loaded";
      case PlacementRule::PriceAware:
        return "price-aware";
    }
    panic("unknown placement rule");
}

JobPlacer::JobPlacer(PlacementRule rule, std::size_t servers)
    : rule_(rule), loads(servers, 0), live_(servers, 1),
      prices_(servers, 0.0), sinceUpdate(servers, 0)
{
    if (servers == 0)
        fatal("placer needs at least one server");
}

std::size_t
JobPlacer::place()
{
    if (!anyLive())
        fatal("no live server to place on");
    // First live server: the deterministic tie-break fallback for the
    // stateful rules below.
    std::size_t choice = 0;
    while (!live_[choice])
        ++choice;
    switch (rule_) {
      case PlacementRule::RoundRobin:
        while (!live_[nextRoundRobin])
            nextRoundRobin = (nextRoundRobin + 1) % loads.size();
        choice = nextRoundRobin;
        nextRoundRobin = (nextRoundRobin + 1) % loads.size();
        break;
      case PlacementRule::LeastLoaded:
        for (std::size_t j = choice + 1; j < loads.size(); ++j) {
            if (live_[j] && loads[j] < loads[choice])
                choice = j;
        }
        break;
      case PlacementRule::PriceAware: {
        // Effective price inflates with placements made since the
        // last update, so a batch of arrivals spreads instead of
        // herding onto the stale-cheapest server.
        auto effective = [&](std::size_t j) {
            return prices_[j] * (1.0 + sinceUpdate[j]) +
                   1e-9 * sinceUpdate[j];
        };
        for (std::size_t j = choice + 1; j < prices_.size(); ++j) {
            if (live_[j] && effective(j) < effective(choice))
                choice = j;
        }
        ++sinceUpdate[choice];
        break;
      }
    }
    ++loads[choice];
    return choice;
}

void
JobPlacer::jobFinished(std::size_t server)
{
    if (server >= loads.size())
        fatal("server index ", server, " out of range");
    if (loads[server] <= 0)
        panic("job finished on server ", server, " with no jobs");
    --loads[server];
}

void
JobPlacer::setServerLive(std::size_t server, bool live)
{
    if (server >= live_.size())
        fatal("server index ", server, " out of range");
    live_[server] = live ? 1 : 0;
}

bool
JobPlacer::serverLive(std::size_t server) const
{
    if (server >= live_.size())
        fatal("server index ", server, " out of range");
    return live_[server] != 0;
}

bool
JobPlacer::anyLive() const
{
    return std::any_of(live_.begin(), live_.end(),
                       [](char up) { return up != 0; });
}

void
JobPlacer::updatePrices(const std::vector<double> &prices)
{
    if (prices.size() != prices_.size())
        fatal("price vector has ", prices.size(), " entries, expected ",
              prices_.size());
    // Contract: placement steers by price, so a NaN here silently
    // herds every arrival onto one server.
    if constexpr (checkedBuild) {
        for (double p : prices) {
            AMDAHL_CHECK_FINITE(p);
            AMDAHL_ASSERT(p >= 0.0, "negative posted price ", p);
        }
    }
    prices_ = prices;
    std::fill(sinceUpdate.begin(), sinceUpdate.end(), 0);
}

int
JobPlacer::load(std::size_t server) const
{
    if (server >= loads.size())
        fatal("server index ", server, " out of range");
    return loads[server];
}

JobPlacerState
JobPlacer::saveState() const
{
    return {loads, {live_.begin(), live_.end()}, prices_, sinceUpdate,
            nextRoundRobin};
}

void
JobPlacer::restoreState(const JobPlacerState &s)
{
    const std::size_t servers = loads.size();
    if (s.loads.size() != servers || s.live.size() != servers ||
        s.prices.size() != servers || s.sinceUpdate.size() != servers)
        fatal("placer state sized for ", s.loads.size(),
              " servers, expected ", servers);
    loads = s.loads;
    live_.assign(s.live.begin(), s.live.end());
    prices_ = s.prices;
    sinceUpdate = s.sinceUpdate;
    nextRoundRobin = s.nextRoundRobin % servers;
}

} // namespace amdahl::alloc
