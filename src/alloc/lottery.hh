/**
 * @file
 * Lottery scheduling (Waldspurger & Weihl), the probabilistic
 * entitlement mechanism the paper discusses in Section II-A:
 * "lottery scheduling ... allocates resources probabilistically based
 * on users' holdings of a virtual currency", as used by Microsoft's
 * token scheduler [3].
 *
 * Per server, each user present holds tickets proportional to her
 * budget; every core is raffled independently. Expected shares equal
 * proportional sharing's, but any single raffle deviates — the
 * variance is the price of the mechanism's simplicity, and comparing
 * it against PS/AB quantifies that price.
 */

#ifndef AMDAHL_ALLOC_LOTTERY_HH
#define AMDAHL_ALLOC_LOTTERY_HH

#include <cstdint>

#include "alloc/policy.hh"

namespace amdahl::alloc {

/** The probabilistic proportional-share baseline. */
class LotteryPolicy : public AllocationPolicy
{
  public:
    /**
     * @param seed Raffle seed; identical seeds reproduce identical
     *             allocations (the raffle is deterministic pseudo-
     *             randomness, as any reproducible experiment needs).
     */
    explicit LotteryPolicy(std::uint64_t seed = 0x107e5ULL)
        : seed_(seed)
    {}

    std::string name() const override { return "LS"; }

    AllocationResult allocate(
        const core::FisherMarket &market) const override;

  private:
    std::uint64_t seed_;
};

} // namespace amdahl::alloc

#endif // AMDAHL_ALLOC_LOTTERY_HH
