#include "proportional_share.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "core/rounding.hh"

namespace amdahl::alloc {

namespace {

constexpr double unbounded = std::numeric_limits<double>::infinity();

} // namespace

ProportionalShare::ProportionalShare(
    std::vector<std::vector<double>> demands)
    : demandCaps(std::move(demands))
{}

AllocationResult
ProportionalShare::allocate(const core::FisherMarket &market) const
{
    market.validate();
    if (demandCaps) {
        if (demandCaps->size() != market.userCount())
            fatal("PS demand caps have wrong user count");
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            if ((*demandCaps)[i].size() != market.user(i).jobs.size())
                fatal("PS demand caps for user ", i,
                      " have wrong job count");
        }
    }

    const std::size_t n = market.userCount();
    AllocationResult result;
    result.policyName = name();
    result.outcome.allocation.resize(n);
    result.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        result.outcome.allocation[i].assign(market.user(i).jobs.size(),
                                            0.0);
        result.cores[i].assign(market.user(i).jobs.size(), 0);
    }

    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        const auto located = jobsOnServer(market, j);
        if (located.empty())
            continue;

        // Group jobs by user; a user's demand on the server is the sum
        // of her jobs' caps (unbounded when uncapped).
        std::vector<std::size_t> users;
        std::vector<double> demands;
        std::vector<std::vector<std::size_t>> jobs_of;
        for (const auto &[i, k] : located) {
            auto it = std::find(users.begin(), users.end(), i);
            std::size_t slot;
            if (it == users.end()) {
                slot = users.size();
                users.push_back(i);
                demands.push_back(0.0);
                jobs_of.emplace_back();
            } else {
                slot = static_cast<std::size_t>(it - users.begin());
            }
            jobs_of[slot].push_back(k);
            const double cap =
                demandCaps ? (*demandCaps)[i][k] : unbounded;
            if (cap < 0.0)
                fatal("negative demand cap for user ", i);
            demands[slot] += cap;
        }

        // Progressive filling: proportional shares with demand caps;
        // a capped user's excess is redistributed by entitlement.
        std::vector<double> granted(users.size(), 0.0);
        std::vector<bool> active(users.size(), true);
        double remaining = market.capacity(j);
        while (remaining > 1e-12) {
            double weight = 0.0;
            for (std::size_t u = 0; u < users.size(); ++u) {
                if (active[u])
                    weight += market.user(users[u]).budget;
            }
            if (weight <= 0.0)
                break; // Everyone satisfied; leftover cores stay idle.

            bool any_capped = false;
            for (std::size_t u = 0; u < users.size(); ++u) {
                if (!active[u])
                    continue;
                const double share =
                    remaining * market.user(users[u]).budget / weight;
                if (demands[u] <= share + 1e-12) {
                    granted[u] = demands[u];
                    active[u] = false;
                    any_capped = true;
                }
            }
            if (!any_capped) {
                for (std::size_t u = 0; u < users.size(); ++u) {
                    if (active[u]) {
                        granted[u] = remaining *
                                     market.user(users[u]).budget /
                                     weight;
                        active[u] = false;
                    }
                }
                remaining = 0.0;
                break;
            }
            remaining = market.capacity(j);
            for (std::size_t u = 0; u < users.size(); ++u) {
                if (!active[u])
                    remaining -= granted[u];
            }
        }

        // Split each user's server share across her jobs there:
        // proportional to caps when capped, evenly otherwise.
        std::vector<double> shares;
        shares.reserve(located.size());
        std::vector<std::pair<std::size_t, std::size_t>> owners;
        for (std::size_t u = 0; u < users.size(); ++u) {
            const std::size_t i = users[u];
            const auto &kset = jobs_of[u];
            double cap_sum = 0.0;
            bool capped = demandCaps.has_value();
            if (capped) {
                for (std::size_t k : kset)
                    cap_sum += (*demandCaps)[i][k];
            }
            for (std::size_t k : kset) {
                double portion;
                if (capped && cap_sum > 0.0) {
                    portion = granted[u] * (*demandCaps)[i][k] / cap_sum;
                } else if (capped) {
                    portion = 0.0;
                } else {
                    portion = granted[u] /
                              static_cast<double>(kset.size());
                }
                result.outcome.allocation[i][k] = portion;
                shares.push_back(portion);
                owners.emplace_back(i, k);
            }
        }

        // Round to integers: Hamilton over the cores actually granted
        // (demand caps may leave cores idle).
        double granted_total = 0.0;
        for (double s : shares)
            granted_total += s;
        const int target = static_cast<int>(
            std::min(std::llround(market.capacity(j)),
                     std::llround(granted_total)));
        const auto rounded = core::hamiltonRound(shares, target);
        for (std::size_t k = 0; k < owners.size(); ++k)
            result.cores[owners[k].first][owners[k].second] = rounded[k];
    }
    if constexpr (checkedBuild)
        auditAllocation(market, result);
    return result;
}

} // namespace amdahl::alloc
